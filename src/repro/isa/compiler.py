"""Block compiler: pre-translated closure tables for the fast engine.

The reference interpreter in :mod:`repro.isa.vm` dispatches every
dynamic instruction through a string-keyed opcode chain and resolves
register/immediate operands with ``isinstance`` checks -- obviously
correct, and the dominant constant factor of profiling runs.  This
module removes that per-instruction work by translating each basic
block *once*, at :meth:`repro.isa.program.Program.validate` time, into
a :class:`CompiledBlock`:

* every instruction becomes a *step closure* ``step(regs, memory) ->
  (value, addr)`` with the opcode resolved to a bound handler and each
  operand pre-split into register read vs. immediate;
* per-block static facts (instruction count, memory/float operation
  counts, per-opcode tallies) are precomputed so the VM can account
  statistics per block execution instead of per instruction;
* terminators are pre-resolved: jump targets point directly at the
  successor :class:`CompiledBlock`, and the (immutable)
  :class:`~repro.isa.events.JumpEvent` of every local edge is built
  once and reused for every dynamic traversal.

Step closures intentionally read registers with a plain ``regs[name]``
lookup; the fast engine catches ``KeyError`` around the block body and
re-raises the reference interpreter's ``VMError``.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple

from .events import JumpEvent
from .instructions import Call, CondBr, Halt, Instr, Jump, Return
from .program import Function, Program

# terminator kinds (ints for fast dispatch in the exec loop)
T_JUMP = 0
T_CONDBR = 1
T_CALL = 2
T_RETURN = 3
T_HALT = 4


class CompileError(RuntimeError):
    pass


def _c_div(a, b):
    # C semantics: truncate toward zero (mirrors VM._exec_instr)
    if b == 0:
        from .vm import VMError

        raise VMError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a, b):
    if b == 0:
        from .vm import VMError

        raise VMError("integer modulo by zero")
    q = abs(a) // abs(b)
    qq = q if (a >= 0) == (b >= 0) else -q
    return a - b * qq


#: two-operand value handlers (same arithmetic as VM._exec_instr)
_BIN_FNS: Dict[str, Callable] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _c_div,
    "mod": _c_mod,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
    "cmplt": lambda a, b: 1 if a < b else 0,
    "cmple": lambda a, b: 1 if a <= b else 0,
    "cmpgt": lambda a, b: 1 if a > b else 0,
    "cmpge": lambda a, b: 1 if a >= b else 0,
    "cmpeq": lambda a, b: 1 if a == b else 0,
    "cmpne": lambda a, b: 1 if a != b else 0,
    "fadd": lambda a, b: float(a) + float(b),
    "fsub": lambda a, b: float(a) - float(b),
    "fmul": lambda a, b: float(a) * float(b),
    "fdiv": lambda a, b: float(a) / float(b),
    "fmin": lambda a, b: min(float(a), float(b)),
    "fmax": lambda a, b: max(float(a), float(b)),
}

#: one-operand value handlers
_UN_FNS: Dict[str, Callable] = {
    "mov": lambda a: a,
    "fneg": lambda a: -float(a),
    "fabs": lambda a: abs(float(a)),
    "fsqrt": math.sqrt,
    "fexp": lambda a: math.exp(min(a, 700.0)),
    "flog": math.log,
    "itof": float,
    "ftoi": int,
}

_REL_FNS: Dict[str, Callable] = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


def _getter(src):
    """Operand resolver closure: register read or bound immediate."""
    if isinstance(src, str):
        def get(regs, _r=src):
            return regs[_r]
    else:
        def get(regs, _v=src):
            return _v
    return get


def _compile_instr(instr: Instr):
    """One instruction -> step(regs, memory) -> (value, addr)."""
    op = instr.opcode
    dest = instr.dest
    srcs = instr.srcs

    if op == "const":
        v0 = srcs[0]

        def step(regs, memory, _d=dest, _v=v0):
            regs[_d] = _v
            return _v, None

        return step

    if op == "load":
        base = srcs[0]
        off = instr.offset
        if isinstance(base, str):
            def step(regs, memory, _d=dest, _b=base, _o=off):
                addr = int(regs[_b]) + _o
                v = memory.load(addr)
                regs[_d] = v
                return v, addr
        else:
            const_base = int(base) + off

            def step(regs, memory, _d=dest, _a=const_base):
                v = memory.load(_a)
                regs[_d] = v
                return v, _a

        return step

    if op == "store":
        base, val = srcs[0], srcs[1]
        off = instr.offset
        get_val = _getter(val)
        if isinstance(base, str):
            def step(regs, memory, _b=base, _o=off, _gv=get_val):
                addr = int(regs[_b]) + _o
                v = _gv(regs)
                memory.store(addr, v)
                return v, addr
        else:
            const_base = int(base) + off

            def step(regs, memory, _a=const_base, _gv=get_val):
                v = _gv(regs)
                memory.store(_a, v)
                return v, _a

        return step

    if len(srcs) > 1 and op in _BIN_FNS:
        fn = _BIN_FNS[op]
        a, b = srcs[0], srcs[1]
        a_reg = isinstance(a, str)
        b_reg = isinstance(b, str)
        if a_reg and b_reg:
            def step(regs, memory, _f=fn, _d=dest, _a=a, _b=b):
                v = _f(regs[_a], regs[_b])
                regs[_d] = v
                return v, None
        elif a_reg:
            def step(regs, memory, _f=fn, _d=dest, _a=a, _b=b):
                v = _f(regs[_a], _b)
                regs[_d] = v
                return v, None
        elif b_reg:
            def step(regs, memory, _f=fn, _d=dest, _a=a, _b=b):
                v = _f(_a, regs[_b])
                regs[_d] = v
                return v, None
        else:
            def step(regs, memory, _f=fn, _d=dest, _a=a, _b=b):
                v = _f(_a, _b)
                regs[_d] = v
                return v, None
        return step

    if op in _UN_FNS:
        fn = _UN_FNS[op]
        a = srcs[0]
        if isinstance(a, str):
            def step(regs, memory, _f=fn, _d=dest, _a=a):
                v = _f(regs[_a])
                regs[_d] = v
                return v, None
        else:
            def step(regs, memory, _f=fn, _d=dest, _a=a):
                v = _f(_a)
                regs[_d] = v
                return v, None
        return step

    # Malformed instruction (e.g. binary opcode with one operand):
    # defer the failure to execution time, like the reference engine.
    def step(regs, memory, _op=op):  # pragma: no cover
        from .vm import VMError

        raise VMError(f"unhandled opcode {_op!r}")

    return step


class CompiledBlock:
    """One basic block, pre-translated for the fast engine."""

    __slots__ = (
        "func_name", "name", "instrs", "steps", "n_instrs",
        "mem_ops", "fp_ops", "opcode_counts",
        "term_kind",
        # jump
        "jump_target", "jump_event",
        # condbr
        "rel_fn", "br_a", "br_b", "taken", "taken_event",
        "not_taken", "not_taken_event",
        # call
        "call_callee", "call_entry", "call_args", "call_arg_getters",
        "call_dest", "call_cont", "call_cont_cb", "call_arity_ok",
        # return
        "ret_operand", "ret_getter",
    )

    def __init__(self, func: Function, name: str, instrs: List[Instr]) -> None:
        self.func_name = func.name
        self.name = name
        self.instrs: Tuple[Instr, ...] = tuple(instrs)
        self.steps = tuple(_compile_instr(ins) for ins in instrs)
        self.n_instrs = len(instrs)
        self.mem_ops = sum(1 for ins in instrs if ins.is_mem)
        self.fp_ops = sum(1 for ins in instrs if ins.is_float)
        self.opcode_counts = Counter(ins.opcode for ins in instrs)
        self.term_kind = -1


class CompiledFunction:
    __slots__ = ("func", "name", "params", "blocks", "entry")

    def __init__(self, func: Function) -> None:
        self.func = func
        self.name = func.name
        self.params = func.params
        self.blocks: Dict[str, CompiledBlock] = {}
        self.entry: Optional[CompiledBlock] = None


class CompiledProgram:
    """All functions of one program, closure-compiled and linked."""

    __slots__ = ("program", "funcs")

    def __init__(self, program: Program) -> None:
        self.program = program
        self.funcs: Dict[str, CompiledFunction] = {}
        for fn in program.functions.values():
            cf = CompiledFunction(fn)
            for bb in fn.blocks.values():
                cf.blocks[bb.name] = CompiledBlock(fn, bb.name, bb.instrs)
            cf.entry = cf.blocks[fn.entry]
            self.funcs[fn.name] = cf
        # second pass: link terminators to compiled successors and
        # pre-build the (immutable) per-edge jump events
        for fn in program.functions.values():
            cf = self.funcs[fn.name]
            for bb in fn.blocks.values():
                self._link(cf, cf.blocks[bb.name], bb.terminator, fn.name)

    def _link(self, cf: CompiledFunction, cb: CompiledBlock, term, fname: str) -> None:
        if isinstance(term, Jump):
            cb.term_kind = T_JUMP
            cb.jump_target = cf.blocks[term.target]
            cb.jump_event = JumpEvent(fname, cb.name, term.target)
        elif isinstance(term, CondBr):
            cb.term_kind = T_CONDBR
            cb.rel_fn = _REL_FNS[term.rel]
            cb.br_a = _getter(term.a)
            cb.br_b = _getter(term.b)
            cb.taken = cf.blocks[term.taken]
            cb.taken_event = JumpEvent(fname, cb.name, term.taken)
            cb.not_taken = cf.blocks[term.not_taken]
            cb.not_taken_event = JumpEvent(fname, cb.name, term.not_taken)
        elif isinstance(term, Call):
            cb.term_kind = T_CALL
            callee = self.funcs[term.callee]
            cb.call_callee = callee
            cb.call_entry = callee.entry
            cb.call_args = term.args
            cb.call_arg_getters = tuple(_getter(a) for a in term.args)
            cb.call_dest = term.dest
            cb.call_cont = term.cont
            cb.call_cont_cb = cf.blocks[term.cont]
            cb.call_arity_ok = len(term.args) == len(callee.params)
        elif isinstance(term, Return):
            cb.term_kind = T_RETURN
            cb.ret_operand = term.value
            cb.ret_getter = (
                _getter(term.value) if term.value is not None else None
            )
        elif isinstance(term, Halt):
            cb.term_kind = T_HALT
        else:  # pragma: no cover
            raise CompileError(f"unknown terminator {term!r}")


def compile_program(program: Program) -> CompiledProgram:
    """Compile (or return the cached compilation of) a program.

    The table is cached on the program object; programs are treated as
    immutable once validated (mutating blocks after the first
    ``validate()``/run is unsupported, as in any compiled setting).
    """
    cached = getattr(program, "_compiled", None)
    if cached is not None and cached.program is program:
        return cached
    compiled = CompiledProgram(program)
    program._compiled = compiled
    return compiled
