"""Structured frontend: build mini-ISA programs from loops and calls.

Workloads are written against this builder, which *lowers* structured
control flow to plain basic blocks and conditional branches -- the way
a compiler lowers C.  The profiler never sees this structure: it
re-discovers loops from the branch-level code, exactly as POLY-PROF
re-discovers them from optimized x86.

Example::

    pb = ProgramBuilder("demo")
    with pb.function("main", []) as f:
        base = ...  # address passed in via memory setup
        with f.loop(0, 10) as i:          # for (i = 0; i < 10; i++)
            v = f.load("A", index=i)      #   v = A[i]
            f.store("B", f.add(v, 1), index=i)
        f.halt()

Loops are lowered in the classic top-test shape::

    pre:    iv = start; jump header
    header: if !(iv REL bound) goto exit; else goto body
    body:   ...body..., iv = iv + step; jump header

so the loop header dominates the body and the back-edge goes from the
increment block to the header; Havlak's algorithm recovers exactly one
loop per source loop.  A ``bottom_test=True`` variant emits rotated
(do-while) loops for CFG diversity.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple, Union

from .instructions import Call, CondBr, Halt, Instr, Jump, Operand, Return
from .program import BasicBlock, Function, Program

@dataclass
class IfHandle:
    join: str
    else_block: Optional[str]
    has_else: bool = False


@dataclass
class WhileHandle:
    header: str
    exit: str


class FunctionBuilder:
    """Builds one function; obtained from :meth:`ProgramBuilder.function`."""

    def __init__(self, pb: "ProgramBuilder", fn: Function) -> None:
        self._pb = pb
        self.fn = fn
        self._block_counter = 0
        self._reg_counter = 0
        self._cur: Optional[BasicBlock] = fn.add_block(fn.entry)
        self._line: Optional[int] = None
        self._src_depth = 0

    # -- naming ------------------------------------------------------------------

    def fresh_reg(self, hint: str = "t") -> str:
        self._reg_counter += 1
        return f"%{hint}{self._reg_counter}"

    def _fresh_block(self, hint: str) -> BasicBlock:
        self._block_counter += 1
        return self.fn.add_block(f"{hint}{self._block_counter}")

    # -- lines -------------------------------------------------------------------

    def at_line(self, line: Optional[int]) -> None:
        """Set the pretend debug-info line for subsequent instructions."""
        self._line = line

    # -- emission ------------------------------------------------------------------

    def emit(
        self,
        opcode: str,
        srcs: Sequence[Operand],
        dest: Optional[str] = None,
        offset: int = 0,
        line: Optional[int] = None,
    ) -> Optional[str]:
        if self._cur is None:
            raise ValueError(
                f"{self.fn.name}: emitting into a terminated region "
                "(code after ret/halt?)"
            )
        ins = Instr(
            uid=self._pb._next_uid(),
            opcode=opcode,
            dest=dest,
            srcs=tuple(srcs),
            offset=offset,
            src_line=line if line is not None else self._line,
        )
        self._cur.instrs.append(ins)
        return dest

    def _binop(
        self, opcode: str, a: Operand, b: Operand, hint: str,
        into: Optional[str] = None,
    ) -> str:
        d = into if into is not None else self.fresh_reg(hint)
        self.emit(opcode, [a, b], dest=d)
        return d

    def _unop(
        self, opcode: str, a: Operand, hint: str, into: Optional[str] = None
    ) -> str:
        d = into if into is not None else self.fresh_reg(hint)
        self.emit(opcode, [a], dest=d)
        return d

    # integer ops
    def add(self, a: Operand, b: Operand, into: Optional[str] = None) -> str:
        return self._binop("add", a, b, into=into, hint="add")

    def sub(self, a: Operand, b: Operand, into: Optional[str] = None) -> str:
        return self._binop("sub", a, b, into=into, hint="sub")

    def mul(self, a: Operand, b: Operand, into: Optional[str] = None) -> str:
        return self._binop("mul", a, b, into=into, hint="mul")

    def div(self, a: Operand, b: Operand) -> str:
        return self._binop("div", a, b, "div")

    def mod(self, a: Operand, b: Operand) -> str:
        return self._binop("mod", a, b, "mod")

    def cmp(self, rel: str, a: Operand, b: Operand) -> str:
        return self._binop("cmp" + rel, a, b, "cmp")

    # float ops
    def fadd(self, a: Operand, b: Operand, into: Optional[str] = None) -> str:
        return self._binop("fadd", a, b, into=into, hint="f")

    def fsub(self, a: Operand, b: Operand, into: Optional[str] = None) -> str:
        return self._binop("fsub", a, b, into=into, hint="f")

    def fmul(self, a: Operand, b: Operand, into: Optional[str] = None) -> str:
        return self._binop("fmul", a, b, into=into, hint="f")

    def fdiv(self, a: Operand, b: Operand, into: Optional[str] = None) -> str:
        return self._binop("fdiv", a, b, into=into, hint="f")

    def fmin(self, a: Operand, b: Operand, into: Optional[str] = None) -> str:
        return self._binop("fmin", a, b, into=into, hint="f")

    def fmax(self, a: Operand, b: Operand, into: Optional[str] = None) -> str:
        return self._binop("fmax", a, b, into=into, hint="f")

    def fneg(self, a: Operand) -> str:
        return self._unop("fneg", a, "f")

    def fabs(self, a: Operand) -> str:
        return self._unop("fabs", a, "f")

    def fsqrt(self, a: Operand) -> str:
        return self._unop("fsqrt", a, "f")

    def fexp(self, a: Operand) -> str:
        return self._unop("fexp", a, "f")

    def flog(self, a: Operand) -> str:
        return self._unop("flog", a, "f")

    def itof(self, a: Operand) -> str:
        return self._unop("itof", a, "f")

    def ftoi(self, a: Operand) -> str:
        return self._unop("ftoi", a, "i")

    def const(self, value: Union[int, float], hint: str = "c") -> str:
        d = self.fresh_reg(hint)
        self.emit("const", [value], dest=d)
        return d

    def set(self, reg: str, value: Operand) -> str:
        """Assign into a *named* register (for accumulators)."""
        self.emit("mov", [value], dest=reg)
        return reg

    # -- memory ---------------------------------------------------------------------

    def addr(
        self,
        base: Operand,
        index: Optional[Operand] = None,
        scale: int = 1,
        offset: int = 0,
    ) -> Tuple[Operand, int]:
        """Lower an address expression ``base + index*scale + offset``.

        Emits the address arithmetic as ordinary integer instructions
        (the SCEVs the folding stage must recognize and discard) and
        returns ``(address_register_or_base, immediate_offset)``.
        """
        if index is None:
            return base, offset
        if scale != 1:
            index = self.mul(index, scale)
        a = self.add(base, index)
        return a, offset

    def load(
        self,
        base: Operand,
        index: Optional[Operand] = None,
        scale: int = 1,
        offset: int = 0,
        line: Optional[int] = None,
    ) -> str:
        a, off = self.addr(base, index, scale, offset)
        d = self.fresh_reg("ld")
        self.emit("load", [a], dest=d, offset=off, line=line)
        return d

    def store(
        self,
        base: Operand,
        value: Operand,
        index: Optional[Operand] = None,
        scale: int = 1,
        offset: int = 0,
        line: Optional[int] = None,
    ) -> None:
        a, off = self.addr(base, index, scale, offset)
        self.emit("store", [a, value], offset=off, line=line)

    # -- control flow ------------------------------------------------------------------

    def _terminate(self, term) -> None:
        if self._cur is None:
            raise ValueError("terminating a terminated region")
        self._cur.terminator = term
        self._cur = None

    def _start(self, bb: BasicBlock) -> None:
        self._cur = bb

    @contextmanager
    def loop(
        self,
        start: Operand,
        bound: Operand,
        rel: str = "lt",
        step: Operand = 1,
        line: Optional[int] = None,
        bottom_test: bool = False,
        hint: str = "L",
    ) -> Iterator[str]:
        """Counted loop ``for (iv = start; iv REL bound; iv += step)``.

        Yields the induction-variable register.  ``bottom_test`` emits a
        rotated (do-while) loop, which executes the body at least once.
        """
        self._src_depth += 1
        self.fn.src_loop_depth = max(self.fn.src_loop_depth, self._src_depth)
        iv = self.fresh_reg("iv")
        self.emit("mov", [start], dest=iv, line=line)
        if not bottom_test:
            header = self._fresh_block(f"{hint}head")
            body = self._fresh_block(f"{hint}body")
            exit_ = self._fresh_block(f"{hint}exit")
            self._terminate(Jump(header.name))
            header.terminator = CondBr(rel, iv, bound, body.name, exit_.name)
            self._start(body)
            yield iv
            self.emit("add", [iv, step], dest=iv, line=line)
            self._terminate(Jump(header.name))
            self._start(exit_)
        else:
            body = self._fresh_block(f"{hint}body")
            exit_ = self._fresh_block(f"{hint}exit")
            self._terminate(Jump(body.name))
            self._start(body)
            yield iv
            self.emit("add", [iv, step], dest=iv, line=line)
            latch = self._cur
            self._terminate(CondBr(rel, iv, bound, body.name, exit_.name))
            self._start(exit_)
        self._src_depth -= 1

    def if_begin(self, rel: str, a: Operand, b: Operand) -> IfHandle:
        """Open ``if (a rel b) { ... }``; close with :meth:`if_end`,
        optionally after :meth:`if_else`."""
        then = self._fresh_block("then")
        join = self._fresh_block("join")
        self._terminate(CondBr(rel, a, b, then.name, join.name))
        self._start(then)
        return IfHandle(join=join.name, else_block=None)

    def if_else(self, h: IfHandle) -> None:
        els = self._fresh_block("else")
        # re-point the conditional's not-taken edge at the else block
        self._retarget_fallthrough(h.join, els.name)
        if self._cur is not None:
            self._terminate(Jump(h.join))
        self._start(els)
        h.has_else = True

    def _retarget_fallthrough(self, old: str, new: str) -> None:
        for bb in self.fn.blocks.values():
            t = bb.terminator
            if isinstance(t, CondBr) and t.not_taken == old:
                bb.terminator = CondBr(t.rel, t.a, t.b, t.taken, new)
                return
        raise ValueError("if_else: matching branch not found")

    def if_end(self, h: IfHandle) -> None:
        if self._cur is not None:
            self._terminate(Jump(h.join))
        self._start(self.fn.blocks[h.join])

    @contextmanager
    def if_then(self, rel: str, a: Operand, b: Operand) -> Iterator[None]:
        h = self.if_begin(rel, a, b)
        yield
        self.if_end(h)

    def while_begin(self) -> WhileHandle:
        """Open a general while loop: the condition is computed inside
        the header block (call :meth:`while_cond` after emitting it)."""
        self._src_depth += 1
        self.fn.src_loop_depth = max(self.fn.src_loop_depth, self._src_depth)
        header = self._fresh_block("whead")
        exit_ = self._fresh_block("wexit")
        self._terminate(Jump(header.name))
        self._start(header)
        return WhileHandle(header=header.name, exit=exit_.name)

    def while_cond(self, h: WhileHandle, rel: str, a: Operand, b: Operand) -> None:
        body = self._fresh_block("wbody")
        self._terminate(CondBr(rel, a, b, body.name, h.exit))
        self._start(body)

    def while_end(self, h: WhileHandle) -> None:
        self._terminate(Jump(h.header))
        self._start(self.fn.blocks[h.exit])
        self._src_depth -= 1

    def break_to(self, exit_block: str) -> None:
        """Early exit: jump out of the enclosing structured region.

        Leaves the builder without a current block; the caller must be
        inside an ``if`` arm (the usual ``if (cond) break;`` shape).
        """
        self._terminate(Jump(exit_block))

    def call(
        self,
        callee: str,
        args: Sequence[Operand] = (),
        want_result: bool = False,
        line: Optional[int] = None,
    ) -> Optional[str]:
        """Call a function; splits the current block at the call site."""
        cont = self._fresh_block("cont")
        dest = self.fresh_reg("ret") if want_result else None
        self._terminate(Call(callee=callee, args=tuple(args), dest=dest, cont=cont.name))
        self._start(cont)
        return dest

    def ret(self, value: Optional[Operand] = None) -> None:
        self._terminate(Return(value))

    def halt(self) -> None:
        self._terminate(Halt())

    def goto_new_block(self, hint: str = "bb") -> None:
        """Force a block split (unconditional jump to a fresh block)."""
        nxt = self._fresh_block(hint)
        self._terminate(Jump(nxt.name))
        self._start(nxt)


class ProgramBuilder:
    """Builds a whole :class:`Program`."""

    def __init__(self, name: str = "program", main: str = "main") -> None:
        self.program = Program(name=name, main=main)
        self._uid = 0

    def _next_uid(self) -> int:
        self._uid += 1
        return self._uid

    @contextmanager
    def function(
        self,
        name: str,
        params: Sequence[str],
        src_file: Optional[str] = None,
    ) -> Iterator[FunctionBuilder]:
        fn = Function(name=name, params=tuple(params), src_file=src_file)
        self.program.add_function(fn)
        fb = FunctionBuilder(self, fn)
        yield fb
        if fb._cur is not None:
            raise ValueError(
                f"function {name!r} not terminated (missing ret/halt)"
            )
        fn.validate()

    def build(self) -> Program:
        self.program.validate()
        return self.program
