"""Program containers: functions, basic blocks, and (static) programs.

A :class:`Program` is the unit the whole pipeline operates on -- the
stand-in for a compiled binary.  Static structure here is deliberately
minimal: the profiler *discovers* CFGs and the call graph dynamically
(paper section 3); the static containers only exist so the VM can run
the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .instructions import RELATIONS, Call, CondBr, Instr, Terminator


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence plus a terminator."""

    name: str
    instrs: List[Instr] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def successors(self) -> Tuple[str, ...]:
        if self.terminator is None:
            raise ValueError(f"block {self.name} has no terminator")
        return self.terminator.successors()

    def __repr__(self) -> str:
        return f"BasicBlock({self.name}, {len(self.instrs)} instrs, {self.terminator})"


@dataclass
class Function:
    """A function: named parameters plus a block graph with one entry.

    ``src_loop_depth`` records the *source-level* maximal loop nesting
    depth inside the function body, as written in the frontend; the
    paper's Table 5 compares this (``ld-src``) with the loop depth
    recovered from the binary (``ld-bin``).
    """

    name: str
    params: Tuple[str, ...]
    entry: str = "entry"
    blocks: Dict[str, BasicBlock] = field(default_factory=dict)
    src_loop_depth: int = 0
    src_file: Optional[str] = None

    def block(self, name: str) -> BasicBlock:
        return self.blocks[name]

    def add_block(self, name: str) -> BasicBlock:
        if name in self.blocks:
            raise ValueError(f"duplicate block {name!r} in {self.name}")
        bb = BasicBlock(name)
        self.blocks[name] = bb
        return bb

    def validate(self) -> None:
        for bb in self.blocks.values():
            if bb.terminator is None:
                raise ValueError(f"{self.name}/{bb.name}: missing terminator")
            for succ in bb.successors():
                if succ not in self.blocks:
                    raise ValueError(
                        f"{self.name}/{bb.name}: unknown successor {succ!r}"
                    )
        if self.entry not in self.blocks:
            raise ValueError(f"{self.name}: missing entry block {self.entry!r}")


@dataclass
class Program:
    """A set of functions with a designated ``main``."""

    functions: Dict[str, Function] = field(default_factory=dict)
    main: str = "main"
    name: str = "program"

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def function(self, name: str) -> Function:
        return self.functions[name]

    def validate(self) -> None:
        if self.main not in self.functions:
            raise ValueError(f"missing main function {self.main!r}")
        seen_uids: Dict[int, str] = {}
        for fn in self.functions.values():
            fn.validate()
            for bb in fn.blocks.values():
                for ins in bb.instrs:
                    owner = seen_uids.get(ins.uid)
                    if owner is not None:
                        raise ValueError(
                            f"{fn.name}/{bb.name}: duplicate uid {ins.uid} "
                            f"(already used in {owner})"
                        )
                    seen_uids[ins.uid] = fn.name
                if isinstance(bb.terminator, Call):
                    call = bb.terminator
                    if call.callee not in self.functions:
                        raise ValueError(
                            f"{fn.name}/{bb.name}: call to unknown function "
                            f"{call.callee!r}"
                        )
                    callee = self.functions[call.callee]
                    if len(call.args) != len(callee.params):
                        raise ValueError(
                            f"{fn.name}/{bb.name}: call to {call.callee!r} "
                            f"arity mismatch: {len(call.args)} argument(s) "
                            f"for {len(callee.params)} parameter(s)"
                        )
                elif isinstance(bb.terminator, CondBr):
                    if bb.terminator.rel not in RELATIONS:
                        raise ValueError(
                            f"{fn.name}/{bb.name}: unknown relation "
                            f"{bb.terminator.rel!r}"
                        )
        # A validated program is executable: pre-translate its blocks
        # into the fast engine's closure tables (cached on the program,
        # so revalidation is free).
        from .compiler import compile_program

        compile_program(self)

    def all_instrs(self) -> Iterator[Tuple[Function, BasicBlock, Instr]]:
        for fn in self.functions.values():
            for bb in fn.blocks.values():
                for ins in bb.instrs:
                    yield fn, bb, ins

    def instr_count(self) -> int:
        return sum(1 for _ in self.all_instrs())


class Memory:
    """Flat word-addressed memory with a bump allocator.

    One "word" holds one Python number.  Addresses are plain ints, so
    address arithmetic in the program is ordinary integer arithmetic --
    visible to the profiler exactly as in a real binary.
    """

    def __init__(self, size_hint: int = 0) -> None:
        self._data: Dict[int, object] = {}
        self._next = 16  # keep 0..15 unmapped: null-ish addresses fault

    def alloc(self, n: int, init: object = 0) -> int:
        """Allocate ``n`` consecutive words, return the base address."""
        if n < 0:
            raise ValueError("negative allocation")
        base = self._next
        self._next += n
        for i in range(n):
            self._data[base + i] = init
        return base

    def alloc_array(self, values) -> int:
        base = self._next
        self._next += len(values)
        for i, v in enumerate(values):
            self._data[base + i] = v
        return base

    def load(self, addr: int):
        try:
            return self._data[addr]
        except KeyError:
            raise MemoryFault(addr) from None

    def store(self, addr: int, value) -> None:
        if addr < 16:
            raise MemoryFault(addr)
        self._data[addr] = value

    def read_array(self, base: int, n: int) -> List[object]:
        return [self.load(base + i) for i in range(n)]

    def state_items(self) -> Tuple[int, List[Tuple[int, object]]]:
        """The full observable state: the bump-allocator frontier plus
        every allocated ``(address, value)`` pair in address order.
        This is what :func:`repro.isa.fingerprint.fingerprint_state`
        hashes to content-address cached analysis artifacts."""
        return self._next, sorted(self._data.items())

    @property
    def words_allocated(self) -> int:
        return self._next - 16


class MemoryFault(RuntimeError):
    def __init__(self, addr: int) -> None:
        super().__init__(f"memory fault at address {addr}")
        self.addr = addr
