"""The mini-ISA substrate: programs, an instrumenting VM, and a
structured frontend that lowers loops/ifs/calls to branch-level code.

This package substitutes for "x86 binary + QEMU instrumentation" in the
POLY-PROF pipeline (see DESIGN.md, substitution table).
"""

from .events import CallEvent, Instrumentation, JumpEvent, ReturnEvent
from .fingerprint import fingerprint_program, fingerprint_state
from .frontend import FunctionBuilder, ProgramBuilder
from .instructions import Call, CondBr, Halt, Instr, Jump, Return
from .program import BasicBlock, Function, Memory, MemoryFault, Program
from .vm import VM, RunStats, VMError, run_program

__all__ = [
    "BasicBlock",
    "Call",
    "CallEvent",
    "CondBr",
    "Function",
    "FunctionBuilder",
    "Halt",
    "Instr",
    "Instrumentation",
    "Jump",
    "JumpEvent",
    "Memory",
    "MemoryFault",
    "Program",
    "ProgramBuilder",
    "Return",
    "ReturnEvent",
    "RunStats",
    "VM",
    "VMError",
    "fingerprint_program",
    "fingerprint_state",
    "run_program",
]
