"""JSON codec for mini-ISA programs and initial machine state.

The analysis service accepts *inline* submissions -- a program that is
not in the workload registry -- as a JSON document over the wire.  This
module defines that document: a faithful, validating encoding of the
:class:`~repro.isa.program.Program` IR plus the initial ``(args,
memory)`` state a :class:`~repro.pipeline.ProgramSpec`'s ``make_state``
would produce.

The encoding is value-exact (ints stay ints, floats stay floats,
register names stay strings -- JSON already distinguishes all three),
so a program round-tripped through it has the same content fingerprint
(:mod:`repro.isa.fingerprint`) as the original: inline submissions
dedup and cache-key exactly like registered workloads.

``decode_program`` runs :meth:`Program.validate`, so a malformed
document fails loudly at the submission boundary, never inside a
worker.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .instructions import Call, CondBr, Halt, Instr, Jump, Return
from .program import BasicBlock, Function, Memory, Program

#: bump on any change to the program/state document layout
PROGJSON_VERSION = 1


# -- terminators --------------------------------------------------------------------


def _encode_terminator(term) -> dict:
    if isinstance(term, Jump):
        return {"op": "jump", "target": term.target}
    if isinstance(term, CondBr):
        return {
            "op": "br",
            "rel": term.rel,
            "a": term.a,
            "b": term.b,
            "taken": term.taken,
            "not_taken": term.not_taken,
        }
    if isinstance(term, Call):
        return {
            "op": "call",
            "callee": term.callee,
            "args": list(term.args),
            "dest": term.dest,
            "cont": term.cont,
        }
    if isinstance(term, Return):
        return {"op": "ret", "value": term.value}
    if isinstance(term, Halt):
        return {"op": "halt"}
    raise TypeError(f"unknown terminator {type(term).__name__}")


def _decode_terminator(data: dict):
    op = data["op"]
    if op == "jump":
        return Jump(target=data["target"])
    if op == "br":
        return CondBr(
            rel=data["rel"],
            a=data["a"],
            b=data["b"],
            taken=data["taken"],
            not_taken=data["not_taken"],
        )
    if op == "call":
        return Call(
            callee=data["callee"],
            args=tuple(data["args"]),
            dest=data["dest"],
            cont=data["cont"],
        )
    if op == "ret":
        return Return(value=data.get("value"))
    if op == "halt":
        return Halt()
    raise ValueError(f"unknown terminator op {op!r}")


# -- instructions / blocks / functions ----------------------------------------------


def _encode_instr(ins: Instr) -> dict:
    return {
        "uid": ins.uid,
        "opcode": ins.opcode,
        "dest": ins.dest,
        "srcs": list(ins.srcs),
        "offset": ins.offset,
        "line": ins.src_line,
    }


def _decode_instr(data: dict) -> Instr:
    return Instr(
        uid=int(data["uid"]),
        opcode=data["opcode"],
        dest=data.get("dest"),
        srcs=tuple(data.get("srcs", ())),
        offset=int(data.get("offset", 0)),
        src_line=data.get("line"),
    )


def encode_program(program: Program) -> dict:
    return {
        "progjson": PROGJSON_VERSION,
        "name": program.name,
        "main": program.main,
        "functions": [
            {
                "name": fn.name,
                "params": list(fn.params),
                "entry": fn.entry,
                "src_loop_depth": fn.src_loop_depth,
                "src_file": fn.src_file,
                "blocks": [
                    {
                        "name": bb.name,
                        "instrs": [_encode_instr(i) for i in bb.instrs],
                        "term": _encode_terminator(bb.terminator),
                    }
                    for bb in fn.blocks.values()
                ],
            }
            for fn in program.functions.values()
        ],
    }


def decode_program(data: dict) -> Program:
    """Build and validate a program from its JSON document."""
    version = data.get("progjson")
    if version != PROGJSON_VERSION:
        raise ValueError(
            f"unsupported progjson version {version!r} "
            f"(this build speaks {PROGJSON_VERSION})"
        )
    program = Program(
        name=str(data.get("name", "inline")),
        main=str(data.get("main", "main")),
    )
    for fdata in data["functions"]:
        fn = Function(
            name=fdata["name"],
            params=tuple(fdata.get("params", ())),
            entry=fdata.get("entry", "entry"),
            src_loop_depth=int(fdata.get("src_loop_depth", 0)),
            src_file=fdata.get("src_file"),
        )
        for bdata in fdata["blocks"]:
            bb = BasicBlock(
                name=bdata["name"],
                instrs=[_decode_instr(i) for i in bdata.get("instrs", ())],
                terminator=_decode_terminator(bdata["term"]),
            )
            if bb.name in fn.blocks:
                raise ValueError(
                    f"duplicate block {bb.name!r} in {fn.name}"
                )
            fn.blocks[bb.name] = bb
        program.add_function(fn)
    program.validate()
    return program


# -- initial state ------------------------------------------------------------------


def encode_state(args: Sequence, memory: Memory) -> dict:
    """Encode one ``(args, memory)`` pair the way ``make_state``
    produced it (bump frontier + every allocated word)."""
    frontier, words = memory.state_items()
    return {
        "args": list(args),
        "next": frontier,
        "words": [[addr, value] for addr, value in words],
    }


def decode_state(data: dict) -> Tuple[List, Memory]:
    """A *fresh* ``(args, memory)`` pair from a state document.

    Call it once per run, exactly like a workload's ``make_state``:
    the VM consumes the memory it executes against.
    """
    memory = Memory()
    frontier = max(int(data.get("next", 16)), 16)
    for addr, value in data.get("words", ()):
        addr = int(addr)
        if addr < 16:
            raise ValueError(f"state maps reserved address {addr}")
        memory._data[addr] = value
        frontier = max(frontier, addr + 1)
    memory._next = frontier
    return list(data.get("args", ())), memory


def spec_from_documents(
    program_doc: dict,
    state_doc: Optional[dict],
    name: Optional[str] = None,
):
    """An inline :class:`~repro.pipeline.ProgramSpec` from request
    documents.  ``state_doc`` may be None for programs that take no
    arguments and allocate their own memory."""
    from ..pipeline import ProgramSpec

    program = decode_program(program_doc)
    state = state_doc or {"args": [], "next": 16, "words": []}
    # fail at the boundary, not per-run inside a worker
    decode_state(state)
    return ProgramSpec(
        name=name or program.name,
        program=program,
        make_state=lambda: decode_state(state),
        description="inline submission",
    )
