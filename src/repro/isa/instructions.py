"""The mini-ISA instruction set.

POLY-PROF analyzes *binaries*; this reproduction substitutes a small
register-based virtual ISA whose programs expose exactly the features
the paper's pipeline must handle: lowered loops (conditional branches +
back-edges, no loop metadata), linearized multi-dimensional arrays
(explicit address arithmetic, so SCEV recognition has real work to do),
calls/returns across deep call chains, and recursion.

Instruction operands are registers (strings) or integer/float
immediates.  Register files are per-activation (per frame), mirroring
callee-saved registers plus a private stack in a real ABI; values cross
function boundaries only through call arguments, return values, and
memory.

Straight-line instructions (inside a basic block):

====================  =======================================
``const d, imm``      d := imm (int or float)
``mov d, a``          d := a
``add/sub/mul``       integer arithmetic, d := a op b
``div/mod``           integer division (C semantics, trunc)
``and/or/xor``        bitwise
``shl/shr``           shifts
``cmp<rel>``          d := 1 if a rel b else 0  (rel: lt le gt ge eq ne)
``fadd/fsub/fmul/fdiv``  float arithmetic
``fneg/fabs/fsqrt/fexp/flog``  float unary
``fmin/fmax``         float binary
``itof/ftoi``         conversions
``load d, a, off``    d := MEM[a + off]
``store a, off, b``   MEM[a + off] := b
====================  =======================================

Terminators (end a basic block):

* :class:`Jump` -- unconditional local jump.
* :class:`CondBr` -- two-way conditional branch (relation + operands).
* :class:`Call` -- call a function, bind its return value, continue in
  a continuation block (call sites end blocks, as in the paper's
  Fig. 3 where ``B1`` / ``B2`` are split around the call to ``C``).
* :class:`Return` -- return (optionally a value) to the caller.
* :class:`Halt` -- stop the machine (program exit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

Operand = Union[str, int, float]

#: opcodes that read/write floating-point data (drives the %FPops metric)
FLOAT_OPS = frozenset(
    "fadd fsub fmul fdiv fneg fabs fsqrt fexp flog fmin fmax itof".split()
)

#: integer ALU opcodes
INT_OPS = frozenset(
    "add sub mul div mod and or xor shl shr ftoi "
    "cmplt cmple cmpgt cmpge cmpeq cmpne".split()
)

UNARY_OPS = frozenset("mov fneg fabs fsqrt fexp flog itof ftoi".split())

MEM_OPS = frozenset(("load", "store"))

VALID_OPCODES = (
    FLOAT_OPS | INT_OPS | MEM_OPS | frozenset(("const", "mov"))
)

RELATIONS = ("lt", "le", "gt", "ge", "eq", "ne")


@dataclass(frozen=True)
class Instr:
    """One straight-line instruction.

    ``uid`` is the static instruction id, globally unique within a
    :class:`~repro.isa.program.Program`; the profiling stages key
    statements by it.  ``src_line`` is the pretend debug-info line used
    in feedback reports (the paper reports ``file:line`` references).
    """

    uid: int
    opcode: str
    dest: Optional[str] = None
    srcs: Tuple[Operand, ...] = ()
    offset: int = 0  # immediate offset for load/store
    src_line: Optional[int] = None

    def __post_init__(self) -> None:
        if self.opcode not in VALID_OPCODES:
            raise ValueError(f"unknown opcode {self.opcode!r}")

    @property
    def is_load(self) -> bool:
        return self.opcode == "load"

    @property
    def is_store(self) -> bool:
        return self.opcode == "store"

    @property
    def is_mem(self) -> bool:
        return self.opcode in MEM_OPS

    @property
    def is_float(self) -> bool:
        return self.opcode in FLOAT_OPS

    def reg_reads(self) -> Tuple[str, ...]:
        return tuple(s for s in self.srcs if isinstance(s, str))

    def __str__(self) -> str:
        parts = [self.opcode]
        if self.dest:
            parts.append(self.dest + " <-")
        parts.append(", ".join(map(str, self.srcs)))
        if self.is_mem:
            parts.append(f"+{self.offset}")
        return " ".join(parts)


@dataclass(frozen=True)
class Jump:
    target: str

    def successors(self) -> Tuple[str, ...]:
        return (self.target,)


@dataclass(frozen=True)
class CondBr:
    rel: str
    a: Operand
    b: Operand
    taken: str
    not_taken: str

    def __post_init__(self) -> None:
        if self.rel not in RELATIONS:
            raise ValueError(f"unknown relation {self.rel!r}")

    def successors(self) -> Tuple[str, ...]:
        return (self.taken, self.not_taken)


@dataclass(frozen=True)
class Call:
    callee: str
    args: Tuple[Operand, ...]
    dest: Optional[str]  # register receiving the return value
    cont: str            # continuation block in the caller

    def successors(self) -> Tuple[str, ...]:
        # local successor only; the interprocedural edge lives in the CG
        return (self.cont,)


@dataclass(frozen=True)
class Return:
    value: Optional[Operand] = None

    def successors(self) -> Tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class Halt:
    def successors(self) -> Tuple[str, ...]:
        return ()


Terminator = Union[Jump, CondBr, Call, Return, Halt]


def eval_relation(rel: str, a: Union[int, float], b: Union[int, float]) -> bool:
    if rel == "lt":
        return a < b
    if rel == "le":
        return a <= b
    if rel == "gt":
        return a > b
    if rel == "ge":
        return a >= b
    if rel == "eq":
        return a == b
    if rel == "ne":
        return a != b
    raise ValueError(f"unknown relation {rel!r}")
