"""Canonical content hashing of programs and initial machine state.

The artifact store (:mod:`repro.store`) keys cached analysis artifacts
by *what was analyzed*: the :class:`~repro.isa.program.Program` IR and
the initial ``(args, memory)`` state a workload's ``make_state``
produces.  Both are hashed through an explicit canonical byte
encoding -- never ``pickle`` or ``repr`` of whole containers -- so the
digest is stable across processes, Python versions, and dict insertion
orders, and so that *every* semantic detail (uids, opcodes, operand
types, immediates, terminators, debug lines) lands in the hash.  Two
programs differing in any instruction, block name, or source line get
different digests; re-running the same workload factory twice gets the
same digest (workload state is deterministic by construction).

Floats are encoded via ``float.hex()`` (exact, round-trippable);
operands are type-tagged so ``1`` (int), ``1.0`` (float), and ``"1"``
(register name) hash differently.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from .instructions import Call, CondBr, Halt, Jump, Return
from .program import Memory, Program


def _token(value: object) -> str:
    """Type-tagged canonical token for one operand / memory word."""
    if isinstance(value, bool):  # bool is an int subclass: tag first
        return f"b:{int(value)}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value.hex()}"
    if isinstance(value, str):
        return f"s:{value}"
    if value is None:
        return "n"
    raise TypeError(f"unhashable state value of type {type(value).__name__}")


def _terminator_tokens(term: object) -> Iterable[str]:
    if isinstance(term, Jump):
        yield f"jump>{term.target}"
    elif isinstance(term, CondBr):
        yield (
            f"br:{term.rel}:{_token(term.a)}:{_token(term.b)}"
            f">{term.taken}|{term.not_taken}"
        )
    elif isinstance(term, Call):
        args = ",".join(_token(a) for a in term.args)
        yield f"call:{term.callee}({args})->{_token(term.dest)}>{term.cont}"
    elif isinstance(term, Return):
        yield f"ret:{_token(term.value)}"
    elif isinstance(term, Halt):
        yield "halt"
    elif term is None:
        yield "none"
    else:  # pragma: no cover - exhaustive over the terminator union
        raise TypeError(f"unknown terminator {type(term).__name__}")


def program_tokens(program: Program) -> Iterable[str]:
    """The canonical token stream of one program (hashing order)."""
    yield f"program:{program.name}:main={program.main}"
    for fname in sorted(program.functions):
        fn = program.functions[fname]
        yield (
            f"func:{fn.name}:params={','.join(fn.params)}"
            f":entry={fn.entry}:ld={fn.src_loop_depth}"
            f":file={fn.src_file or ''}"
        )
        for bname in sorted(fn.blocks):
            bb = fn.blocks[bname]
            yield f"block:{bname}"
            for ins in bb.instrs:
                srcs = ",".join(_token(s) for s in ins.srcs)
                yield (
                    f"instr:{ins.uid}:{ins.opcode}:{_token(ins.dest)}"
                    f":[{srcs}]:off={ins.offset}:line={ins.src_line}"
                )
            yield from _terminator_tokens(bb.terminator)


def fingerprint_program(program: Program) -> str:
    """Stable content digest (hex sha256) of a program's full IR."""
    h = hashlib.sha256()
    for tok in program_tokens(program):
        h.update(tok.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def fingerprint_state(args: Sequence, memory: Memory) -> str:
    """Stable content digest of one initial ``(args, memory)`` state.

    Hashes the program arguments and the *entire* observable memory
    image (allocated words and the bump-allocator frontier), so any
    change to workload input data invalidates cached artifacts.
    """
    h = hashlib.sha256()
    h.update(b"args\n")
    for a in args:
        h.update(_token(a).encode("utf-8"))
        h.update(b"\n")
    next_addr, items = memory.state_items()
    h.update(f"mem:{next_addr}\n".encode("utf-8"))
    for addr, value in items:
        h.update(f"{addr}={_token(value)}\n".encode("utf-8"))
    return h.hexdigest()
