"""Canonical content hashing of programs and initial machine state.

The artifact store (:mod:`repro.store`) keys cached analysis artifacts
by *what was analyzed*: the :class:`~repro.isa.program.Program` IR and
the initial ``(args, memory)`` state a workload's ``make_state``
produces.  Both are hashed through an explicit canonical byte
encoding -- never ``pickle`` or ``repr`` of whole containers -- so the
digest is stable across processes, Python versions, and dict insertion
orders, and so that *every* semantic detail (uids, opcodes, operand
types, immediates, terminators, debug lines) lands in the hash.  Two
programs differing in any instruction, block name, or source line get
different digests; re-running the same workload factory twice gets the
same digest (workload state is deterministic by construction).

Floats are encoded via ``float.hex()`` (exact, round-trippable);
operands are type-tagged so ``1`` (int), ``1.0`` (float), and ``"1"``
(register name) hash differently.

Beyond the whole-program digest, this module emits **per-function
canonical fingerprints** for the incremental-analysis subsystem
(:mod:`repro.incr`):

* function boundaries in the token stream are tagged explicitly with
  length-prefixed ``func[<len>]:<name>`` headers and an ``end`` marker,
  so adjacent functions can never concatenate ambiguously (a name or
  field containing ``\\n``/``:`` cannot forge a boundary -- the prefix
  pins how many bytes belong to the name);
* :func:`function_fingerprint` hashes one function *canonically*:
  global instruction uids are replaced by function-local ordinals and
  the function's own name is omitted, so the fingerprint is invariant
  under renaming the function and under re-numbering/reordering other
  functions in the program -- exactly the invariance the program
  differ aligns regions by;
* :func:`transitive_fingerprints` folds a function's callees' hashes
  into its own over the call-graph SCC condensation, so an edit deep
  in a call chain changes the transitive hash of everything above it.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .instructions import Call, CondBr, Halt, Jump, Return
from .program import Function, Memory, Program


def _token(value: object) -> str:
    """Type-tagged canonical token for one operand / memory word."""
    if isinstance(value, bool):  # bool is an int subclass: tag first
        return f"b:{int(value)}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value.hex()}"
    if isinstance(value, str):
        return f"s:{value}"
    if value is None:
        return "n"
    raise TypeError(f"unhashable state value of type {type(value).__name__}")


def _terminator_tokens(term: object) -> Iterable[str]:
    if isinstance(term, Jump):
        yield f"jump>{term.target}"
    elif isinstance(term, CondBr):
        yield (
            f"br:{term.rel}:{_token(term.a)}:{_token(term.b)}"
            f">{term.taken}|{term.not_taken}"
        )
    elif isinstance(term, Call):
        args = ",".join(_token(a) for a in term.args)
        yield f"call:{term.callee}({args})->{_token(term.dest)}>{term.cont}"
    elif isinstance(term, Return):
        yield f"ret:{_token(term.value)}"
    elif isinstance(term, Halt):
        yield "halt"
    elif term is None:
        yield "none"
    else:  # pragma: no cover - exhaustive over the terminator union
        raise TypeError(f"unknown terminator {type(term).__name__}")


def function_uid_ordinals(fn: Function) -> Dict[int, int]:
    """Global uid -> function-local ordinal, in canonical traversal
    order (sorted blocks, instruction order within each block).

    The ordinal of an instruction depends only on the function's own
    content, never on where the function sits in the program or how
    the frontend numbered it -- the basis of position-independent
    function fingerprints and of re-mapping cached per-region artifacts
    onto a re-numbered program.
    """
    ordinals: Dict[int, int] = {}
    for bname in sorted(fn.blocks):
        for ins in fn.blocks[bname].instrs:
            ordinals[ins.uid] = len(ordinals)
    return ordinals


def function_ordered_uids(fn: Function) -> List[int]:
    """Function-local ordinal -> global uid (inverse of
    :func:`function_uid_ordinals`)."""
    uids: List[int] = []
    for bname in sorted(fn.blocks):
        for ins in fn.blocks[bname].instrs:
            uids.append(ins.uid)
    return uids


def function_tokens(
    fn: Function,
    uid_of: Optional[Dict[int, int]] = None,
    name: Optional[str] = None,
) -> Iterable[str]:
    """The canonical token stream of one function.

    The header is length-prefixed (``func[<len>]:<name>:...``) so the
    name can never be confused with the fields that follow it, and the
    stream is closed by an ``end`` marker -- per-function splitting of
    a program stream is unambiguous even for adversarial names.

    ``uid_of`` substitutes each instruction uid (e.g. with the
    function-local ordinal); ``name`` overrides the hashed name (the
    canonical per-function fingerprint passes ``""`` to be
    rename-invariant).
    """
    hashed_name = fn.name if name is None else name
    yield (
        f"func[{len(hashed_name)}]:{hashed_name}"
        f":params={','.join(fn.params)}"
        f":entry={fn.entry}:ld={fn.src_loop_depth}"
        f":file={fn.src_file or ''}"
    )
    for bname in sorted(fn.blocks):
        bb = fn.blocks[bname]
        yield f"block[{len(bname)}]:{bname}"
        for ins in bb.instrs:
            uid = ins.uid if uid_of is None else uid_of[ins.uid]
            srcs = ",".join(_token(s) for s in ins.srcs)
            yield (
                f"instr:{uid}:{ins.opcode}:{_token(ins.dest)}"
                f":[{srcs}]:off={ins.offset}:line={ins.src_line}"
            )
        yield from _terminator_tokens(bb.terminator)
    yield "end"


def program_tokens(program: Program) -> Iterable[str]:
    """The canonical token stream of one program (hashing order)."""
    yield f"program:{program.name}:main={program.main}"
    for fname in sorted(program.functions):
        yield from function_tokens(program.functions[fname])


def _digest_tokens(tokens: Iterable[str]) -> str:
    h = hashlib.sha256()
    for tok in tokens:
        h.update(tok.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def fingerprint_program(program: Program) -> str:
    """Stable content digest (hex sha256) of a program's full IR."""
    return _digest_tokens(program_tokens(program))


def function_fingerprint(fn: Function) -> str:
    """Canonical content digest of one function.

    Invariant under renaming the function (its own name is not hashed;
    references to *other* functions in call terminators are) and under
    global uid re-numbering (uids are replaced by function-local
    ordinals).  Any body change -- instructions, operands, block names,
    terminators, params, source lines -- changes the digest.
    """
    return _digest_tokens(
        function_tokens(fn, uid_of=function_uid_ordinals(fn), name="")
    )


def function_fingerprints(program: Program) -> Dict[str, str]:
    """Canonical per-function fingerprints of every function."""
    return {
        name: function_fingerprint(fn)
        for name, fn in program.functions.items()
    }


def block_fingerprints(fn: Function) -> Dict[str, str]:
    """Canonical per-basic-block digests of one function.

    Ordinals are *block-local* (position within the block), not
    function-local: an edit to one block must not ripple into the
    digests of every later block, or the differ's ``blocks_changed``
    diagnostics would name the whole tail of the function."""

    def block_tokens(bname: str) -> Iterable[str]:
        bb = fn.blocks[bname]
        yield f"block[{len(bname)}]:{bname}"
        for o, ins in enumerate(bb.instrs):
            srcs = ",".join(_token(s) for s in ins.srcs)
            yield (
                f"instr:{o}:{ins.opcode}:{_token(ins.dest)}"
                f":[{srcs}]:off={ins.offset}:line={ins.src_line}"
            )
        yield from _terminator_tokens(bb.terminator)

    return {bname: _digest_tokens(block_tokens(bname)) for bname in fn.blocks}


def static_callees(fn: Function) -> Set[str]:
    """Function names this function may call (calls terminate blocks
    in the mini-ISA, so scanning terminators is exhaustive)."""
    out: Set[str] = set()
    for bb in fn.blocks.values():
        if isinstance(bb.terminator, Call):
            out.add(bb.terminator.callee)
    return out


def _call_sccs(program: Program) -> List[List[str]]:
    """Strongly connected components of the static call graph, in
    reverse topological order (callees before callers).  Iterative
    Tarjan -- call chains can be deeper than the recursion limit."""
    names = sorted(program.functions)
    callees = {
        n: sorted(
            c for c in static_callees(program.functions[n])
            if c in program.functions
        )
        for n in names
    }
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in names:
        if root in index:
            continue
        work: List[tuple] = [(root, iter(callees[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for child in it:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(callees[child])))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    m = stack.pop()
                    on_stack.discard(m)
                    scc.append(m)
                    if m == node:
                        break
                sccs.append(sorted(scc))
    return sccs


def transitive_fingerprints(
    program: Program, local: Optional[Dict[str, str]] = None
) -> Dict[str, str]:
    """Call-graph-aware effective hashes: a function's transitive
    fingerprint folds in the transitive fingerprints of everything it
    can reach, so editing a leaf changes the hash of every (transitive)
    caller.  Recursive cycles hash as a unit: every member of an SCC
    folds in the sorted local hashes of the whole component plus the
    transitive hashes of the component's external callees.
    """
    local = local if local is not None else function_fingerprints(program)
    trans: Dict[str, str] = {}
    for scc in _call_sccs(program):
        members = set(scc)
        external: List[str] = []
        for name in scc:
            for c in sorted(static_callees(program.functions[name])):
                if c in members:
                    continue
                # undefined callees hash by name only (validate() bans
                # them in runnable programs; fingerprints stay total)
                external.append(trans.get(c, f"undef[{len(c)}]:{c}"))
        external.sort()
        recursive = len(scc) > 1 or scc[0] in static_callees(
            program.functions[scc[0]]
        )
        if not recursive:
            name = scc[0]
            trans[name] = _digest_tokens(["fn", local[name], *external])
        else:
            unit = _digest_tokens(
                ["scc", *sorted(local[n] for n in scc), *external]
            )
            for name in scc:
                trans[name] = _digest_tokens(["rec", local[name], unit])
    return trans


def fingerprint_state(args: Sequence, memory: Memory) -> str:
    """Stable content digest of one initial ``(args, memory)`` state.

    Hashes the program arguments and the *entire* observable memory
    image (allocated words and the bump-allocator frontier), so any
    change to workload input data invalidates cached artifacts.
    """
    h = hashlib.sha256()
    h.update(b"args\n")
    for a in args:
        h.update(_token(a).encode("utf-8"))
        h.update(b"\n")
    next_addr, items = memory.state_items()
    h.update(f"mem:{next_addr}\n".encode("utf-8"))
    for addr, value in items:
        h.update(f"{addr}={_token(value)}\n".encode("utf-8"))
    return h.hexdigest()
