"""Raw execution events -- the profiler's view of a run.

These mirror what POLY-PROF's QEMU plugins deliver: control events
(``jump`` / ``call`` / ``return``) used by Instrumentation I to build
the control structure and by Algorithms 1-2 to synthesize loop events,
and per-instruction events (values + memory addresses) used by
Instrumentation II to build the DDG.

The classes are plain data; identity of basic blocks and functions is
by name (strings), since the profiler of a real binary only sees
addresses/symbols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class JumpEvent:
    """A local (intraprocedural) transfer of control."""

    func: str
    src_bb: Optional[str]  # None for the initial entry into main
    dst_bb: str


@dataclass(frozen=True)
class CallEvent:
    """A call; ``dst_bb`` is the callee's entry block.

    ``args`` are the static operands of the call instruction (register
    names or immediates) and ``dest`` the register in the caller that
    receives the return value -- information any instrumenter reads off
    the call site's machine code, needed to thread register
    dependences through calls.
    """

    caller: Optional[str]  # None for the synthetic call into main
    callsite_bb: Optional[str]
    callee: str
    dst_bb: str
    frame_id: int
    args: Tuple = ()
    dest: Optional[str] = None


@dataclass(frozen=True)
class ReturnEvent:
    """A return; ``dst_bb`` is the continuation block in the caller.

    ``value`` is the static operand of the return instruction.
    """

    callee: str
    caller: Optional[str]
    dst_bb: Optional[str]  # None when main itself returns/halts
    frame_id: int
    value: Optional[object] = None


ControlEvent = Union[JumpEvent, CallEvent, ReturnEvent]


class Instrumentation:
    """Base observer; the VM invokes these hooks during execution.

    Subclasses override what they need.  ``on_instr`` is the hot path:
    it receives the static instruction, the executing frame's id, the
    produced value (``None`` for stores), and the effective memory
    address (``None`` for non-memory instructions).
    """

    def on_start(self, main: str, entry_bb: str) -> None:  # pragma: no cover
        pass

    def on_jump(self, event: JumpEvent) -> None:  # pragma: no cover
        pass

    def on_call(self, event: CallEvent) -> None:  # pragma: no cover
        pass

    def on_return(self, event: ReturnEvent) -> None:  # pragma: no cover
        pass

    def on_instr(self, instr, frame_id: int, value, addr) -> None:  # pragma: no cover
        pass

    def on_block(self, instrs, frame_id: int, values, addrs) -> None:
        """Batched delivery of one executed basic block.

        The fast engine hands over the block's static instructions plus
        the per-instruction produced values and effective addresses
        (parallel sequences, same length) in execution order.  The base
        implementation unbatches into ``on_instr`` so observers that
        never heard of blocks keep working; hot observers override this
        to amortize per-event work across the block.
        """
        on_instr = self.on_instr
        for i, instr in enumerate(instrs):
            on_instr(instr, frame_id, values[i], addrs[i])

    def on_halt(self) -> None:  # pragma: no cover
        pass
