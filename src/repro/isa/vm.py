"""The instrumenting virtual machine.

Executes a :class:`~repro.isa.program.Program` while feeding raw events
to attached :class:`~repro.isa.events.Instrumentation` observers.  This
is the substitute for QEMU + the paper's instrumentation plugins: the
observers see only what binary instrumentation would see -- control
transfers, executed instructions, produced values, and effective
addresses -- never the frontend's structured source.

Two engines share the event contract:

* ``engine="reference"`` -- the original per-instruction dispatch
  loop.  Deliberately straightforward; it is the executable
  specification the fast path is tested against.
* ``engine="fast"`` (default) -- runs the closure tables built by
  :mod:`repro.isa.compiler`: opcode dispatch, operand classification
  and observer/fuel bookkeeping are hoisted out of the per-instruction
  loop, and instruction events are delivered per *block* through
  :meth:`~repro.isa.events.Instrumentation.on_block` (which unbatches
  to ``on_instr`` for observers that don't override it).

Both engines produce identical events, statistics, and results for any
run that completes; on a faulting run the fast engine's statistics and
event stream are truncated at the same dynamic instruction, delivered
at block granularity.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .events import CallEvent, Instrumentation, JumpEvent, ReturnEvent
from .instructions import (
    Call,
    CondBr,
    Halt,
    Instr,
    Jump,
    Return,
    eval_relation,
)
from .program import Function, Memory, Program

Number = Union[int, float]


class VMError(RuntimeError):
    pass


@dataclass
class _Frame:
    func: Function
    regs: Dict[str, Number]
    frame_id: int
    ret_dest: Optional[str]   # register in the *caller* receiving the value
    cont_bb: Optional[str]    # block in the caller to resume
    caller_index: int         # index of caller frame on the stack
    cont_cb: Optional[object] = None  # compiled continuation block (fast engine)


@dataclass
class RunStats:
    """Aggregate dynamic counts of one execution."""

    dyn_instrs: int = 0
    dyn_branches: int = 0
    dyn_calls: int = 0
    mem_ops: int = 0
    fp_ops: int = 0
    per_opcode: Counter = field(default_factory=Counter)

    @property
    def total_ops(self) -> int:
        return self.dyn_instrs + self.dyn_branches


class VM:
    """Interprets a program, driving instrumentation observers."""

    def __init__(
        self,
        program: Program,
        memory: Optional[Memory] = None,
        observers: Sequence[Instrumentation] = (),
        fuel: int = 50_000_000,
        engine: str = "fast",
    ) -> None:
        if engine not in ("fast", "reference"):
            raise ValueError(f"unknown engine {engine!r}")
        program.validate()
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.observers: List[Instrumentation] = list(observers)
        self.fuel = fuel
        self.engine = engine
        self.stats = RunStats()
        self._next_frame_id = 0

    # -- public API -----------------------------------------------------------

    def run(self, args: Sequence[Number] = ()) -> Optional[Number]:
        """Run ``main(args...)``; returns main's return value."""
        main = self.program.function(self.program.main)
        if len(args) != len(main.params):
            raise VMError(
                f"main expects {len(main.params)} args, got {len(args)}"
            )
        frame = _Frame(
            func=main,
            regs=dict(zip(main.params, args)),
            frame_id=self._new_frame_id(),
            ret_dest=None,
            cont_bb=None,
            caller_index=-1,
        )
        stack: List[_Frame] = [frame]
        for ob in self.observers:
            ob.on_start(main.name, main.entry)
            ob.on_call(
                CallEvent(
                    caller=None,
                    callsite_bb=None,
                    callee=main.name,
                    dst_bb=main.entry,
                    frame_id=frame.frame_id,
                )
            )
            ob.on_jump(JumpEvent(main.name, None, main.entry))
        if self.engine == "fast":
            result = self._exec_fast(stack)
        else:
            result = self._exec(stack)
        for ob in self.observers:
            ob.on_halt()
        return result

    # -- internals --------------------------------------------------------------

    def _new_frame_id(self) -> int:
        self._next_frame_id += 1
        return self._next_frame_id

    def _operand(self, frame: _Frame, op) -> Number:
        if isinstance(op, str):
            try:
                return frame.regs[op]
            except KeyError:
                raise VMError(
                    f"read of undefined register {op!r} in {frame.func.name}"
                ) from None
        return op

    def _exec(self, stack: List[_Frame]) -> Optional[Number]:
        program = self.program
        memory = self.memory
        observers = self.observers
        stats = self.stats
        fuel = self.fuel

        frame = stack[-1]
        bb = frame.func.blocks[frame.func.entry]

        # Per-opcode tallies are accumulated per block execution and
        # merged into stats.per_opcode on exit (see the finally clause)
        # instead of paying two dict operations per dynamic instruction.
        block_execs: Dict[int, list] = {}
        n_done = 0  # instrs executed in the current, unaccounted block

        try:
            while True:
                if stats.dyn_instrs + stats.dyn_branches >= fuel:
                    raise VMError("out of fuel (infinite loop?)")
                for instr in bb.instrs:
                    if stats.dyn_instrs + stats.dyn_branches >= fuel:
                        raise VMError("out of fuel (infinite loop?)")
                    value, addr = self._exec_instr(instr, frame, memory)
                    stats.dyn_instrs += 1
                    n_done += 1
                    if instr.is_mem:
                        stats.mem_ops += 1
                    if instr.is_float:
                        stats.fp_ops += 1
                    for ob in observers:
                        ob.on_instr(instr, frame.frame_id, value, addr)
                if n_done:
                    entry = block_execs.get(id(bb))
                    if entry is None:
                        block_execs[id(bb)] = [bb, 1]
                    else:
                        entry[1] += 1
                    n_done = 0

                term = bb.terminator
                if isinstance(term, Jump):
                    for ob in observers:
                        ob.on_jump(
                            JumpEvent(frame.func.name, bb.name, term.target)
                        )
                    bb = frame.func.blocks[term.target]
                elif isinstance(term, CondBr):
                    stats.dyn_branches += 1
                    a = self._operand(frame, term.a)
                    b = self._operand(frame, term.b)
                    dst = (
                        term.taken
                        if eval_relation(term.rel, a, b)
                        else term.not_taken
                    )
                    for ob in observers:
                        ob.on_jump(JumpEvent(frame.func.name, bb.name, dst))
                    bb = frame.func.blocks[dst]
                elif isinstance(term, Call):
                    stats.dyn_calls += 1
                    callee = program.function(term.callee)
                    if len(term.args) != len(callee.params):
                        raise VMError(
                            f"call {frame.func.name}->{callee.name}: "
                            f"arity mismatch"
                        )
                    argvals = [self._operand(frame, a) for a in term.args]
                    new_frame = _Frame(
                        func=callee,
                        regs=dict(zip(callee.params, argvals)),
                        frame_id=self._new_frame_id(),
                        ret_dest=term.dest,
                        cont_bb=term.cont,
                        caller_index=len(stack) - 1,
                    )
                    for ob in observers:
                        ob.on_call(
                            CallEvent(
                                caller=frame.func.name,
                                callsite_bb=bb.name,
                                callee=callee.name,
                                dst_bb=callee.entry,
                                frame_id=new_frame.frame_id,
                                args=term.args,
                                dest=term.dest,
                            )
                        )
                    stack.append(new_frame)
                    frame = new_frame
                    bb = callee.blocks[callee.entry]
                elif isinstance(term, Return):
                    retval = (
                        self._operand(frame, term.value)
                        if term.value is not None
                        else None
                    )
                    popped = stack.pop()
                    if not stack:
                        for ob in observers:
                            ob.on_return(
                                ReturnEvent(
                                    callee=popped.func.name,
                                    caller=None,
                                    dst_bb=None,
                                    frame_id=popped.frame_id,
                                    value=term.value,
                                )
                            )
                        return retval
                    frame = stack[-1]
                    if popped.ret_dest is not None:
                        if retval is None:
                            raise VMError(
                                f"{popped.func.name} returned no value but "
                                f"caller expects one"
                            )
                        frame.regs[popped.ret_dest] = retval
                    for ob in observers:
                        ob.on_return(
                            ReturnEvent(
                                callee=popped.func.name,
                                caller=frame.func.name,
                                dst_bb=popped.cont_bb,
                                frame_id=popped.frame_id,
                                value=term.value,
                            )
                        )
                    bb = frame.func.blocks[popped.cont_bb]
                elif isinstance(term, Halt):
                    return None
                else:  # pragma: no cover
                    raise VMError(f"unknown terminator {term!r}")
        finally:
            per = stats.per_opcode
            for bb2, n in block_execs.values():
                for instr in bb2.instrs:
                    per[instr.opcode] += n
            if n_done:
                for instr in bb.instrs[:n_done]:
                    per[instr.opcode] += 1

    def _exec_fast(self, stack: List[_Frame]) -> Optional[Number]:
        """Run the block-compiled closure tables (see repro.isa.compiler).

        Statistics are kept in locals and merged into ``self.stats``
        on exit; per-opcode tallies are derived from per-block
        execution counts.  Instruction events are delivered per block
        via ``on_block``; observers overriding neither ``on_block`` nor
        ``on_instr`` cost nothing on the instruction path.
        """
        from .compiler import (
            T_CALL,
            T_CONDBR,
            T_HALT,
            T_JUMP,
            T_RETURN,
            compile_program,
        )

        compiled = compile_program(self.program)
        memory = self.memory
        observers = self.observers
        stats = self.stats
        fuel = self.fuel

        base_block = Instrumentation.on_block
        base_instr = Instrumentation.on_instr
        deliver = [
            ob.on_block
            for ob in observers
            if type(ob).on_block is not base_block
            or type(ob).on_instr is not base_instr
        ]

        frame = stack[-1]
        regs = frame.regs
        frame_id = frame.frame_id
        cb = compiled.funcs[frame.func.name].entry

        dyn_instrs = 0
        dyn_branches = 0
        dyn_calls = 0
        mem_ops = 0
        fp_ops = 0
        block_execs: Dict[int, list] = {}
        partial: Optional[Tuple] = None  # (block, #instrs done) on fault

        try:
            while True:
                if dyn_instrs + dyn_branches >= fuel:
                    raise VMError("out of fuel (infinite loop?)")
                n = cb.n_instrs
                if n:
                    values: List = []
                    addrs: List = []
                    av = values.append
                    aa = addrs.append
                    try:
                        for step in cb.steps:
                            v, a = step(regs, memory)
                            av(v)
                            aa(a)
                    except BaseException as e:
                        # Fault mid-block: account and deliver the
                        # instructions that did execute, then re-raise
                        # (KeyError = undefined register read).
                        k = len(values)
                        partial = (cb, k)
                        dyn_instrs += k
                        done = cb.instrs[:k]
                        for ins in done:
                            if ins.is_mem:
                                mem_ops += 1
                            if ins.is_float:
                                fp_ops += 1
                        if k and deliver:
                            for d in deliver:
                                d(done, frame_id, values, addrs)
                        if isinstance(e, KeyError):
                            raise VMError(
                                f"read of undefined register {e.args[0]!r} "
                                f"in {frame.func.name}"
                            ) from None
                        raise
                    entry = block_execs.get(id(cb))
                    if entry is None:
                        block_execs[id(cb)] = [cb, 1]
                    else:
                        entry[1] += 1
                    dyn_instrs += n
                    mem_ops += cb.mem_ops
                    fp_ops += cb.fp_ops
                    if deliver:
                        instrs = cb.instrs
                        for d in deliver:
                            d(instrs, frame_id, values, addrs)

                kind = cb.term_kind
                if kind == T_CONDBR:
                    dyn_branches += 1
                    try:
                        taken = cb.rel_fn(cb.br_a(regs), cb.br_b(regs))
                    except KeyError as e:
                        raise VMError(
                            f"read of undefined register {e.args[0]!r} "
                            f"in {frame.func.name}"
                        ) from None
                    if taken:
                        ev = cb.taken_event
                        nxt = cb.taken
                    else:
                        ev = cb.not_taken_event
                        nxt = cb.not_taken
                    for ob in observers:
                        ob.on_jump(ev)
                    cb = nxt
                elif kind == T_JUMP:
                    ev = cb.jump_event
                    for ob in observers:
                        ob.on_jump(ev)
                    cb = cb.jump_target
                elif kind == T_CALL:
                    dyn_calls += 1
                    callee = cb.call_callee
                    if not cb.call_arity_ok:
                        raise VMError(
                            f"call {frame.func.name}->{callee.name}: "
                            f"arity mismatch"
                        )
                    try:
                        argvals = [g(regs) for g in cb.call_arg_getters]
                    except KeyError as e:
                        raise VMError(
                            f"read of undefined register {e.args[0]!r} "
                            f"in {frame.func.name}"
                        ) from None
                    new_frame = _Frame(
                        func=callee.func,
                        regs=dict(zip(callee.params, argvals)),
                        frame_id=self._new_frame_id(),
                        ret_dest=cb.call_dest,
                        cont_bb=cb.call_cont,
                        caller_index=len(stack) - 1,
                        cont_cb=cb.call_cont_cb,
                    )
                    for ob in observers:
                        ob.on_call(
                            CallEvent(
                                caller=frame.func.name,
                                callsite_bb=cb.name,
                                callee=callee.name,
                                dst_bb=callee.func.entry,
                                frame_id=new_frame.frame_id,
                                args=cb.call_args,
                                dest=cb.call_dest,
                            )
                        )
                    stack.append(new_frame)
                    frame = new_frame
                    regs = frame.regs
                    frame_id = frame.frame_id
                    cb = callee.entry
                elif kind == T_RETURN:
                    if cb.ret_getter is not None:
                        try:
                            retval = cb.ret_getter(regs)
                        except KeyError as e:
                            raise VMError(
                                f"read of undefined register {e.args[0]!r} "
                                f"in {frame.func.name}"
                            ) from None
                    else:
                        retval = None
                    popped = stack.pop()
                    if not stack:
                        for ob in observers:
                            ob.on_return(
                                ReturnEvent(
                                    callee=popped.func.name,
                                    caller=None,
                                    dst_bb=None,
                                    frame_id=popped.frame_id,
                                    value=cb.ret_operand,
                                )
                            )
                        return retval
                    frame = stack[-1]
                    regs = frame.regs
                    frame_id = frame.frame_id
                    if popped.ret_dest is not None:
                        if retval is None:
                            raise VMError(
                                f"{popped.func.name} returned no value but "
                                f"caller expects one"
                            )
                        regs[popped.ret_dest] = retval
                    for ob in observers:
                        ob.on_return(
                            ReturnEvent(
                                callee=popped.func.name,
                                caller=frame.func.name,
                                dst_bb=popped.cont_bb,
                                frame_id=popped.frame_id,
                                value=cb.ret_operand,
                            )
                        )
                    cb = popped.cont_cb
                elif kind == T_HALT:
                    return None
                else:  # pragma: no cover
                    raise VMError(f"unknown terminator kind {kind!r}")
        finally:
            stats.dyn_instrs += dyn_instrs
            stats.dyn_branches += dyn_branches
            stats.dyn_calls += dyn_calls
            stats.mem_ops += mem_ops
            stats.fp_ops += fp_ops
            per = stats.per_opcode
            for cb2, cnt in block_execs.values():
                for op, c in cb2.opcode_counts.items():
                    per[op] += c * cnt
            if partial is not None:
                pb, k = partial
                for ins in pb.instrs[:k]:
                    per[ins.opcode] += 1

    def _exec_instr(
        self, instr: Instr, frame: _Frame, memory: Memory
    ) -> Tuple[Optional[Number], Optional[int]]:
        """Execute one instruction; returns (produced value, mem addr)."""
        op = instr.opcode
        regs = frame.regs

        if op == "const":
            v = instr.srcs[0]
            regs[instr.dest] = v
            return v, None
        if op == "mov":
            v = self._operand(frame, instr.srcs[0])
            regs[instr.dest] = v
            return v, None
        if op == "load":
            base = self._operand(frame, instr.srcs[0])
            addr = int(base) + instr.offset
            v = memory.load(addr)
            regs[instr.dest] = v
            return v, addr
        if op == "store":
            base = self._operand(frame, instr.srcs[0])
            addr = int(base) + instr.offset
            v = self._operand(frame, instr.srcs[1])
            memory.store(addr, v)
            return v, addr

        a = self._operand(frame, instr.srcs[0])
        b = self._operand(frame, instr.srcs[1]) if len(instr.srcs) > 1 else None

        if op == "add":
            v = a + b
        elif op == "sub":
            v = a - b
        elif op == "mul":
            v = a * b
        elif op == "div":
            # C semantics: truncate toward zero
            if b == 0:
                raise VMError("integer division by zero")
            q = abs(a) // abs(b)
            v = q if (a >= 0) == (b >= 0) else -q
        elif op == "mod":
            if b == 0:
                raise VMError("integer modulo by zero")
            q = abs(a) // abs(b)
            qq = q if (a >= 0) == (b >= 0) else -q
            v = a - b * qq
        elif op == "and":
            v = a & b
        elif op == "or":
            v = a | b
        elif op == "xor":
            v = a ^ b
        elif op == "shl":
            v = a << b
        elif op == "shr":
            v = a >> b
        elif op.startswith("cmp"):
            v = 1 if eval_relation(op[3:], a, b) else 0
        elif op == "fadd":
            v = float(a) + float(b)
        elif op == "fsub":
            v = float(a) - float(b)
        elif op == "fmul":
            v = float(a) * float(b)
        elif op == "fdiv":
            v = float(a) / float(b)
        elif op == "fneg":
            v = -float(a)
        elif op == "fabs":
            v = abs(float(a))
        elif op == "fsqrt":
            v = math.sqrt(a)
        elif op == "fexp":
            v = math.exp(min(a, 700.0))
        elif op == "flog":
            v = math.log(a)
        elif op == "fmin":
            v = min(float(a), float(b))
        elif op == "fmax":
            v = max(float(a), float(b))
        elif op == "itof":
            v = float(a)
        elif op == "ftoi":
            v = int(a)
        else:  # pragma: no cover
            raise VMError(f"unhandled opcode {op!r}")
        regs[instr.dest] = v
        return v, None


def run_program(
    program: Program,
    args: Sequence[Number] = (),
    memory: Optional[Memory] = None,
    observers: Sequence[Instrumentation] = (),
    fuel: int = 50_000_000,
    engine: str = "fast",
) -> Tuple[Optional[Number], RunStats]:
    """Convenience wrapper: run and return (result, stats)."""
    vm = VM(
        program, memory=memory, observers=observers, fuel=fuel, engine=engine
    )
    result = vm.run(args)
    return result, vm.stats
