"""The instrumenting virtual machine.

Executes a :class:`~repro.isa.program.Program` while feeding raw events
to attached :class:`~repro.isa.events.Instrumentation` observers.  This
is the substitute for QEMU + the paper's instrumentation plugins: the
observers see only what binary instrumentation would see -- control
transfers, executed instructions, produced values, and effective
addresses -- never the frontend's structured source.

The interpreter is a straightforward dispatch loop.  Performance
matters only enough to run the scaled Rodinia workloads (10^5-10^6
dynamic instructions) in seconds; the hot path avoids allocation where
easy but otherwise favours being obviously correct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .events import CallEvent, Instrumentation, JumpEvent, ReturnEvent
from .instructions import (
    Call,
    CondBr,
    Halt,
    Instr,
    Jump,
    Return,
    eval_relation,
)
from .program import Function, Memory, Program

Number = Union[int, float]


class VMError(RuntimeError):
    pass


@dataclass
class _Frame:
    func: Function
    regs: Dict[str, Number]
    frame_id: int
    ret_dest: Optional[str]   # register in the *caller* receiving the value
    cont_bb: Optional[str]    # block in the caller to resume
    caller_index: int         # index of caller frame on the stack


@dataclass
class RunStats:
    """Aggregate dynamic counts of one execution."""

    dyn_instrs: int = 0
    dyn_branches: int = 0
    dyn_calls: int = 0
    mem_ops: int = 0
    fp_ops: int = 0
    per_opcode: Dict[str, int] = field(default_factory=dict)

    @property
    def total_ops(self) -> int:
        return self.dyn_instrs + self.dyn_branches


class VM:
    """Interprets a program, driving instrumentation observers."""

    def __init__(
        self,
        program: Program,
        memory: Optional[Memory] = None,
        observers: Sequence[Instrumentation] = (),
        fuel: int = 50_000_000,
    ) -> None:
        program.validate()
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.observers: List[Instrumentation] = list(observers)
        self.fuel = fuel
        self.stats = RunStats()
        self._next_frame_id = 0

    # -- public API -----------------------------------------------------------

    def run(self, args: Sequence[Number] = ()) -> Optional[Number]:
        """Run ``main(args...)``; returns main's return value."""
        main = self.program.function(self.program.main)
        if len(args) != len(main.params):
            raise VMError(
                f"main expects {len(main.params)} args, got {len(args)}"
            )
        frame = _Frame(
            func=main,
            regs=dict(zip(main.params, args)),
            frame_id=self._new_frame_id(),
            ret_dest=None,
            cont_bb=None,
            caller_index=-1,
        )
        stack: List[_Frame] = [frame]
        for ob in self.observers:
            ob.on_start(main.name, main.entry)
            ob.on_call(
                CallEvent(
                    caller=None,
                    callsite_bb=None,
                    callee=main.name,
                    dst_bb=main.entry,
                    frame_id=frame.frame_id,
                )
            )
            ob.on_jump(JumpEvent(main.name, None, main.entry))
        result = self._exec(stack)
        for ob in self.observers:
            ob.on_halt()
        return result

    # -- internals --------------------------------------------------------------

    def _new_frame_id(self) -> int:
        self._next_frame_id += 1
        return self._next_frame_id

    def _operand(self, frame: _Frame, op) -> Number:
        if isinstance(op, str):
            try:
                return frame.regs[op]
            except KeyError:
                raise VMError(
                    f"read of undefined register {op!r} in {frame.func.name}"
                ) from None
        return op

    def _exec(self, stack: List[_Frame]) -> Optional[Number]:
        program = self.program
        memory = self.memory
        observers = self.observers
        stats = self.stats
        fuel = self.fuel

        frame = stack[-1]
        bb = frame.func.blocks[frame.func.entry]

        while True:
            if stats.dyn_instrs + stats.dyn_branches >= fuel:
                raise VMError("out of fuel (infinite loop?)")
            regs = frame.regs
            for instr in bb.instrs:
                if stats.dyn_instrs >= fuel:
                    raise VMError("out of fuel (infinite loop?)")
                value, addr = self._exec_instr(instr, frame, memory)
                stats.dyn_instrs += 1
                op = instr.opcode
                stats.per_opcode[op] = stats.per_opcode.get(op, 0) + 1
                if instr.is_mem:
                    stats.mem_ops += 1
                if instr.is_float:
                    stats.fp_ops += 1
                for ob in observers:
                    ob.on_instr(instr, frame.frame_id, value, addr)

            term = bb.terminator
            if isinstance(term, Jump):
                for ob in observers:
                    ob.on_jump(JumpEvent(frame.func.name, bb.name, term.target))
                bb = frame.func.blocks[term.target]
            elif isinstance(term, CondBr):
                stats.dyn_branches += 1
                a = self._operand(frame, term.a)
                b = self._operand(frame, term.b)
                dst = term.taken if eval_relation(term.rel, a, b) else term.not_taken
                for ob in observers:
                    ob.on_jump(JumpEvent(frame.func.name, bb.name, dst))
                bb = frame.func.blocks[dst]
            elif isinstance(term, Call):
                stats.dyn_calls += 1
                callee = program.function(term.callee)
                if len(term.args) != len(callee.params):
                    raise VMError(
                        f"call {frame.func.name}->{callee.name}: arity mismatch"
                    )
                argvals = [self._operand(frame, a) for a in term.args]
                new_frame = _Frame(
                    func=callee,
                    regs=dict(zip(callee.params, argvals)),
                    frame_id=self._new_frame_id(),
                    ret_dest=term.dest,
                    cont_bb=term.cont,
                    caller_index=len(stack) - 1,
                )
                for ob in observers:
                    ob.on_call(
                        CallEvent(
                            caller=frame.func.name,
                            callsite_bb=bb.name,
                            callee=callee.name,
                            dst_bb=callee.entry,
                            frame_id=new_frame.frame_id,
                            args=term.args,
                            dest=term.dest,
                        )
                    )
                stack.append(new_frame)
                frame = new_frame
                bb = callee.blocks[callee.entry]
            elif isinstance(term, Return):
                retval = (
                    self._operand(frame, term.value)
                    if term.value is not None
                    else None
                )
                popped = stack.pop()
                if not stack:
                    for ob in observers:
                        ob.on_return(
                            ReturnEvent(
                                callee=popped.func.name,
                                caller=None,
                                dst_bb=None,
                                frame_id=popped.frame_id,
                                value=term.value,
                            )
                        )
                    return retval
                frame = stack[-1]
                if popped.ret_dest is not None:
                    if retval is None:
                        raise VMError(
                            f"{popped.func.name} returned no value but caller "
                            f"expects one"
                        )
                    frame.regs[popped.ret_dest] = retval
                for ob in observers:
                    ob.on_return(
                        ReturnEvent(
                            callee=popped.func.name,
                            caller=frame.func.name,
                            dst_bb=popped.cont_bb,
                            frame_id=popped.frame_id,
                            value=term.value,
                        )
                    )
                bb = frame.func.blocks[popped.cont_bb]
            elif isinstance(term, Halt):
                return None
            else:  # pragma: no cover
                raise VMError(f"unknown terminator {term!r}")

    def _exec_instr(
        self, instr: Instr, frame: _Frame, memory: Memory
    ) -> Tuple[Optional[Number], Optional[int]]:
        """Execute one instruction; returns (produced value, mem addr)."""
        op = instr.opcode
        regs = frame.regs

        if op == "const":
            v = instr.srcs[0]
            regs[instr.dest] = v
            return v, None
        if op == "mov":
            v = self._operand(frame, instr.srcs[0])
            regs[instr.dest] = v
            return v, None
        if op == "load":
            base = self._operand(frame, instr.srcs[0])
            addr = int(base) + instr.offset
            v = memory.load(addr)
            regs[instr.dest] = v
            return v, addr
        if op == "store":
            base = self._operand(frame, instr.srcs[0])
            addr = int(base) + instr.offset
            v = self._operand(frame, instr.srcs[1])
            memory.store(addr, v)
            return v, addr

        a = self._operand(frame, instr.srcs[0])
        b = self._operand(frame, instr.srcs[1]) if len(instr.srcs) > 1 else None

        if op == "add":
            v = a + b
        elif op == "sub":
            v = a - b
        elif op == "mul":
            v = a * b
        elif op == "div":
            # C semantics: truncate toward zero
            if b == 0:
                raise VMError("integer division by zero")
            q = abs(a) // abs(b)
            v = q if (a >= 0) == (b >= 0) else -q
        elif op == "mod":
            if b == 0:
                raise VMError("integer modulo by zero")
            q = abs(a) // abs(b)
            qq = q if (a >= 0) == (b >= 0) else -q
            v = a - b * qq
        elif op == "and":
            v = a & b
        elif op == "or":
            v = a | b
        elif op == "xor":
            v = a ^ b
        elif op == "shl":
            v = a << b
        elif op == "shr":
            v = a >> b
        elif op.startswith("cmp"):
            v = 1 if eval_relation(op[3:], a, b) else 0
        elif op == "fadd":
            v = float(a) + float(b)
        elif op == "fsub":
            v = float(a) - float(b)
        elif op == "fmul":
            v = float(a) * float(b)
        elif op == "fdiv":
            v = float(a) / float(b)
        elif op == "fneg":
            v = -float(a)
        elif op == "fabs":
            v = abs(float(a))
        elif op == "fsqrt":
            v = math.sqrt(a)
        elif op == "fexp":
            v = math.exp(min(a, 700.0))
        elif op == "flog":
            v = math.log(a)
        elif op == "fmin":
            v = min(float(a), float(b))
        elif op == "fmax":
            v = max(float(a), float(b))
        elif op == "itof":
            v = float(a)
        elif op == "ftoi":
            v = int(a)
        else:  # pragma: no cover
            raise VMError(f"unhandled opcode {op!r}")
        regs[instr.dest] = v
        return v, None


def run_program(
    program: Program,
    args: Sequence[Number] = (),
    memory: Optional[Memory] = None,
    observers: Sequence[Instrumentation] = (),
    fuel: int = 50_000_000,
) -> Tuple[Optional[Number], RunStats]:
    """Convenience wrapper: run and return (result, stats)."""
    vm = VM(program, memory=memory, observers=observers, fuel=fuel)
    result = vm.run(args)
    return result, vm.stats
