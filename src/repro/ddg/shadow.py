"""Shadow memory for dependence tracking (paper sections 4/9).

One shadow cell per touched data word, recording the last dynamic
writer (statement key + coordinates) and the set of readers since that
write.  This yields:

* **flow** (RAW) dependences: reader depends on last writer;
* **output** (WAW): writer depends on previous writer;
* **anti** (WAR): writer depends on every reader since the last write
  (each dynamic read participates in at most one WAR, so the total
  anti volume is bounded by the number of loads).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .graph import StmtKey

#: (statement, coordinates) of one dynamic instruction
DynRef = Tuple[StmtKey, Tuple[int, ...]]


class ShadowMemory:
    """Last-writer + readers-since-write tracking per address."""

    __slots__ = ("_writer", "_readers")

    def __init__(self) -> None:
        self._writer: Dict[int, DynRef] = {}
        self._readers: Dict[int, List[DynRef]] = {}

    def on_read(self, addr: int, reader: DynRef) -> Optional[DynRef]:
        """Record a read; returns the producing write (RAW source)."""
        w = self._writer.get(addr)
        if w is not None:
            self._readers.setdefault(addr, []).append(reader)
        return w

    def on_write(
        self, addr: int, writer: DynRef
    ) -> Tuple[Optional[DynRef], List[DynRef]]:
        """Record a write; returns (previous writer, readers since).

        The caller turns the previous writer into a WAW edge and each
        reader into a WAR edge.
        """
        prev = self._writer.get(addr)
        readers = self._readers.pop(addr, [])
        self._writer[addr] = writer
        return prev, readers

    def process_block(self, ops) -> List:
        """Bulk read/write processing for one executed block.

        ``ops`` is a sequence of ``(is_store, addr, ref)`` in execution
        order; the result list parallels it: the :meth:`on_read` return
        for loads, the :meth:`on_write` pair for stores.  Semantically
        identical to calling the single-op methods in order, with the
        cell-dict lookups hoisted out of the per-op path.
        """
        writer = self._writer
        readers = self._readers
        out: List = []
        append = out.append
        for is_store, addr, ref in ops:
            if is_store:
                prev = writer.get(addr)
                since = readers.pop(addr, [])
                writer[addr] = ref
                append((prev, since))
            else:
                w = writer.get(addr)
                if w is not None:
                    rl = readers.get(addr)
                    if rl is None:
                        readers[addr] = [ref]
                    else:
                        rl.append(ref)
                append(w)
        return out

    @property
    def touched_words(self) -> int:
        return len(self._writer)
