"""Shadow memory for dependence tracking (paper sections 4/9).

One shadow cell per touched data word, recording the last dynamic
writer (statement key + coordinates) and the set of readers since that
write.  This yields:

* **flow** (RAW) dependences: reader depends on last writer;
* **output** (WAW): writer depends on previous writer;
* **anti** (WAR): writer depends on every reader since the last write
  (each dynamic read participates in at most one WAR, so the total
  anti volume is bounded by the number of loads).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .graph import StmtKey

#: (statement, coordinates) of one dynamic instruction
DynRef = Tuple[StmtKey, Tuple[int, ...]]


class ShadowMemory:
    """Last-writer + readers-since-write tracking per address."""

    __slots__ = ("_writer", "_readers")

    def __init__(self) -> None:
        self._writer: Dict[int, DynRef] = {}
        self._readers: Dict[int, List[DynRef]] = {}

    def on_read(self, addr: int, reader: DynRef) -> Optional[DynRef]:
        """Record a read; returns the producing write (RAW source)."""
        w = self._writer.get(addr)
        if w is not None:
            self._readers.setdefault(addr, []).append(reader)
        return w

    def on_write(
        self, addr: int, writer: DynRef
    ) -> Tuple[Optional[DynRef], List[DynRef]]:
        """Record a write; returns (previous writer, readers since).

        The caller turns the previous writer into a WAW edge and each
        reader into a WAR edge.
        """
        prev = self._writer.get(addr)
        readers = self._readers.pop(addr, [])
        self._writer[addr] = writer
        return prev, readers

    @property
    def touched_words(self) -> int:
        return len(self._writer)
