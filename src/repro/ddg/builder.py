"""Instrumentation II: dynamic dependence graph construction.

This observer implements the paper's second instrumentation pass: it
re-runs the program with the control structure (loop forests +
recursive-component-set) from Instrumentation I, maintains the dynamic
IIV via loop events (Algorithms 1-3), tracks register and memory
dependences, and streams statement/dependence *points* -- coordinates
plus integer labels -- into a :class:`~repro.ddg.graph.DDGSink`
(normally the folding stage).

Label conventions (paper section 5, "Folding interface"):

* memory instructions are labelled with their effective address
  (feeding access-function recognition and stride analysis);
* integer-valued instructions are labelled with the produced value
  (feeding SCEV recognition);
* floating-point instructions carry no label (their values are not
  affine functions of iterators and are never SCEVs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..cfg.loop_events import LoopEventGenerator
from ..cfg.looptree import LoopForest
from ..cfg.rcs import RecursiveComponentSet
from ..iiv.diiv import DynamicIIV
from ..iiv.schedule_tree import DynamicScheduleTree
from ..isa.events import CallEvent, Instrumentation, JumpEvent, ReturnEvent
from ..isa.program import Program
from .graph import (
    DDGSink,
    DepKey,
    MEM_ANTI,
    MEM_FLOW,
    MEM_OUTPUT,
    REG_FLOW,
    Statement,
    StmtKey,
)
from .shadow import DynRef, ShadowMemory


class FrontierViolation(RuntimeError):
    """A dynamic dependence crossed the sliced re-analysis boundary.

    Raised by a frontier-filtered run (``emit_funcs`` set) when shadow
    memory observes a memory dependence between an emitted and a
    non-emitted function: the static frontier was too small, so the
    incremental result cannot be stitched and the caller must fall back
    to a cold full analysis.  This is the dynamic soundness guard -- the
    slicer's may-alias closure only has to be *usually* right."""


class DDGBuilder(Instrumentation):
    """Builds the DDG point streams for one execution.

    When ``emit_funcs`` is given (incremental re-analysis), the builder
    runs two-tier: functions in the set get the full treatment, while
    the rest still execute with live contexts, register definitions,
    and shadow-memory state (so cross-boundary effects are *observed*)
    but emit nothing to the sink -- their folded regions are reused
    from baseline artifacts.  Non-emitted shadow references carry a
    sentinel context id of ``-1``; either tier seeing the other tier's
    kind of reference in a memory-dependence result raises
    :class:`FrontierViolation`.
    """

    def __init__(
        self,
        program: Program,
        forests: Dict[str, LoopForest],
        rcs: RecursiveComponentSet,
        sink: DDGSink,
        track_anti_output: bool = True,
        build_schedule_tree: bool = True,
        emit_funcs: Optional[Set[str]] = None,
    ) -> None:
        self.program = program
        self.sink = sink
        self.track_anti_output = track_anti_output
        self._emit_funcs = (
            frozenset(emit_funcs) if emit_funcs is not None else None
        )
        self.gen = LoopEventGenerator(forests, rcs)
        self.diiv = DynamicIIV()
        self.shadow = ShadowMemory()
        self.schedule_tree = DynamicScheduleTree() if build_schedule_tree else None

        #: frame id -> register -> producing dynamic instruction
        self._reg_defs: Dict[int, Dict[str, DynRef]] = {}
        #: frame id -> (caller frame id, dest register in caller)
        self._frame_info: Dict[int, Tuple[Optional[int], Optional[str]]] = {}
        self._frame_stack: List[int] = []

        # context interning + per-block caching of the IIV view
        self._ctx_ids: Dict[Tuple, int] = {}
        self._cached_ctx_id: Optional[int] = None
        self._cached_ctx: Tuple = ()
        self._cached_coords: Tuple[int, ...] = ()
        self._declared: Set[StmtKey] = set()
        self._current_func: str = ""

        # batched (on_block) path caches.  _block_cache maps
        # (id(instrs), ctx id) -> per-instruction metadata with the
        # statement keys resolved and declared; the cache entry keeps a
        # strong reference to the instrs tuple so the id stays valid.
        # _dep_keys interns DepKey instances (their population is
        # bounded by the static dependence structure).
        self._block_cache: Dict[Tuple[int, int], Tuple] = {}
        self._dep_keys: Dict[Tuple, DepKey] = {}
        # non-emitted tier's (block, ctx) cache: no declarations, no
        # register-read lists -- just uids, dests, and memory kinds
        self._slim_cache: Dict[Tuple[int, int], Tuple] = {}

        #: dynamic instruction count (sanity/metric)
        self.instr_count = 0

    @property
    def context_ids(self) -> Dict[Tuple, int]:
        """The run's context-interning table (context tuple -> id, in
        first-observation order) -- the incremental stitcher re-interns
        reused baseline statements through it."""
        return self._ctx_ids

    # -- control events: keep the IIV current ---------------------------------------

    def _apply_control(self, event) -> None:
        for le in self.gen.process(event):
            self.diiv.apply(le)
        self._cached_ctx_id = None

    def on_jump(self, event: JumpEvent) -> None:
        self._current_func = event.func
        self._apply_control(event)

    def on_call(self, event: CallEvent) -> None:
        # thread register defs from caller args to callee params
        caller_fid = self._frame_stack[-1] if self._frame_stack else None
        callee_defs: Dict[str, DynRef] = {}
        if caller_fid is not None and event.args:
            params = self.program.function(event.callee).params
            caller_defs = self._reg_defs.get(caller_fid, {})
            for param, arg in zip(params, event.args):
                if isinstance(arg, str) and arg in caller_defs:
                    callee_defs[param] = caller_defs[arg]
        self._reg_defs[event.frame_id] = callee_defs
        self._frame_info[event.frame_id] = (caller_fid, event.dest)
        self._frame_stack.append(event.frame_id)
        self._current_func = event.callee
        self._apply_control(event)

    def on_return(self, event: ReturnEvent) -> None:
        fid = self._frame_stack.pop() if self._frame_stack else None
        if fid is not None:
            caller_fid, dest = self._frame_info.pop(fid, (None, None))
            defs = self._reg_defs.pop(fid, {})
            # thread the return value's producer into the caller's dest reg
            if (
                dest is not None
                and caller_fid is not None
                and isinstance(event.value, str)
                and event.value in defs
            ):
                self._reg_defs.setdefault(caller_fid, {})[dest] = defs[event.value]
        if event.caller is not None:
            self._current_func = event.caller
        self._apply_control(event)

    # -- the hot path ------------------------------------------------------------------

    def _context_view(self) -> Tuple[int, Tuple[int, ...]]:
        if self._cached_ctx_id is None:
            ctx = self.diiv.context()
            cid = self._ctx_ids.get(ctx)
            if cid is None:
                cid = len(self._ctx_ids)
                self._ctx_ids[ctx] = cid
            self._cached_ctx_id = cid
            self._cached_ctx = ctx
            self._cached_coords = self.diiv.coords()
        return self._cached_ctx_id, self._cached_coords

    def on_instr(self, instr, frame_id: int, value, addr) -> None:
        filtering = self._emit_funcs is not None
        if filtering and self._current_func not in self._emit_funcs:
            self._slim_instr(instr, frame_id, addr)
            return
        self.instr_count += 1
        cid, coords = self._context_view()
        key: StmtKey = (instr.uid, cid)
        if key not in self._declared:
            self._declared.add(key)
            self.sink.declare_statement(
                Statement(
                    key=key,
                    instr=instr,
                    func=self._current_func,
                    context=self._cached_ctx,
                )
            )
        if self.schedule_tree is not None:
            self.schedule_tree.record_context(self._cached_ctx, 1)

        # label
        if addr is not None:
            label: Tuple[int, ...] = (addr,)
        elif isinstance(value, int):
            label = (value,)
        else:
            label = ()
        self.sink.instr_point(key, coords, label)

        me: DynRef = (key, coords)
        defs = self._reg_defs.setdefault(frame_id, {})

        # register flow dependences
        for reg in instr.srcs:
            if isinstance(reg, str):
                prod = defs.get(reg)
                if prod is not None:
                    self.sink.dep_point(
                        DepKey(src=prod[0], dst=key, kind=REG_FLOW),
                        coords,
                        prod[1],
                    )

        # memory dependences via shadow memory
        if instr.is_load:
            w = self.shadow.on_read(addr, me)
            if w is not None:
                if filtering and w[0][1] == -1:
                    raise FrontierViolation(
                        f"flow dep from non-emitted uid {w[0][0]} into "
                        f"{self._current_func!r}"
                    )
                self.sink.dep_point(
                    DepKey(src=w[0], dst=key, kind=MEM_FLOW), coords, w[1]
                )
        elif instr.is_store:
            prev, readers = self.shadow.on_write(addr, me)
            if self.track_anti_output:
                if prev is not None:
                    if filtering and prev[0][1] == -1:
                        raise FrontierViolation(
                            f"output dep from non-emitted uid {prev[0][0]} "
                            f"into {self._current_func!r}"
                        )
                    self.sink.dep_point(
                        DepKey(src=prev[0], dst=key, kind=MEM_OUTPUT),
                        coords,
                        prev[1],
                    )
                for r in readers:
                    if filtering and r[0][1] == -1:
                        raise FrontierViolation(
                            f"anti dep from non-emitted uid {r[0][0]} into "
                            f"{self._current_func!r}"
                        )
                    self.sink.dep_point(
                        DepKey(src=r[0], dst=key, kind=MEM_ANTI), coords, r[1]
                    )

        # record the definition
        if instr.dest is not None:
            defs[instr.dest] = me

    def _slim_instr(self, instr, frame_id: int, addr) -> None:
        """Non-emitted tier of ``on_instr``: keep contexts, register
        definitions (real references -- emitted callees may consume
        them), and shadow-memory state current, emit nothing.  Shadow
        references use the ``-1`` sentinel context id so cross-boundary
        memory dependences are detectable from both sides."""
        self.instr_count += 1
        cid, coords = self._context_view()
        if self.schedule_tree is not None:
            self.schedule_tree.record_context(self._cached_ctx, 1)
        if instr.is_load:
            w = self.shadow.on_read(addr, ((instr.uid, -1), coords))
            if w is not None and w[0][1] != -1:
                raise FrontierViolation(
                    f"flow dep from emitted statement {w[0]} into "
                    f"non-emitted {self._current_func!r}"
                )
        elif instr.is_store:
            prev, readers = self.shadow.on_write(
                addr, ((instr.uid, -1), coords)
            )
            if self.track_anti_output:
                if prev is not None and prev[0][1] != -1:
                    raise FrontierViolation(
                        f"output dep from emitted statement {prev[0]} into "
                        f"non-emitted {self._current_func!r}"
                    )
                for r in readers:
                    if r[0][1] != -1:
                        raise FrontierViolation(
                            f"anti dep from emitted statement {r[0]} into "
                            f"non-emitted {self._current_func!r}"
                        )
        if instr.dest is not None:
            self._reg_defs.setdefault(frame_id, {})[instr.dest] = (
                (instr.uid, cid),
                coords,
            )

    # -- the batched hot path ----------------------------------------------------------

    def _prime_block(self, instrs, cid: int) -> Tuple:
        """First sighting of (block, context): resolve + declare the
        statement keys and precompute per-instruction metadata."""
        ctx = self._cached_ctx
        func = self._current_func
        declared = self._declared
        declare = self.sink.declare_statement
        metas = []
        for ins in instrs:
            key: StmtKey = (ins.uid, cid)
            if key not in declared:
                declared.add(key)
                declare(
                    Statement(key=key, instr=ins, func=func, context=ctx)
                )
            memk = 1 if ins.is_load else (2 if ins.is_store else 0)
            metas.append((key, ins.reg_reads(), ins.dest, memk))
        # keep `instrs` alive so the id() cache key cannot be reused
        return (instrs, tuple(metas))

    def on_block(self, instrs, frame_id: int, values, addrs) -> None:
        """Batched equivalent of ``on_instr`` for one executed block.

        The context view, statement keys, and declaration checks are
        per-(block, context) and cached; per-instruction work reduces
        to labels, register-def threading, and shadow-memory ops.  The
        emitted per-stream point sequences are identical to the
        unbatched path (streams are keyed per statement / per
        dependence, and batching preserves intra-stream order).
        """
        n = len(instrs)
        if n == 0:
            return
        filtering = self._emit_funcs is not None
        if filtering and self._current_func not in self._emit_funcs:
            self._slim_block(instrs, frame_id, addrs)
            return
        self.instr_count += n
        cid, coords = self._context_view()
        ckey = (id(instrs), cid)
        binfo = self._block_cache.get(ckey)
        if binfo is None:
            binfo = self._prime_block(instrs, cid)
            self._block_cache[ckey] = binfo
        metas = binfo[1]

        if self.schedule_tree is not None:
            self.schedule_tree.record_context(self._cached_ctx, n, visits=n)

        defs = self._reg_defs.setdefault(frame_id, {})
        defs_get = defs.get
        dep_keys = self._dep_keys
        ipoints: List = []
        dpoints: List = []
        mem_ops: List = []
        add_ipoint = ipoints.append
        add_dpoint = dpoints.append

        i = 0
        for key, regs_read, dest, memk in metas:
            value = values[i]
            addr = addrs[i]
            i += 1
            if addr is not None:
                label: Tuple[int, ...] = (addr,)
            elif isinstance(value, int):
                label = (value,)
            else:
                label = ()
            add_ipoint((key, label))

            for reg in regs_read:
                prod = defs_get(reg)
                if prod is not None:
                    ident = (prod[0], key, REG_FLOW)
                    dk = dep_keys.get(ident)
                    if dk is None:
                        dk = DepKey(src=prod[0], dst=key, kind=REG_FLOW)
                        dep_keys[ident] = dk
                    add_dpoint((dk, prod[1]))

            if memk:
                me: DynRef = (key, coords)
                mem_ops.append((memk == 2, addr, me))
                if dest is not None:
                    defs[dest] = me
            elif dest is not None:
                defs[dest] = (key, coords)

        if mem_ops:
            results = self.shadow.process_block(mem_ops)
            track = self.track_anti_output
            for (is_store, _addr, me), res in zip(mem_ops, results):
                key = me[0]
                if not is_store:
                    if res is not None:
                        if filtering and res[0][1] == -1:
                            raise FrontierViolation(
                                f"flow dep from non-emitted uid {res[0][0]} "
                                f"into {self._current_func!r}"
                            )
                        ident = (res[0], key, MEM_FLOW)
                        dk = dep_keys.get(ident)
                        if dk is None:
                            dk = DepKey(src=res[0], dst=key, kind=MEM_FLOW)
                            dep_keys[ident] = dk
                        add_dpoint((dk, res[1]))
                elif track:
                    prev, readers = res
                    if prev is not None:
                        if filtering and prev[0][1] == -1:
                            raise FrontierViolation(
                                f"output dep from non-emitted uid "
                                f"{prev[0][0]} into {self._current_func!r}"
                            )
                        ident = (prev[0], key, MEM_OUTPUT)
                        dk = dep_keys.get(ident)
                        if dk is None:
                            dk = DepKey(src=prev[0], dst=key, kind=MEM_OUTPUT)
                            dep_keys[ident] = dk
                        add_dpoint((dk, prev[1]))
                    for r in readers:
                        if filtering and r[0][1] == -1:
                            raise FrontierViolation(
                                f"anti dep from non-emitted uid {r[0][0]} "
                                f"into {self._current_func!r}"
                            )
                        ident = (r[0], key, MEM_ANTI)
                        dk = dep_keys.get(ident)
                        if dk is None:
                            dk = DepKey(src=r[0], dst=key, kind=MEM_ANTI)
                            dep_keys[ident] = dk
                        add_dpoint((dk, r[1]))

        self.sink.instr_points(coords, ipoints)
        if dpoints:
            self.sink.dep_points(coords, dpoints)

    def _slim_block(self, instrs, frame_id: int, addrs) -> None:
        """Non-emitted tier of ``on_block``: contexts, register
        definitions, shadow state, and the schedule tree stay exactly
        as in a full run; statement declarations, labels, register-read
        lookups, and all sink emission are skipped (the function's
        folded region is reused from a baseline artifact)."""
        n = len(instrs)
        self.instr_count += n
        cid, coords = self._context_view()
        ckey = (id(instrs), cid)
        sinfo = self._slim_cache.get(ckey)
        if sinfo is None:
            metas = tuple(
                (
                    ins.uid,
                    ins.dest,
                    1 if ins.is_load else (2 if ins.is_store else 0),
                )
                for ins in instrs
            )
            # keep `instrs` alive so the id() cache key cannot be reused
            sinfo = (instrs, metas)
            self._slim_cache[ckey] = sinfo

        if self.schedule_tree is not None:
            self.schedule_tree.record_context(self._cached_ctx, n, visits=n)

        defs = self._reg_defs.setdefault(frame_id, {})
        mem_ops: List = []
        i = 0
        for uid, dest, memk in sinfo[1]:
            if memk:
                mem_ops.append((memk == 2, addrs[i], ((uid, -1), coords)))
            if dest is not None:
                defs[dest] = ((uid, cid), coords)
            i += 1

        if mem_ops:
            results = self.shadow.process_block(mem_ops)
            track = self.track_anti_output
            for (is_store, _addr, _me), res in zip(mem_ops, results):
                if not is_store:
                    if res is not None and res[0][1] != -1:
                        raise FrontierViolation(
                            f"flow dep from emitted statement {res[0]} into "
                            f"non-emitted {self._current_func!r}"
                        )
                elif track:
                    prev, readers = res
                    if prev is not None and prev[0][1] != -1:
                        raise FrontierViolation(
                            f"output dep from emitted statement {prev[0]} "
                            f"into non-emitted {self._current_func!r}"
                        )
                    for r in readers:
                        if r[0][1] != -1:
                            raise FrontierViolation(
                                f"anti dep from emitted statement {r[0]} "
                                f"into non-emitted {self._current_func!r}"
                            )
