"""Dynamic dependence graph (paper section 4): shadow memory, the
statement/dependence point streams, and the Instrumentation-II builder.
"""

from .builder import DDGBuilder, FrontierViolation
from .graph import (
    DDGSink,
    DepKey,
    MEM_ANTI,
    MEM_FLOW,
    MEM_OUTPUT,
    REG_FLOW,
    RecordingSink,
    Statement,
    StmtKey,
)
from .shadow import ShadowMemory

__all__ = [
    "DDGBuilder",
    "DDGSink",
    "FrontierViolation",
    "DepKey",
    "MEM_ANTI",
    "MEM_FLOW",
    "MEM_OUTPUT",
    "REG_FLOW",
    "RecordingSink",
    "ShadowMemory",
    "Statement",
    "StmtKey",
]
