"""Dynamic dependence graph abstractions.

A *statement* of the DDG is a static instruction in one dynamic
context (the non-numerical part of its dynamic IIV); its dynamic
instances are integer points (the numerical coordinates).  A
*dependence stream* is keyed by (producer statement, consumer
statement, kind) and carries one point per dynamic dependence: the
consumer's coordinates, labelled with the producer's coordinates --
exactly the shape of the paper's Table 1.

The builder streams points into a :class:`DDGSink`; the folding stage
implements the sink by compressing on the fly, while the
:class:`RecordingSink` used in tests simply stores everything (the
uncompressed DDG of, e.g., Redux -- whose unscalability the paper
points out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa.instructions import Instr

#: statement key: (static instruction uid, interned context id)
StmtKey = Tuple[int, int]

#: dependence kinds
REG_FLOW = "reg"     # register read-after-write
MEM_FLOW = "flow"    # memory read-after-write (true dependence)
MEM_ANTI = "anti"    # memory write-after-read
MEM_OUTPUT = "output"  # memory write-after-write

DEP_KINDS = (REG_FLOW, MEM_FLOW, MEM_ANTI, MEM_OUTPUT)


@dataclass(frozen=True)
class DepKey:
    """Identity of one dependence stream."""

    src: StmtKey     # producer statement
    dst: StmtKey     # consumer statement
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in DEP_KINDS:
            raise ValueError(f"unknown dependence kind {self.kind!r}")


@dataclass
class Statement:
    """Static instruction x dynamic context."""

    key: StmtKey
    instr: Instr
    func: str
    context: Tuple[Tuple[str, ...], ...]

    @property
    def depth(self) -> int:
        """Number of loop dimensions of the statement's domain."""
        return len(self.context) - 1

    @property
    def uid(self) -> int:
        return self.key[0]


class DDGSink:
    """Consumer interface for the statement/dependence point streams."""

    def declare_statement(self, stmt: Statement) -> None:  # pragma: no cover
        pass

    def instr_point(
        self, key: StmtKey, coords: Tuple[int, ...], label: Tuple[int, ...]
    ) -> None:  # pragma: no cover
        pass

    def dep_point(
        self,
        dep: DepKey,
        dst_coords: Tuple[int, ...],
        src_coords: Tuple[int, ...],
    ) -> None:  # pragma: no cover
        pass

    # -- batched entry points (one executed block, shared coordinates) ---------
    #
    # The batched builder emits one call per block instead of one per
    # point; ``coords`` is block-constant so it is hoisted into the
    # call signature.  The defaults unbatch, so any sink keeps working;
    # the folding sink overrides them to amortize per-point overhead.

    def instr_points(self, coords: Tuple[int, ...], items) -> None:
        """Deliver [(stmt key, label), ...] sharing one coordinate tuple."""
        instr_point = self.instr_point
        for key, label in items:
            instr_point(key, coords, label)

    def dep_points(self, dst_coords: Tuple[int, ...], items) -> None:
        """Deliver [(dep key, src coords), ...] sharing dst coords."""
        dep_point = self.dep_point
        for dep, src_coords in items:
            dep_point(dep, dst_coords, src_coords)


class RecordingSink(DDGSink):
    """Stores the full (uncompressed) DDG; for tests and small runs."""

    def __init__(self) -> None:
        self.statements: Dict[StmtKey, Statement] = {}
        self.points: Dict[StmtKey, List[Tuple[Tuple[int, ...], Tuple[int, ...]]]] = {}
        self.deps: Dict[DepKey, List[Tuple[Tuple[int, ...], Tuple[int, ...]]]] = {}

    def declare_statement(self, stmt: Statement) -> None:
        self.statements.setdefault(stmt.key, stmt)

    def instr_point(self, key, coords, label):
        self.points.setdefault(key, []).append((coords, label))

    def dep_point(self, dep, dst_coords, src_coords):
        self.deps.setdefault(dep, []).append((dst_coords, src_coords))

    # -- conveniences for tests ------------------------------------------------

    def deps_between(self, src_uid: int, dst_uid: int, kind: Optional[str] = None):
        out = []
        for dep, pts in self.deps.items():
            if dep.src[0] == src_uid and dep.dst[0] == dst_uid:
                if kind is None or dep.kind == kind:
                    out.extend(pts)
        return out

    def dynamic_instances(self, uid: int):
        out = []
        for key, pts in self.points.items():
            if key[0] == uid:
                out.extend(pts)
        return out
