"""Dynamic interprocedural iteration vectors and related structures
(paper section 4): Algorithm 3, the dynamic schedule tree, Kelly's
mapping, and the calling-context tree.
"""

from .cct import CallingContextTree, CCTNode
from .diiv import Dimension, DynamicIIV
from .kelly import (
    ScheduleNode,
    kelly_mapping,
    kelly_vector,
    schedule_precedes,
)
from .schedule_tree import DynamicScheduleTree, DynNode

__all__ = [
    "CCTNode",
    "CallingContextTree",
    "Dimension",
    "DynNode",
    "DynamicIIV",
    "DynamicScheduleTree",
    "ScheduleNode",
    "kelly_mapping",
    "kelly_vector",
    "schedule_precedes",
]
