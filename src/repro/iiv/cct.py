"""Calling-context trees (Ammons-Ball-Larus), call-site labelled.

The CCT is the comparison structure of the paper's Fig. 5: it encodes
calling contexts compactly for non-recursive programs, but its paths
grow linearly with recursion depth -- the problem the dynamic IIV's
recursive-component folding solves.  We keep a faithful CCT
implementation both for that comparison (tested explicitly) and for
the flame-graph fallback view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..isa.events import CallEvent, Instrumentation, ReturnEvent


@dataclass
class CCTNode:
    """One calling context: a function labelled with its call site."""

    func: str
    call_site: Optional[str]            # caller block containing the call
    calls: int = 0
    instrs: int = 0
    children: Dict[Tuple[str, Optional[str]], "CCTNode"] = field(
        default_factory=dict
    )

    def child(self, func: str, call_site: Optional[str]) -> "CCTNode":
        key = (func, call_site)
        node = self.children.get(key)
        if node is None:
            node = CCTNode(func, call_site)
            self.children[key] = node
        return node

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "CCTNode"]]:
        yield depth, self
        for key in sorted(self.children, key=lambda k: (k[0], k[1] or "")):
            yield from self.children[key].walk(depth + 1)


class CallingContextTree(Instrumentation):
    """Instrumentation observer that builds the CCT during execution."""

    def __init__(self) -> None:
        self.root = CCTNode("<root>", None)
        self._stack: List[CCTNode] = [self.root]

    # -- event hooks ---------------------------------------------------------

    def on_call(self, event: CallEvent) -> None:
        node = self._stack[-1].child(event.callee, event.callsite_bb)
        node.calls += 1
        self._stack.append(node)

    def on_return(self, event: ReturnEvent) -> None:
        if len(self._stack) > 1:
            self._stack.pop()

    def on_instr(self, instr, frame_id: int, value, addr) -> None:
        self._stack[-1].instrs += 1

    # -- views ------------------------------------------------------------------

    def depth(self) -> int:
        return max((d for d, _ in self.root.walk()), default=0)

    def node_count(self) -> int:
        return sum(1 for _ in self.root.walk()) - 1

    def render_text(self) -> str:
        lines: List[str] = []
        for depth, node in self.root.walk():
            if node is self.root:
                continue
            site = f" ({node.call_site})" if node.call_site else ""
            lines.append(
                "  " * (depth - 1)
                + f"{node.func}{site} calls={node.calls} instrs={node.instrs}"
            )
        return "\n".join(lines)
