"""Kelly's mapping: schedule trees for static loop nests (paper Fig. 4).

A schedule tree is a decorated loop-nesting forest: every node carries
a *static index* (its topological position among the siblings of its
loop region) and every loop node a *canonical induction variable*.
The iteration vector of a statement is the root-to-leaf alternation of
static indices and induction variables; lexicographic order of the
numerical vectors is exactly the original execution order.

This module implements the static form, used by the feedback stage to
describe transformed code structure; the *dynamic* analogue built from
executions lives in :mod:`repro.iiv.schedule_tree`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Union


@dataclass
class ScheduleNode:
    """A node of a static schedule tree.

    ``kind`` is 'loop', 'stmt', or 'root'.  Loops carry an induction
    variable name; all nodes carry the static index assigned within
    their parent region.
    """

    kind: str
    name: str
    static_index: int = 0
    iv: Optional[str] = None
    children: List["ScheduleNode"] = field(default_factory=list)
    parent: Optional["ScheduleNode"] = None

    def add(self, child: "ScheduleNode") -> "ScheduleNode":
        child.static_index = len(self.children)
        child.parent = self
        self.children.append(child)
        return child

    # -- construction sugar ----------------------------------------------------

    @classmethod
    def root(cls, name: str = "root") -> "ScheduleNode":
        return cls("root", name)

    def loop(self, name: str, iv: str) -> "ScheduleNode":
        return self.add(ScheduleNode("loop", name, iv=iv))

    def stmt(self, name: str) -> "ScheduleNode":
        return self.add(ScheduleNode("stmt", name))

    # -- queries ------------------------------------------------------------------

    def leaves(self) -> Iterator["ScheduleNode"]:
        if self.kind == "stmt":
            yield self
        for c in self.children:
            yield from c.leaves()

    def find(self, name: str) -> Optional["ScheduleNode"]:
        if self.name == name:
            return self
        for c in self.children:
            r = c.find(name)
            if r is not None:
                return r
        return None

    def path_from_root(self) -> List["ScheduleNode"]:
        path: List[ScheduleNode] = []
        node: Optional[ScheduleNode] = self
        while node is not None and node.kind != "root":
            path.append(node)
            node = node.parent
        path.reverse()
        return path


def kelly_mapping(stmt: ScheduleNode) -> List[Union[str, int]]:
    """Textual Kelly mapping of a statement: alternating region names
    and induction variables, e.g. ``[L_i, i, L_j, j, S]`` (Fig. 4c)."""
    out: List[Union[str, int]] = []
    for node in stmt.path_from_root():
        out.append(node.name)
        if node.kind == "loop":
            out.append(node.iv)
    return out


def kelly_vector(stmt: ScheduleNode) -> List[Union[str, int]]:
    """Numerical Kelly mapping: alternating static indices and
    induction variables, e.g. ``[0, i, 0, j, 1]`` (Fig. 4c)."""
    out: List[Union[str, int]] = []
    for node in stmt.path_from_root():
        out.append(node.static_index)
        if node.kind == "loop":
            out.append(node.iv)
    return out


def schedule_precedes(a: Sequence[Union[str, int]], b: Sequence[Union[str, int]]) -> bool:
    """Does statement instance vector ``a`` execute before ``b``?

    Vectors are fully-instantiated numerical Kelly vectors (all ints).
    Comparison is lexicographic, padding the shorter with -infinity
    (a prefix executes before its extensions' later instances).
    """
    for x, y in zip(a, b):
        if x != y:
            return x < y
    return len(a) < len(b)
