"""The dynamic schedule tree (paper Fig. 3e/3j and Fig. 5).

The dynamic schedule tree is to dynamic IIVs what the calling-context
tree is to calling-context paths: one node per distinct *context
element path*, merging all dynamic instances.  POLY-PROF renders it as
a flame graph (root at the bottom); each node carries weight metrics
(dynamic instruction counts) that set box widths.

Nodes are keyed by the flattened context path of the dynamic IIV:
every context element (call-stack entries, loop ids, block ids) is one
tree level, so loops and calls appear uniformly -- the unification of
schedule trees and CCTs that section 4 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from .diiv import DynamicIIV


@dataclass
class DynNode:
    """One node of the dynamic schedule tree."""

    element: str                       # context element (block / loop / call)
    is_loop: bool = False
    weight: int = 0                    # dynamic instructions at/below this path
    self_weight: int = 0               # dynamic instructions exactly here
    visits: int = 0                    # dynamic instances merged into the node
    children: Dict[str, "DynNode"] = field(default_factory=dict)

    def child(self, element: str, is_loop: bool = False) -> "DynNode":
        node = self.children.get(element)
        if node is None:
            node = DynNode(element, is_loop=is_loop)
            self.children[element] = node
        return node

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "DynNode"]]:
        yield depth, self
        for key in sorted(self.children):
            yield from self.children[key].walk(depth + 1)


class DynamicScheduleTree:
    """Accumulates dynamic IIV contexts into a schedule tree."""

    def __init__(self) -> None:
        self.root = DynNode("<root>")

    def record(self, diiv: DynamicIIV, ninstr: int = 1) -> None:
        """Merge the current context (ignoring induction values) into
        the tree, attributing ``ninstr`` dynamic instructions to the
        leaf."""
        self.record_context(diiv.context(), ninstr)

    def record_context(
        self,
        context: Sequence[Sequence[str]],
        ninstr: int = 1,
        visits: int = 1,
    ) -> None:
        node = self.root
        node.weight += ninstr
        for dim_index, ctx in enumerate(context):
            for j, element in enumerate(ctx):
                is_loop = dim_index + 1 < len(context) and j == len(ctx) - 1
                node = node.child(element, is_loop=is_loop)
                node.weight += ninstr
        node.self_weight += ninstr
        node.visits += visits

    # -- views ----------------------------------------------------------------------

    def depth(self) -> int:
        return max((d for d, _ in self.root.walk()), default=0)

    def node_count(self) -> int:
        return sum(1 for _ in self.root.walk()) - 1

    def render_text(self) -> str:
        """Indented text rendering (flame-graph data source)."""
        lines: List[str] = []
        for depth, node in self.root.walk():
            if node is self.root:
                continue
            tag = " [loop]" if node.is_loop else ""
            lines.append(
                "  " * (depth - 1)
                + f"{node.element}{tag} weight={node.weight} visits={node.visits}"
            )
        return "\n".join(lines)

    def frames(self) -> Iterator[Tuple[Tuple[str, ...], DynNode]]:
        """(path, node) pairs for flame-graph emission."""

        def rec(node: DynNode, path: Tuple[str, ...]) -> Iterator:
            for key in sorted(node.children):
                child = node.children[key]
                cpath = path + (key,)
                yield cpath, child
                yield from rec(child, cpath)

        yield from rec(self.root, ())

    def to_collapsed(self) -> str:
        """Collapsed-stack rendering (Brendan Gregg's format).

        One line per leaf path, ``elem;elem;... self_weight`` --
        directly consumable by the standard ``flamegraph.pl`` tooling
        the paper's flame graphs build on.
        """
        lines: List[str] = []
        for path, node in self.frames():
            if node.self_weight:
                lines.append(";".join(path) + f" {node.self_weight}")
        return "\n".join(lines)
