"""Algorithm 3: maintenance of the dynamic interprocedural iteration
vector (dynamic IIV).

A dynamic IIV alternates *context* entries (stacks of calling contexts
ending in a loop id or basic-block id) and *canonical induction
variables* (integers starting at 0, incremented by 1 on every loop
iteration event).  It unifies Kelly's mapping (intraprocedural
schedule-tree coordinates) with calling-context paths, and stays
bounded in the presence of recursion: recursive calls/returns to a
component header *increment* the innermost induction variable instead
of growing the vector (paper section 4, Fig. 3f-k).

The update rules follow the paper's Algorithm 3, completed with two
behaviours its pseudo-code leaves to the examples:

* a plain jump event ``N(B)`` updates the innermost context's last
  element to ``B`` (visible in every row of Fig. 3d/3i);
* a recursive-loop exit ``Xr(L, B)`` also pops the context element
  that the entering call pushed (step 22 of Fig. 3i ends at ``(M1)``,
  not ``(M1/L1)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..cfg.loop_events import LoopEvent


@dataclass
class Dimension:
    """One (induction variable, context) pair of the dynamic IIV.

    The outermost dimension of a program execution has no induction
    variable (``iv is None``): it is pure calling context, like the
    ``(M0)`` root of the paper's examples.
    """

    iv: Optional[int]
    ctx: List[str] = field(default_factory=list)

    def ctx_last_set(self, element: str) -> None:
        if self.ctx:
            self.ctx[-1] = element
        else:
            self.ctx.append(element)

    def snapshot(self) -> Tuple[Optional[int], Tuple[str, ...]]:
        return self.iv, tuple(self.ctx)


class DynamicIIV:
    """The dynamic IIV of the executing program point."""

    def __init__(self) -> None:
        self.dims: List[Dimension] = [Dimension(iv=None)]

    # -- event application ---------------------------------------------------

    def apply(self, ev: LoopEvent) -> None:
        kind = ev.kind
        inner = self.dims[-1]
        if kind == "N":
            inner.ctx_last_set(ev.block)
        elif kind == "C":
            inner.ctx.append(ev.block)
        elif kind == "E":
            inner.ctx_last_set(ev.loop.id)
            self.dims.append(Dimension(iv=0, ctx=[ev.block]))
        elif kind == "Ec":
            inner.ctx.append(ev.loop.id)
            self.dims.append(Dimension(iv=0, ctx=[ev.block]))
        elif kind in ("I", "Ic", "Ir"):
            if inner.iv is None:
                raise ValueError(f"iteration event {ev} on context-only dim")
            inner.iv += 1
            inner.ctx_last_set(ev.block)
        elif kind == "X":
            self._pop_dim()
            if ev.block is not None:
                self.dims[-1].ctx_last_set(ev.block)
        elif kind == "Xr":
            self._pop_dim()
            inner = self.dims[-1]
            if inner.ctx:
                inner.ctx.pop()
            if ev.block is not None:
                inner.ctx_last_set(ev.block)
        elif kind == "R":
            if inner.ctx:
                inner.ctx.pop()
            if ev.block is not None:
                inner.ctx_last_set(ev.block)
        else:  # pragma: no cover
            raise ValueError(f"unknown loop event kind {kind!r}")

    def _pop_dim(self) -> None:
        if len(self.dims) <= 1:
            raise ValueError("removeDimension() on the root dimension")
        self.dims.pop()

    # -- views ---------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of induction variables (loop dimensions)."""
        return len(self.dims) - 1

    def coords(self) -> Tuple[int, ...]:
        """The numerical part: induction variables, outer to inner."""
        return tuple(d.iv for d in self.dims[1:])

    def context(self) -> Tuple[Tuple[str, ...], ...]:
        """The non-numerical part: per-dimension context stacks.

        This is the folding key: dynamic instructions with equal
        contexts fold into the same statement domain.
        """
        return tuple(tuple(d.ctx) for d in self.dims)

    def snapshot(self) -> Tuple:
        """Full printable value, alternating contexts and IVs."""
        parts: List[object] = []
        for d in self.dims:
            if d.iv is not None:
                parts.append(d.iv)
            parts.append("/".join(d.ctx))
        return tuple(parts)

    def pretty(self) -> str:
        """Render like the paper: ``(M0/L1, 0, A1/L2, 1, B1)``."""
        parts: List[str] = []
        for d in self.dims:
            if d.iv is not None:
                parts.append(str(d.iv))
            parts.append("/".join(d.ctx))
        return "(" + ", ".join(parts) + ")"
