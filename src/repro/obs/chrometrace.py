"""Chrome trace-event export and its schema validator.

Serializes a span forest into the Trace Event Format (the JSON
``chrome://tracing`` / Perfetto load directly): one complete ``"X"``
event per span with microsecond ``ts``/``dur``, plus ``"M"`` metadata
events naming the process and threads.  The exporter emits **only**
``X`` and ``M`` events -- no ``B``/``E`` pairs to mismatch -- and sorts
by ``ts``, which :func:`validate_chrome_trace` (used by the CI trace
job and the tests) enforces along with the rest of the schema.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Union

from .tracer import Span

__all__ = [
    "chrome_trace_document",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: schema of the ``otherData`` envelope this exporter stamps
CHROME_TRACE_FORMAT_VERSION = 1


def _span_forest(spans: Sequence[Union[Span, dict]]) -> List[Span]:
    return [
        s if isinstance(s, Span) else Span.from_dict(s) for s in spans
    ]


def chrome_trace_document(
    spans: Sequence[Union[Span, dict]],
    workload: str = "",
    pid: Optional[int] = None,
) -> Dict[str, Any]:
    """Build the Trace Event Format document for a span forest.

    ``spans`` may be live :class:`Span` roots or their ``to_dict``
    exports (what the suite runner ships).  ``ts`` is microseconds
    relative to the earliest span start, so traces from different
    processes all start near zero.
    """
    roots = _span_forest(spans)
    pid = os.getpid() if pid is None else pid
    origin = min((r.t0 for r in roots), default=0.0)

    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for root in roots:
        for _, span in root.walk():
            tid = tids.setdefault(span.tid or "main", len(tids) + 1)
            args: Dict[str, Any] = dict(span.args)
            if span.counters:
                args.update(span.counters)
            if span.mem_delta is not None:
                args["mem_delta_bytes"] = span.mem_delta
            if span.mem_peak is not None:
                args["mem_peak_bytes"] = span.mem_peak
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "ts": round((span.t0 - origin) * 1e6, 3),
                    "dur": round(max(span.duration, 0.0) * 1e6, 3),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    events.sort(key=lambda e: (e["ts"], -e["dur"]))

    meta: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"repro analyzer ({workload or 'trace'})"},
        }
    ]
    for tname, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": tname},
            }
        )
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format_version": CHROME_TRACE_FORMAT_VERSION,
            "workload": workload,
            "generator": "repro.obs",
        },
    }


def write_chrome_trace(
    path: str,
    spans: Sequence[Union[Span, dict]],
    workload: str = "",
) -> Dict[str, Any]:
    """Validate and write the trace document; returns it."""
    doc = chrome_trace_document(spans, workload=workload)
    validate_chrome_trace(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def validate_chrome_trace(doc: Any) -> int:
    """Schema-check a trace document; returns the number of timed
    events.  Raises :class:`ValueError` with a pointed message on the
    first problem found.

    Enforced (what Perfetto/catapult actually require plus our own
    emission invariants): a ``traceEvents`` list of dicts; every event
    has ``ph``/``pid``/``tid``; a single ``pid`` across the document;
    ``X`` events carry numeric non-negative ``ts``/``dur`` in
    non-decreasing ``ts`` order; any ``B``/``E`` events pair up
    properly nested per thread."""
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    pids = set()
    last_ts: Optional[float] = None
    open_be: Dict[Any, List[str]] = {}
    timed = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event #{i} is not an object")
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError(f"event #{i} has no phase 'ph'")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                raise ValueError(f"event #{i} has no integer {field!r}")
        pids.add(ev["pid"])
        if ph == "M":
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(f"event #{i} has no name")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event #{i} has invalid ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event #{i} ts {ts} goes backwards (prev {last_ts})"
            )
        last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event #{i} has invalid dur {dur!r}")
            timed += 1
        elif ph == "B":
            open_be.setdefault(ev["tid"], []).append(ev["name"])
            timed += 1
        elif ph == "E":
            stack = open_be.get(ev["tid"]) or []
            if not stack:
                raise ValueError(
                    f"event #{i}: 'E' for {ev['name']!r} with no open 'B'"
                )
            stack.pop()
        # other phases (counters, instants, ...) are allowed untimed
    for tid, stack in open_be.items():
        if stack:
            raise ValueError(
                f"thread {tid}: unclosed 'B' event(s) {stack!r}"
            )
    if len(pids) != 1:
        raise ValueError(f"expected one stable pid, saw {sorted(pids)}")
    if timed == 0:
        raise ValueError("trace has no timed events")
    return timed
