"""Chrome trace-event export and its schema validator.

Serializes a span forest into the Trace Event Format (the JSON
``chrome://tracing`` / Perfetto load directly): one complete ``"X"``
event per span with microsecond ``ts``/``dur``, plus ``"M"`` metadata
events naming the process and threads.  The exporter emits **only**
``X`` and ``M`` events -- no ``B``/``E`` pairs to mismatch -- and sorts
by ``ts``, which :func:`validate_chrome_trace` (used by the CI trace
job and the tests) enforces along with the rest of the schema.

Two document shapes share the schema:

* :func:`chrome_trace_document` -- one process's span forest (the
  ``/trace`` job artifact and ``repro trace``'s export): a single pid.
* :func:`merged_trace_document` -- one *request's* forest stitched
  from segments collected across router, replicas, and worker
  processes (``GET /v1/traces/{trace_id}``): one pid lane per
  (source, pid), timelines aligned through per-segment wall-clock
  anchors (:func:`repro.obs.collect.clock_anchor`).  Validate these
  with ``multi_process=True``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .tracer import Span

__all__ = [
    "chrome_trace_document",
    "merged_trace_document",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: schema of the ``otherData`` envelope this exporter stamps
CHROME_TRACE_FORMAT_VERSION = 2


def _span_forest(spans: Sequence[Union[Span, dict]]) -> List[Span]:
    return [
        s if isinstance(s, Span) else Span.from_dict(s) for s in spans
    ]


def _event_args(span: Span) -> Dict[str, Any]:
    args: Dict[str, Any] = dict(span.args)
    if span.counters:
        args.update(span.counters)
    if span.mem_delta is not None:
        args["mem_delta_bytes"] = span.mem_delta
    if span.mem_peak is not None:
        args["mem_peak_bytes"] = span.mem_peak
    return args


def chrome_trace_document(
    spans: Sequence[Union[Span, dict]],
    workload: str = "",
    pid: Optional[int] = None,
) -> Dict[str, Any]:
    """Build the Trace Event Format document for a span forest.

    ``spans`` may be live :class:`Span` roots or their ``to_dict``
    exports (what the suite runner ships).  ``ts`` is microseconds
    relative to the earliest span start, so traces from different
    processes all start near zero.
    """
    roots = _span_forest(spans)
    pid = os.getpid() if pid is None else pid
    origin = min((r.t0 for r in roots), default=0.0)

    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for root in roots:
        for _, span in root.walk():
            tid = tids.setdefault(span.tid or "main", len(tids) + 1)
            args = _event_args(span)
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "ts": round((span.t0 - origin) * 1e6, 3),
                    "dur": round(max(span.duration, 0.0) * 1e6, 3),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    events.sort(key=lambda e: (e["ts"], -e["dur"]))

    meta: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"repro analyzer ({workload or 'trace'})"},
        }
    ]
    for tname, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": tname},
            }
        )
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format_version": CHROME_TRACE_FORMAT_VERSION,
            "workload": workload,
            "generator": "repro.obs",
        },
    }


def merged_trace_document(
    segments: Sequence[Dict[str, Any]],
    trace_id: str = "",
) -> Dict[str, Any]:
    """Stitch span segments from many processes into one trace document.

    ``segments`` are :class:`~repro.obs.collect.TraceCollector` entries:
    ``{"source", "pid", "spans", "clock"?, "job_id"?}``.  Every distinct
    (source, pid) becomes its own Perfetto process lane (a synthetic
    document pid with a ``process_name`` naming the real source and
    pid), and each span's recording thread becomes a named thread lane
    within it.

    Timelines from different processes are aligned when **every**
    segment carries a wall-clock anchor
    (:func:`repro.obs.collect.clock_anchor`): each span time is rebased
    to the epoch via its segment's anchor, then to the earliest span of
    the whole trace, so queue waits and forward hops show up as real
    gaps.  If any segment lacks an anchor, all segments fall back to
    their own local origin (lanes all start at zero -- still valid,
    just not mutually ordered).
    """
    groups: "Dict[Tuple[str, Any], List[dict]]" = {}
    order: List[Tuple[str, Any]] = []
    for seg in segments:
        key = (str(seg.get("source") or "unknown"), seg.get("pid"))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(seg)

    aligned = bool(segments) and all(
        isinstance(seg.get("clock"), dict)
        and "epoch" in seg["clock"]
        and "perf" in seg["clock"]
        for seg in segments
    )
    # per-segment offset turning a perf_counter second into an epoch
    # second (identity-shaped fallback keeps one code path below)
    forests: List[Tuple[int, float, List[Span]]] = []  # (lane, off, roots)
    sources: List[Dict[str, Any]] = []
    for lane, key in enumerate(order, start=1):
        source, pid = key
        sources.append({"lane": lane, "source": source, "pid": pid})
        for seg in groups[key]:
            roots = _span_forest(seg.get("spans") or [])
            if not roots:
                continue
            if aligned:
                clock = seg["clock"]
                offset = float(clock["epoch"]) - float(clock["perf"])
            else:
                offset = -min(r.t0 for r in roots)
            forests.append((lane, offset, roots))

    origin = min(
        (r.t0 + offset for _, offset, roots in forests for r in roots),
        default=0.0,
    )

    events: List[Dict[str, Any]] = []
    meta: List[Dict[str, Any]] = []
    for lane, key in enumerate(order, start=1):
        source, pid = key
        label = source if pid is None else f"{source} (pid {pid})"
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": lane,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for lane, offset, roots in forests:
        tids: Dict[str, int] = {}
        for root in roots:
            for _, span in root.walk():
                tids.setdefault(span.tid or "main", len(tids) + 1)
        for tname, tid in sorted(tids.items(), key=lambda kv: kv[1]):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": lane,
                    "tid": tid,
                    "args": {"name": tname},
                }
            )
        for root in roots:
            for _, span in root.walk():
                args = _event_args(span)
                if span.span_id:
                    args["span_id"] = span.span_id
                if span.parent_id:
                    args["parent_id"] = span.parent_id
                events.append(
                    {
                        "name": span.name,
                        "cat": span.cat,
                        "ph": "X",
                        "ts": round(
                            max(span.t0 + offset - origin, 0.0) * 1e6, 3
                        ),
                        "dur": round(max(span.duration, 0.0) * 1e6, 3),
                        "pid": lane,
                        "tid": tids[span.tid or "main"],
                        "args": args,
                    }
                )
    events.sort(key=lambda e: (e["ts"], -e["dur"]))
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format_version": CHROME_TRACE_FORMAT_VERSION,
            "trace_id": trace_id,
            "generator": "repro.obs",
            "aligned_clocks": aligned,
            "sources": sources,
        },
    }


def write_chrome_trace(
    path: str,
    spans: Sequence[Union[Span, dict]],
    workload: str = "",
) -> Dict[str, Any]:
    """Validate and write the trace document; returns it."""
    doc = chrome_trace_document(spans, workload=workload)
    validate_chrome_trace(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def validate_chrome_trace(doc: Any, multi_process: bool = False) -> int:
    """Schema-check a trace document; returns the number of timed
    events.  Raises :class:`ValueError` with a pointed message on the
    first problem found.

    Enforced (what Perfetto/catapult actually require plus our own
    emission invariants): a ``traceEvents`` list of dicts; every event
    has ``ph``/``pid``/``tid``; a single ``pid`` across the document
    (unless ``multi_process=True`` -- stitched multi-lane documents
    from :func:`merged_trace_document`); ``X`` events carry numeric
    non-negative ``ts``/``dur`` in non-decreasing ``ts`` order; any
    ``B``/``E`` events pair up properly nested per thread; every pid
    with timed events has a ``process_name`` metadata event and every
    (pid, tid) a timed event runs on has a ``thread_name`` -- without
    them Perfetto renders anonymous lanes."""
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    pids = set()
    last_ts: Optional[float] = None
    open_be: Dict[Any, List[str]] = {}
    timed = 0
    named_pids = set()
    named_threads = set()
    timed_pids = set()
    timed_threads = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event #{i} is not an object")
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError(f"event #{i} has no phase 'ph'")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                raise ValueError(f"event #{i} has no integer {field!r}")
        pids.add(ev["pid"])
        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids.add(ev["pid"])
            elif ev.get("name") == "thread_name":
                named_threads.add((ev["pid"], ev["tid"]))
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(f"event #{i} has no name")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event #{i} has invalid ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event #{i} ts {ts} goes backwards (prev {last_ts})"
            )
        last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event #{i} has invalid dur {dur!r}")
            timed += 1
            timed_pids.add(ev["pid"])
            timed_threads.add((ev["pid"], ev["tid"]))
        elif ph == "B":
            open_be.setdefault(ev["tid"], []).append(ev["name"])
            timed += 1
            timed_pids.add(ev["pid"])
            timed_threads.add((ev["pid"], ev["tid"]))
        elif ph == "E":
            stack = open_be.get(ev["tid"]) or []
            if not stack:
                raise ValueError(
                    f"event #{i}: 'E' for {ev['name']!r} with no open 'B'"
                )
            stack.pop()
        # other phases (counters, instants, ...) are allowed untimed
    for tid, stack in open_be.items():
        if stack:
            raise ValueError(
                f"thread {tid}: unclosed 'B' event(s) {stack!r}"
            )
    if not multi_process and len(pids) != 1:
        raise ValueError(f"expected one stable pid, saw {sorted(pids)}")
    if timed == 0:
        raise ValueError("trace has no timed events")
    unnamed_pids = timed_pids - named_pids
    if unnamed_pids:
        raise ValueError(
            "pid(s) without a process_name metadata event: "
            f"{sorted(unnamed_pids)}"
        )
    unnamed_threads = timed_threads - named_threads
    if unnamed_threads:
        raise ValueError(
            "(pid, tid) lane(s) without a thread_name metadata event: "
            f"{sorted(unnamed_threads)}"
        )
    return timed
