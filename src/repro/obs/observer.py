"""Execution-side counters for a traced analysis.

The pipeline's stage spans bound *where* time went; this passive
:class:`~repro.isa.events.Instrumentation` observer adds *how much
work* happened inside the profiled executions: basic-block batches and
call events, tallied locally and flushed onto whichever span is open
on the executing thread (``stage1.execute`` / ``stage2.execute``,
which already carry the exact ``dyn_instrs`` from
:class:`~repro.isa.RunStats`).  Tallies are plain attribute increments -- one
integer add per delivered block on the fast engine -- so attaching it
stays inside the full-tracing overhead budget; it is only attached
when the caller asked for a deep trace (``repro trace``), never by the
default pipeline.
"""

from __future__ import annotations

from ..isa.events import Instrumentation
from .tracer import Tracer

__all__ = ["TraceObserver"]


class TraceObserver(Instrumentation):
    """Counts blocks / instructions / control events into the current
    span of ``tracer``.  Purely additive: it never changes what the
    analysis computes."""

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._blocks = 0
        self._instrs = 0
        self._calls = 0

    def on_block(self, instrs, frame_id, values, addrs) -> None:
        self._blocks += 1
        self._instrs += len(instrs)

    def on_instr(self, instr, frame_id, value, addr) -> None:
        self._instrs += 1

    def on_call(self, event) -> None:
        self._calls += 1

    def on_halt(self) -> None:
        """The run ended while its execute span is still open: flush.

        ``dyn_instrs`` is deliberately not flushed -- the pipeline
        stamps the exact count from :class:`~repro.isa.RunStats` onto
        the execute span already; double-counting it here would skew
        every consumer of the trace."""
        span = self.tracer.current()
        if span is not None:
            if self._blocks:
                span.count("blocks", self._blocks)
            if self._calls:
                span.count("calls", self._calls)
        self._blocks = self._instrs = self._calls = 0
