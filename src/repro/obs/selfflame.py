"""Self-flamegraph: render the analyzer's own span tree with the very
renderer it uses for workloads.

The paper's headline visual is the annotated flame graph of a profiled
*workload* (:mod:`repro.feedback.flamegraph` over the dynamic schedule
tree).  This module closes the loop: the span forest a traced analysis
collects is converted into a :class:`~repro.iiv.schedule_tree.DynamicScheduleTree`
(weights = microseconds instead of dynamic instructions) and handed to
the same SVG renderer -- the tool that draws flame graphs of programs
draws one of itself.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from ..iiv.schedule_tree import DynamicScheduleTree
from .tracer import Span

__all__ = [
    "spans_to_schedule_tree",
    "render_self_flamegraph",
    "render_span_text",
]


def _roots(spans: Sequence[Union[Span, dict]]) -> List[Span]:
    return [
        s if isinstance(s, Span) else Span.from_dict(s) for s in spans
    ]


def spans_to_schedule_tree(
    spans: Sequence[Union[Span, dict]],
) -> DynamicScheduleTree:
    """Fold a span forest into a schedule tree, microseconds as weight.

    Same-named siblings merge (as dynamic instances of one context do
    in the real schedule tree); ``visits`` counts the merged spans; a
    span's self time (duration minus children) lands in
    ``self_weight`` so collapsed-stack output stays additive.
    """
    tree = DynamicScheduleTree()

    def rec(node, span: Span) -> int:
        weight = max(int(span.duration * 1e6), 1)
        child = node.child(span.name, is_loop=(span.cat == "loop"))
        child.weight += weight
        child.visits += 1
        consumed = 0
        for sub in span.children:
            consumed += rec(child, sub)
        child.self_weight += max(weight - consumed, 0)
        return weight

    total = 0
    for root in _roots(spans):
        total += rec(tree.root, root)
    tree.root.weight = total
    return tree


def render_self_flamegraph(
    spans: Sequence[Union[Span, dict]],
    title: str = "poly-prof self-trace",
    width: int = 1200,
) -> str:
    """The analyzer's own flame graph as an SVG string."""
    from ..feedback.flamegraph import render_flamegraph_svg

    tree = spans_to_schedule_tree(spans)

    def annotate(path, node) -> str:
        return f"{node.self_weight} us self, {node.visits} visit(s)"

    return render_flamegraph_svg(
        tree, width=width, title=title, annotate=annotate
    )


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:+.1f}{unit}" if unit == "B" else f"{value:+.2f}{unit}"
        value /= 1024.0
    return f"{value:+.2f}GiB"  # pragma: no cover - fell through


def render_span_text(
    spans: Sequence[Union[Span, dict]],
    min_fraction: float = 0.0,
) -> str:
    """Indented text rendering of a span forest (the ``--flame``-less
    terminal view of ``repro trace``): per-span wall time, share of the
    root, counters, and memory deltas when sampled."""
    roots = _roots(spans)
    total = sum(r.duration for r in roots) or 1e-12
    lines: List[str] = []
    for root in roots:
        for depth, span in root.walk():
            frac = span.duration / total
            if depth and frac < min_fraction:
                continue
            extra = ""
            if span.counters:
                extra += " " + " ".join(
                    f"{k}={v}" for k, v in sorted(span.counters.items())
                )
            if span.mem_delta is not None:
                extra += f" mem={_fmt_bytes(span.mem_delta)}"
            lines.append(
                f"{'  ' * depth}{span.name:<{max(28 - 2 * depth, 8)}s} "
                f"{span.duration * 1e3:9.3f}ms {100 * frac:5.1f}%{extra}"
            )
    return "\n".join(lines)
