"""Hierarchical span tracing: the analyzer's own profiler.

POLY-PROF's pitch is that profiling must explain *where* time and
memory go inside a structured computation -- this module applies the
same standard to the analyzer itself.  A :class:`Tracer` collects a
tree of :class:`Span`\\ s (context-manager and decorator API) with
monotonic clocks, optional attached counters, and optional memory
deltas sampled at span boundaries (a cheap RSS probe by default,
exact ``tracemalloc`` bytes on request).  The span tree is the **single
timing source** for the whole system: :class:`repro.pipeline.StageTimings`
is derived from it, the suite runner ships it across the process pool
inside :class:`~repro.runner.WorkloadResult`, and the service daemon
feeds its Prometheus stage histograms, per-job timings, and progress
heartbeats from it.

Design constraints, in order:

* **Disabled must be free.**  ``Tracer(enabled=False)`` (or the shared
  :data:`NULL_TRACER`) hands out one preallocated no-op context
  manager; entering it does no clock read, no allocation, no lock.
  ``benchmarks/bench_obs.py`` gates the disabled path at <= 5% end-to-end
  overhead.
* **Threads must nest correctly.**  The span stack is thread-local, so
  the parallel suite runner's workers and the service daemon's worker
  threads each build their own subtree; spans started on a thread with
  an empty stack become roots (``tracer.roots``, lock-guarded).
* **Spans must travel.**  :meth:`Span.to_dict` / :meth:`Span.from_dict`
  round-trip through plain JSON-able dicts, which is how spans cross
  the suite runner's process pool and land in artifacts.
* **Spans must stitch.**  Every span carries trace identity
  (``trace_id``/``span_id``/``parent_id``); a tracer built with a
  :class:`~repro.obs.context.TraceContext` roots its spans under the
  remote parent, so forests shipped back from worker processes and
  replica daemons merge into one tree per request
  (:func:`repro.obs.chrometrace.merged_trace_document`).
"""

from __future__ import annotations

import functools
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

__all__ = ["Span", "Tracer", "NULL_TRACER"]

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096


def _rss_bytes() -> Optional[int]:
    """Resident set size in bytes, read without any allocation hook.

    One small ``/proc`` read per span boundary -- nanoseconds against
    the milliseconds a pipeline stage takes, which is what lets the
    default memory mode fit inside the deep-trace overhead budget.
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):  # pragma: no cover
        return None


class Span:
    """One timed region.  ``t0``/``t1`` are ``perf_counter`` seconds
    relative to the process (monotonic); ``counters`` accumulate
    integer event tallies (blocks executed, loop events, ...);
    ``mem_delta``/``mem_peak`` are bytes from the tracer's memory
    probe -- RSS by default, exact tracemalloc bytes in
    ``memory="tracemalloc"`` mode (``None`` when not sampling)."""

    __slots__ = (
        "name", "cat", "t0", "t1", "tid", "args", "counters",
        "mem_delta", "mem_peak", "children", "_mem0",
        "trace_id", "span_id", "parent_id",
    )

    def __init__(
        self,
        name: str,
        cat: str = "phase",
        t0: float = 0.0,
        tid: str = "",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.t0 = t0
        self.t1 = t0
        self.tid = tid
        self.args = args or {}
        self.counters: Dict[str, int] = {}
        self.mem_delta: Optional[int] = None
        self.mem_peak: Optional[int] = None
        self.children: List["Span"] = []
        self._mem0: Optional[int] = None
        #: trace identity ("" = this span never joined a trace): the
        #: request's trace_id, this span's own id, and the id of its
        #: parent (for a tracer root: the *remote* parent from the
        #: adopted TraceContext)
        self.trace_id = ""
        self.span_id = ""
        self.parent_id = ""

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def walk(self, depth: int = 0):
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def child_seconds(self) -> float:
        return sum(c.duration for c in self.children)

    def self_seconds(self) -> float:
        return max(self.duration - self.child_seconds(), 0.0)

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (pre-order) named ``name``."""
        for _, span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "t0": self.t0,
            "t1": self.t1,
            "tid": self.tid,
        }
        if self.args:
            doc["args"] = dict(self.args)
        if self.counters:
            doc["counters"] = dict(self.counters)
        if self.mem_delta is not None:
            doc["mem_delta"] = self.mem_delta
        if self.mem_peak is not None:
            doc["mem_peak"] = self.mem_peak
        if self.trace_id:
            doc["trace_id"] = self.trace_id
        if self.span_id:
            doc["span_id"] = self.span_id
        if self.parent_id:
            doc["parent_id"] = self.parent_id
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Span":
        span = cls(
            doc["name"],
            cat=doc.get("cat", "phase"),
            t0=doc.get("t0", 0.0),
            tid=doc.get("tid", ""),
            args=dict(doc.get("args", {})),
        )
        span.t1 = doc.get("t1", span.t0)
        span.counters = dict(doc.get("counters", {}))
        span.mem_delta = doc.get("mem_delta")
        span.mem_peak = doc.get("mem_peak")
        span.trace_id = doc.get("trace_id", "")
        span.span_id = doc.get("span_id", "")
        span.parent_id = doc.get("parent_id", "")
        span.children = [cls.from_dict(c) for c in doc.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
            f"{len(self.children)} children)"
        )


class _NullSpan:
    """The span a disabled tracer hands out: every operation is a
    no-op, entering returns the singleton itself."""

    __slots__ = ()

    t0 = 0.0
    t1 = 0.0
    duration = 0.0
    name = ""
    cat = ""
    tid = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def count(self, name: str, amount: int = 1) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager creating one :class:`Span` on entry."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "span")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer._enter(self._name, self._cat, self._args)
        return self.span

    def __exit__(self, *exc) -> bool:
        self._tracer._exit(self.span)
        return False


class Tracer:
    """Collects a forest of spans; safe to use from many threads.

    ``memory=True`` additionally samples memory at span boundaries.
    The probe is deliberately cheap: process RSS from ``/proc`` (or
    ``tracemalloc``, iff the caller already pays for it elsewhere),
    so ``benchmarks/bench_obs.py`` can gate full spans+memory at
    <= 25% overhead on complete analyses.  Page-granular RSS deltas
    are honest for the allocations worth profiling (shadow memories,
    folded unions); for exact per-span byte attribution pass
    ``memory="tracemalloc"``, which starts CPython's allocation
    tracer (stopped again on :meth:`close`) and costs several-fold
    wall time -- outside the budget, by explicit request only.

    ``on_phase`` is an optional callback invoked with the span name
    whenever a shallow span (depth <= 1: the pipeline root and its
    stage spans) starts on any thread -- the service daemon uses it for
    job progress heartbeats.  Exceptions from the callback are
    swallowed: observability must never sink an analysis.

    ``context`` is an optional :class:`~repro.obs.context.TraceContext`
    this tracer's roots adopt: every root span carries the context's
    ``trace_id`` and points its ``parent_id`` at the context's
    ``span_id`` (the remote parent), so forests recorded in different
    processes stitch into one tree per request.  Without a context an
    enabled tracer mints a private trace id, so its spans are still
    internally linked.
    """

    def __init__(
        self,
        enabled: bool = True,
        memory: Union[bool, str] = False,
        on_phase: Optional[Callable[[str], None]] = None,
        context=None,
    ) -> None:
        self.enabled = enabled
        self.memory = memory if enabled and memory else False
        self.on_phase = on_phase
        self.context = context
        # lazy: the disabled singleton (NULL_TRACER) must not touch the
        # id generator at import, and most tracers never need it before
        # their first span
        self._trace_id: Optional[str] = (
            context.trace_id if context is not None else None
        )
        self._root_parent = (
            context.span_id if context is not None else ""
        )
        self.roots: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._owns_tracemalloc = False
        self._rss_peak = 0
        self._use_tracemalloc = False
        if self.memory:
            import tracemalloc

            if self.memory == "tracemalloc":
                if not tracemalloc.is_tracing():
                    tracemalloc.start()
                    self._owns_tracemalloc = True
                self._use_tracemalloc = True
            else:
                # piggyback on an allocation tracer someone else pays
                # for; otherwise fall back to the cheap RSS probe
                self._use_tracemalloc = tracemalloc.is_tracing()

    # -- the span API ----------------------------------------------------------

    def span(self, name: str, cat: str = "phase", **args):
        """``with tracer.span("fold.statements"): ...`` -- the returned
        object yields the live :class:`Span` (or a shared no-op when
        the tracer is disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, cat, args)

    def wrap(self, name: Optional[str] = None, cat: str = "func"):
        """Decorator form: ``@tracer.wrap("feedback.plan")``."""

        def deco(fn):
            label = name or fn.__qualname__

            @functools.wraps(fn)
            def inner(*a, **kw):
                with self.span(label, cat=cat):
                    return fn(*a, **kw)

            return inner

        return deco

    def current(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_context(self):
        """The :class:`~repro.obs.context.TraceContext` pointing at the
        innermost open span of this thread -- what fan-out sites hand
        to child work so its spans parent under the span that caused
        them.  Falls back to this tracer's own context; None when the
        tracer is disabled and has no context."""
        span = self.current()
        if span is not None and span.trace_id:
            from .context import TraceContext

            return TraceContext(
                trace_id=span.trace_id, span_id=span.span_id
            )
        return self.context

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a counter on the innermost open span of this thread."""
        if not self.enabled:
            return
        span = self.current()
        if span is not None:
            span.count(name, amount)

    # -- internals -------------------------------------------------------------

    def _mem_sample(self) -> Optional[Tuple[int, int]]:
        """``(current_bytes, peak_bytes)`` from the active probe.

        The RSS peak is a process-wide high-water mark over this
        tracer's boundary samples (racy-but-monotone across threads),
        mirroring ``tracemalloc.get_traced_memory()``'s global-peak
        semantics."""
        if self._use_tracemalloc:
            import tracemalloc

            return tracemalloc.get_traced_memory()
        rss = _rss_bytes()
        if rss is None:  # pragma: no cover - non-/proc platforms
            return None
        if rss > self._rss_peak:
            self._rss_peak = rss
        return rss, self._rss_peak

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self, name: str, cat: str, args: dict) -> Span:
        from .context import new_span_id, new_trace_id

        stack = self._stack()
        span = Span(
            name,
            cat=cat,
            t0=time.perf_counter(),
            tid=threading.current_thread().name,
            args=args,
        )
        span.span_id = new_span_id()
        if self.memory:
            sampled = self._mem_sample()
            if sampled is not None:
                span._mem0 = sampled[0]
        if stack:
            parent = stack[-1]
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
            parent.children.append(span)
        else:
            if self._trace_id is None:
                self._trace_id = new_trace_id()
            span.trace_id = self._trace_id
            span.parent_id = self._root_parent
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        if self.on_phase is not None and len(stack) <= 2:
            try:
                self.on_phase(name)
            except Exception:
                pass
        return span

    def _exit(self, span: Optional[Span]) -> None:
        if span is None:
            return
        span.t1 = time.perf_counter()
        if self.memory and span._mem0 is not None:
            sampled = self._mem_sample()
            if sampled is not None:
                span.mem_delta = sampled[0] - span._mem0
                span.mem_peak = sampled[1]
        stack = self._stack()
        # tolerate exits out of order (an exception unwinding through
        # several spans exits them innermost-first, which is in order;
        # anything else we recover from rather than corrupt the stack)
        while stack:
            top = stack.pop()
            if top is span:
                break

    # -- lifecycle / export ----------------------------------------------------

    def close(self) -> None:
        """Release resources (stops tracemalloc iff this tracer
        started it).  Idempotent."""
        if self._owns_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._owns_tracemalloc = False

    def to_dicts(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [r.to_dict() for r in self.roots]

    def total_seconds(self) -> float:
        with self._lock:
            return sum(r.duration for r in self.roots)


#: the shared disabled tracer: every ``span()`` is the same no-op
NULL_TRACER = Tracer(enabled=False)
