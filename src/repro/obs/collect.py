"""Per-daemon trace retention: span segments keyed by trace id.

Every daemon (and the router) keeps a :class:`TraceCollector`: after a
job finishes, its exported span forest lands here as one **segment**
-- the spans plus where they ran (``source`` label, ``pid``) and a
wall-clock anchor (:func:`clock_anchor`) that lets
:func:`repro.obs.chrometrace.merged_trace_document` align
``perf_counter`` timelines from different processes onto one axis.

Retention is LRU and byte-bounded, like the artifact store but in
memory: traces are served for post-hoc debugging
(``GET /v1/traces/{trace_id}``), not archived.  Adding a segment to a
trace refreshes the whole trace; eviction drops whole traces, oldest
first, until both the byte and the count budget hold.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional

__all__ = ["TraceCollector", "clock_anchor"]


def clock_anchor() -> Dict[str, float]:
    """Pair this process's ``perf_counter`` with the wall clock.

    Spans carry ``perf_counter`` seconds, which are meaningless across
    processes; an anchor captured in the *same* process lets a merger
    rebase any span time to the epoch:
    ``epoch_of(t) = t + (anchor.epoch - anchor.perf)``.
    """
    return {"epoch": time.time(), "perf": time.perf_counter()}


class TraceCollector:
    """Thread-safe LRU of span segments, keyed by trace id."""

    def __init__(
        self,
        max_bytes: int = 16 * 1024 * 1024,
        max_traces: int = 256,
    ) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.max_bytes = max_bytes
        self.max_traces = max_traces
        self._lock = threading.Lock()
        #: trace_id -> list of segment dicts (insertion = arrival order)
        self._traces: "OrderedDict[str, List[dict]]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self._total_bytes = 0
        self.evictions = 0

    def add(
        self,
        trace_id: str,
        source: str,
        spans: List[Dict[str, Any]],
        pid: Optional[int] = None,
        clock: Optional[Dict[str, float]] = None,
        job_id: Optional[str] = None,
    ) -> None:
        """Retain one segment: ``spans`` (Span.to_dict forest) that ran
        in process ``pid`` of ``source`` (a replica id, ``"router"``,
        or ``host:port``)."""
        if not trace_id or not spans:
            return
        segment: Dict[str, Any] = {
            "source": source,
            "pid": pid,
            "spans": list(spans),
        }
        if clock is not None:
            segment["clock"] = dict(clock)
        if job_id is not None:
            segment["job_id"] = job_id
        try:
            size = len(json.dumps(segment, default=str))
        except Exception:  # pragma: no cover - unserializable span args
            return
        with self._lock:
            if trace_id in self._traces:
                self._traces[trace_id].append(segment)
                self._sizes[trace_id] += size
                self._traces.move_to_end(trace_id)
            else:
                self._traces[trace_id] = [segment]
                self._sizes[trace_id] = size
            self._total_bytes += size
            self._evict_locked(keep=trace_id)

    def get(self, trace_id: str) -> Optional[List[dict]]:
        """All retained segments of a trace (refreshes recency)."""
        with self._lock:
            segments = self._traces.get(trace_id)
            if segments is None:
                return None
            self._traces.move_to_end(trace_id)
            return [dict(s) for s in segments]

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._total_bytes

    def _evict_locked(self, keep: str) -> None:
        """Drop whole traces, oldest first, until budgets hold.  The
        just-touched trace is spared even when it alone exceeds the
        byte budget -- a trace we cannot retain at all would make the
        endpoint uselessly flaky."""
        while self._traces and (
            len(self._traces) > self.max_traces
            or self._total_bytes > self.max_bytes
        ):
            oldest = next(iter(self._traces))
            if oldest == keep and len(self._traces) == 1:
                break
            if oldest == keep:
                # keep must survive this round: evict the next-oldest
                ids = iter(self._traces)
                next(ids)
                oldest = next(ids)
            self._traces.pop(oldest)
            self._total_bytes -= self._sizes.pop(oldest)
            self.evictions += 1
