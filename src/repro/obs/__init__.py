"""``repro.obs`` -- unified tracing and self-profiling.

One span tree per analysis is the single timing source for the whole
system:

* :class:`Tracer` / :class:`Span` -- hierarchical spans (context
  manager + decorator), thread-local nesting, counters, optional
  tracemalloc memory sampling; a disabled tracer is a preallocated
  no-op (:data:`NULL_TRACER`).
* :mod:`~repro.obs.chrometrace` -- Chrome trace-event JSON export
  (loads in Perfetto) plus the schema validator CI runs.
* :mod:`~repro.obs.selfflame` -- the analyzer's own span tree rendered
  through :mod:`repro.feedback.flamegraph`: the profiler's profiler.
* :class:`TraceObserver` -- execution counters (blocks, dynamic
  instructions, calls) attached to the execute spans of a deep trace.
* :mod:`~repro.obs.context` / :mod:`~repro.obs.collect` -- distributed
  correlation: :class:`TraceContext` is the request identity minted at
  every front door and propagated across HTTP hops, worker-process
  pipes, and fork pools; :class:`TraceCollector` retains the shipped
  span segments per trace so ``GET /v1/traces/{trace_id}`` can serve
  one stitched timeline (:func:`merged_trace_document`).

See ``docs/INTERNALS.md`` section 9 for the span model and the
overhead budget (``benchmarks/bench_obs.py`` gates it).
"""

from .chrometrace import (
    chrome_trace_document,
    merged_trace_document,
    validate_chrome_trace,
    write_chrome_trace,
)
from .collect import TraceCollector, clock_anchor
from .context import TraceContext, new_span_id, new_trace_context
from .observer import TraceObserver
from .selfflame import (
    render_self_flamegraph,
    render_span_text,
    spans_to_schedule_tree,
)
from .tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "TraceObserver",
    "TraceContext",
    "TraceCollector",
    "new_trace_context",
    "new_span_id",
    "clock_anchor",
    "chrome_trace_document",
    "merged_trace_document",
    "write_chrome_trace",
    "validate_chrome_trace",
    "spans_to_schedule_tree",
    "render_self_flamegraph",
    "render_span_text",
]
