"""``repro.obs`` -- unified tracing and self-profiling.

One span tree per analysis is the single timing source for the whole
system:

* :class:`Tracer` / :class:`Span` -- hierarchical spans (context
  manager + decorator), thread-local nesting, counters, optional
  tracemalloc memory sampling; a disabled tracer is a preallocated
  no-op (:data:`NULL_TRACER`).
* :mod:`~repro.obs.chrometrace` -- Chrome trace-event JSON export
  (loads in Perfetto) plus the schema validator CI runs.
* :mod:`~repro.obs.selfflame` -- the analyzer's own span tree rendered
  through :mod:`repro.feedback.flamegraph`: the profiler's profiler.
* :class:`TraceObserver` -- execution counters (blocks, dynamic
  instructions, calls) attached to the execute spans of a deep trace.

See ``docs/INTERNALS.md`` section 9 for the span model and the
overhead budget (``benchmarks/bench_obs.py`` gates it).
"""

from .chrometrace import (
    chrome_trace_document,
    validate_chrome_trace,
    write_chrome_trace,
)
from .observer import TraceObserver
from .selfflame import (
    render_self_flamegraph,
    render_span_text,
    spans_to_schedule_tree,
)
from .tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "TraceObserver",
    "chrome_trace_document",
    "write_chrome_trace",
    "validate_chrome_trace",
    "spans_to_schedule_tree",
    "render_self_flamegraph",
    "render_span_text",
]
