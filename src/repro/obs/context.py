"""Trace context: the identity a request carries across processes.

Distributed tracing needs exactly one piece of shared state: *which
request is this work for, and which span caused it*.  A
:class:`TraceContext` is that state -- a 128-bit ``trace_id`` naming
the request end-to-end, the 64-bit ``span_id`` of the causing span (the
remote parent), and a sampled flag -- minted at every front door (the
``repro`` CLI, ``POST /v1/analyze`` on a daemon, ``repro route``) and
propagated everywhere work fans out:

* as a W3C ``traceparent`` HTTP header through router and replicas
  (:meth:`TraceContext.to_traceparent` / :meth:`from_traceparent`);
* as a plain dict over the procpool control pipe and the suite
  runner's process pool (:meth:`as_dict` / :meth:`from_dict`);
* as the ``context`` of every :class:`~repro.obs.tracer.Tracer`, whose
  root spans adopt the remote parent so span forests shipped back from
  workers and replicas stitch into one tree per request
  (:func:`repro.obs.chrometrace.merged_trace_document`).

Ids are generated from a per-process CSPRNG-seeded generator that
re-seeds after ``fork()``, so pool workers never mint colliding ids.
"""

from __future__ import annotations

import os
import random
import re
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = [
    "TraceContext",
    "new_trace_context",
    "new_trace_id",
    "new_span_id",
]

#: W3C trace-context version this module emits and accepts
TRACEPARENT_VERSION = "00"

_TRACEPARENT = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})"
    r"-(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)

# One Random per process: ~5x cheaper than os.urandom per id, but it
# must never survive a fork unsampled -- two pool workers inheriting
# the same generator state would mint identical span ids.
_rng = random.Random()
_rng_pid: Optional[int] = None


def _generator() -> random.Random:
    global _rng_pid
    pid = os.getpid()
    if pid != _rng_pid:
        _rng.seed(os.urandom(16))
        _rng_pid = pid
    return _rng


def new_trace_id() -> str:
    """A fresh 32-hex (128-bit) trace id; never all zeros."""
    value = _generator().getrandbits(128) or 1
    return f"{value:032x}"


def new_span_id() -> str:
    """A fresh 16-hex (64-bit) span id; never all zeros."""
    value = _generator().getrandbits(64) or 1
    return f"{value:016x}"


@dataclass(frozen=True)
class TraceContext:
    """One request's identity: which trace, which causing span."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value."""
        flags = "01" if self.sampled else "00"
        return (
            f"{TRACEPARENT_VERSION}-{self.trace_id}"
            f"-{self.span_id}-{flags}"
        )

    @classmethod
    def from_traceparent(cls, header: Any) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header; None on anything malformed
        (a bad header must never fail a request -- the daemon simply
        mints a fresh context instead)."""
        if not isinstance(header, str):
            return None
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            return None
        # future versions parse leniently, but 0xff is forbidden by
        # the W3C spec (it would collide with the field terminator)
        if match.group("version") == "ff":
            return None
        trace_id = match.group("trace_id")
        span_id = match.group("span_id")
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            sampled=bool(int(match.group("flags"), 16) & 1),
        )

    def as_dict(self) -> Dict[str, Any]:
        """Pipe/pool transport form (plain JSON-able dict)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TraceContext":
        return cls(
            trace_id=doc["trace_id"],
            span_id=doc["span_id"],
            sampled=bool(doc.get("sampled", True)),
        )

    def child(self, span_id: Optional[str] = None) -> "TraceContext":
        """Same trace, a different causing span."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=span_id if span_id is not None else new_span_id(),
            sampled=self.sampled,
        )


def new_trace_context(sampled: bool = True) -> TraceContext:
    """Mint a root context -- what every front door does when the
    request arrived without a ``traceparent``."""
    return TraceContext(
        trace_id=new_trace_id(), span_id=new_span_id(), sampled=sampled
    )
