"""Versioned JSON feedback documents -- the machine-readable twin of
the textual CLI output.

Both the CLI (``repro report/metrics --format json``) and the analysis
service (``GET /v1/jobs/{id}/report|metrics``) emit the documents built
here, through the same renderer, so the two surfaces are byte-identical
for the same workload and options: an API client can switch between
them freely, and the service's end-to-end tests can diff its responses
against CLI stdout.

Every document carries a top-level ``"version"`` field
(:data:`FEEDBACK_SCHEMA_VERSION`) so clients can negotiate schemas;
bump it on any change to the document layout.
"""

from __future__ import annotations

import json
from typing import Optional

#: top-level schema version of every JSON feedback document; bump on
#: ANY layout change so API clients can detect skew
FEEDBACK_SCHEMA_VERSION = 1


def _crosscheck_field(result) -> Optional[dict]:
    cc = result.crosscheck
    if cc is None:
        return None
    return {
        "violations": len(cc.violations),
        "report": cc.render() if cc.violations else None,
    }


def report_document(result, title: Optional[str] = None) -> dict:
    """The ``report`` document for one finished analysis."""
    from .report import render_report

    spec = result.spec
    return {
        "version": FEEDBACK_SCHEMA_VERSION,
        "kind": "report",
        "workload": spec.name,
        "engine": result.engine,
        "summary": {
            "dyn_instrs": result.ddg_profile.builder.instr_count,
            "statements": result.folded.stmt_count(),
            "deps": len(result.folded.deps),
            "plans": len(result.plans),
        },
        "report": render_report(
            result.forest,
            result.plans,
            title=title or f"poly-prof feedback: {spec.name}",
        ),
        "crosscheck": _crosscheck_field(result),
    }


def metrics_document(result) -> dict:
    """The ``metrics`` (Table 5 row) document for one analysis."""
    from .metrics import compute_region_metrics

    spec = result.spec
    m = compute_region_metrics(
        result.folded,
        result.forest,
        result.control.callgraph,
        region_funcs=spec.region_funcs,
        label=spec.region_label or spec.name,
        ld_src=spec.ld_src,
        fusion_heuristic=spec.fusion_heuristic,
    )
    return {
        "version": FEEDBACK_SCHEMA_VERSION,
        "kind": "metrics",
        "workload": spec.name,
        "engine": result.engine,
        "row": m.row(),
        "crosscheck": _crosscheck_field(result),
    }


def trace_document(result, spans=None) -> dict:
    """The ``trace`` document: the analysis's own span tree.

    ``spans`` overrides the span roots (a list of :class:`~repro.obs.Span`
    or exported dicts); by default the document carries
    ``result.trace`` -- the root span :func:`repro.pipeline.analyze`
    recorded.  Stage timings ride along so consumers need not re-derive
    them from span boundaries.
    """
    roots = spans if spans is not None else (
        [result.trace] if result.trace is not None else []
    )
    return {
        "version": FEEDBACK_SCHEMA_VERSION,
        "kind": "trace",
        "workload": result.spec.name,
        "engine": result.engine,
        "timings": result.timings.as_dict(),
        "spans": [
            r.to_dict() if hasattr(r, "to_dict") else r for r in roots
        ],
    }


def render_json(doc: dict) -> str:
    """Canonical serialization: 2-space indent, insertion order, one
    trailing newline.  Deterministic, so equal documents are equal
    bytes everywhere they are emitted."""
    return json.dumps(doc, indent=2) + "\n"
