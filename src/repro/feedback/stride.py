"""Stride / spatial-reuse analysis (paper %reuse and %Preuse).

Memory statements carry folded *access functions* (address as an
affine function of the canonical iterators).  An access has stride
``s`` along dimension ``d`` when its address coefficient on ``d`` is
``s``; stride-0 (invariant) and stride-|1| (unit) accesses along the
*innermost* dimension are the spatially-friendly ones.

* ``%reuse``  -- fraction of dynamic loads/stores that are stride-0/1
  along the innermost dimension of the *existing* loop order;
* ``%Preuse`` -- the maximum of that fraction over all legal loop
  permutations (what interchange could achieve), reported per region.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..folding.folder import FoldedStatement
from ..schedule.nest import NestForest, NestNode

#: strides counted as spatial reuse (stride-0 and unit stride)
GOOD_STRIDES = (0, 1, -1)


def access_stride(fs: FoldedStatement, dim: int) -> Optional[int]:
    """Address stride of a memory statement along one dimension, or
    None when the access did not fold to an affine function."""
    if fs.label_fn is None:
        return None
    addr = fs.label_fn.exprs[0]
    if not addr.is_integral():
        return None
    if dim >= len(addr.coeffs):
        return None
    return addr.coeffs[dim]


def _mem_stmts(node: NestNode, recursive: bool = True) -> List[FoldedStatement]:
    out = [s for s in node.stmts if s.stmt.instr.is_mem]
    if recursive:
        for c in node.children.values():
            out.extend(_mem_stmts(c))
    return out


def good_stride_fraction(stmts: Iterable[FoldedStatement], dim: int) -> float:
    """Dynamic-count-weighted fraction of accesses stride-0/1 on dim."""
    total = 0
    good = 0
    for fs in stmts:
        total += fs.count
        s = access_stride(fs, dim)
        if s is not None and s in GOOD_STRIDES:
            good += fs.count
    return good / total if total else 0.0


def stride_scores(leaf: NestNode) -> List[float]:
    """Per-dimension stride score of an innermost nest: score[d] is the
    good-stride fraction if dimension ``d`` were made innermost."""
    stmts = [s for s in leaf.stmts if s.stmt.instr.is_mem]
    return [good_stride_fraction(stmts, d) for d in range(leaf.depth)]


def reuse_percent(forest: NestForest) -> float:
    """%reuse: good strides along the existing innermost dimensions."""
    total = 0
    good = 0
    for node in forest.walk():
        stmts = [s for s in node.stmts if s.stmt.instr.is_mem]
        if not stmts:
            continue
        dim = node.depth - 1
        for fs in stmts:
            total += fs.count
            s = access_stride(fs, dim)
            if s is not None and s in GOOD_STRIDES:
                good += fs.count
    return 100.0 * good / total if total else 0.0


def potential_reuse_percent(forest: NestForest) -> float:
    """%Preuse: best achievable via legal loop permutations.

    For every statement-carrying node we take the best stride score
    over the dimensions reachable innermost by a legal permutation of
    its band (conservatively: any dimension of the node's permutable
    band, since a fully permutable band allows any rotation; outside
    the band, only the existing innermost)."""
    from ..schedule.analysis import permutation_legal

    total = 0
    good = 0.0
    for node in forest.walk():
        stmts = [s for s in node.stmts if s.stmt.instr.is_mem]
        if not stmts:
            continue
        d = node.depth
        candidates = [d - 1]
        for inner in range(d - 1):
            perm = tuple([j for j in range(d) if j != inner] + [inner])
            # legality is evaluated on the innermost nest containing
            # this node; for non-leaf stmt carriers use the node itself
            if permutation_legal(forest, node, perm):
                candidates.append(inner)
        best = max(good_stride_fraction(stmts, dim) for dim in candidates)
        cnt = sum(fs.count for fs in stmts)
        total += cnt
        good += best * cnt
    return 100.0 * good / total if total else 0.0

