"""Feedback reporting (paper sections 6-8): strides, region metrics,
textual reports, and annotated flame graphs.
"""

from .flamegraph import render_flamegraph_svg
from .metrics import RegionMetrics, compute_region_metrics, region_closure
from .regions import RegionCandidate, suggest_region, suggest_regions
from .report import LoopDimReport, NestReport, nest_report, render_report
from .stride import (
    GOOD_STRIDES,
    access_stride,
    good_stride_fraction,
    potential_reuse_percent,
    reuse_percent,
    stride_scores,
)

__all__ = [
    "GOOD_STRIDES",
    "LoopDimReport",
    "NestReport",
    "RegionCandidate",
    "RegionMetrics",
    "access_stride",
    "compute_region_metrics",
    "good_stride_fraction",
    "nest_report",
    "potential_reuse_percent",
    "region_closure",
    "render_flamegraph_svg",
    "render_report",
    "reuse_percent",
    "stride_scores",
    "suggest_region",
    "suggest_regions",
]
