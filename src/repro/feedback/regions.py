"""Automatic region-of-interest selection.

The paper selects, per benchmark, "the biggest region for which the
optimizer suggests a transformation ... by hand".  This module
automates the choice: rank candidate regions (function subtrees of the
dynamic call graph) by the dynamic operations they cover *and* the
fraction of those operations the suggested transformations can improve
(parallelize, SIMDize, or tile), then pick the best.

The result is advisory -- exactly like the paper's flame-graph-guided
workflow -- and ties into :func:`repro.feedback.compute_region_metrics`
via the returned function set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..pipeline import AnalysisResult
from ..schedule.deps import loop_path
from .metrics import region_closure


@dataclass
class RegionCandidate:
    """One candidate region with its ranking ingredients."""

    root_func: str
    funcs: Tuple[str, ...]
    ops: int
    transformable_ops: int
    score: float

    @property
    def label(self) -> str:
        return self.root_func


def _transformable_ops(result: AnalysisResult, funcs: Set[str]) -> int:
    """Dynamic ops in statements whose nest has a suggested plan with
    at least one transformation step."""
    planned_paths = {
        p.leaf.path for p in result.plans if p.steps
    }
    total = 0
    for fs in result.folded.statements.values():
        if fs.stmt.func not in funcs:
            continue
        path = loop_path(fs.stmt)
        if not path:
            continue
        if any(path[: len(pp)] == pp or pp[: len(path)] == path
               for pp in planned_paths):
            total += fs.count
    return total


def suggest_regions(
    result: AnalysisResult, top: int = 5
) -> List[RegionCandidate]:
    """Ranked region candidates (largest transformable first)."""
    cg = result.control.callgraph
    candidates: List[RegionCandidate] = []
    ops_by_func: Dict[str, int] = {}
    for fs in result.folded.statements.values():
        ops_by_func[fs.stmt.func] = ops_by_func.get(fs.stmt.func, 0) + fs.count
    total_ops = sum(ops_by_func.values()) or 1

    for root in sorted(cg.nodes):
        closure = region_closure(cg, [root])
        ops = sum(ops_by_func.get(f, 0) for f in closure)
        if ops == 0:
            continue
        t_ops = _transformable_ops(result, closure)
        # score: transformable coverage, breaking ties toward smaller
        # regions (prefer the kernel over main when equal)
        score = t_ops / total_ops - 0.001 * len(closure)
        candidates.append(
            RegionCandidate(
                root_func=root,
                funcs=tuple(sorted(closure)),
                ops=ops,
                transformable_ops=t_ops,
                score=score,
            )
        )
    candidates.sort(key=lambda c: (-c.score, len(c.funcs), c.root_func))
    return candidates[:top]


def suggest_region(result: AnalysisResult) -> Optional[RegionCandidate]:
    """The single best candidate (None for an empty profile)."""
    cands = suggest_regions(result, top=1)
    return cands[0] if cands else None
