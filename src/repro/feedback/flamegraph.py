"""Annotated flame-graph rendering (paper Fig. 7).

POLY-PROF's main visual feedback: the dynamic schedule tree rendered
as an SVG flame graph, root at the bottom.  Box *width* is the
region's dynamic-instruction weight (hotness); loop and call nodes are
tinted differently; regions can be grayed out (non-affine or
blacklisted) and annotated with suggested transformations.
"""

from __future__ import annotations

import html
from typing import Callable, Dict, Optional, Tuple

from ..iiv.schedule_tree import DynamicScheduleTree, DynNode

Palette = Dict[str, str]

DEFAULT_PALETTE: Palette = {
    "loop": "#e4572e",    # loops: warm orange
    "call": "#f3a712",    # call contexts: amber
    "block": "#a8c686",   # plain blocks: green
    "gray": "#bbbbbb",    # non-affine / blacklisted
}


def render_flamegraph_svg(
    tree: DynamicScheduleTree,
    width: int = 1200,
    row_height: int = 18,
    min_px: float = 0.5,
    annotate: Optional[Callable[[Tuple[str, ...], DynNode], str]] = None,
    grayed: Optional[Callable[[Tuple[str, ...], DynNode], bool]] = None,
    palette: Palette = DEFAULT_PALETTE,
    title: str = "poly-prof annotated flame graph",
) -> str:
    """Render the dynamic schedule tree as an SVG string.

    ``annotate(path, node)`` may return extra text shown in the box
    tooltip (e.g. "interchange + simd, 46%"); ``grayed(path, node)``
    grays out non-interesting regions.
    """
    total = max(tree.root.weight, 1)
    depth = tree.depth()
    height = (depth + 2) * row_height

    boxes = []

    def rec(node: DynNode, path: Tuple[str, ...], x0: float, level: int) -> None:
        x = x0
        for key in sorted(node.children):
            child = node.children[key]
            w = width * child.weight / total
            if w >= min_px:
                cpath = path + (key,)
                is_gray = grayed(cpath, child) if grayed else False
                if is_gray:
                    color = palette["gray"]
                elif child.is_loop or ":" in key:
                    color = palette["loop"]
                elif "." not in key:
                    color = palette["call"]
                else:
                    color = palette["block"]
                y = height - (level + 2) * row_height
                note = annotate(cpath, child) if annotate else ""
                tooltip = f"{key} — {child.weight} ops ({100.0 * child.weight / total:.1f}%)"
                if note:
                    tooltip += f" — {note}"
                label = key if w > 7 * len(key) else (key[: max(int(w // 7), 0)])
                boxes.append(
                    f'<g class="frame">'
                    f'<title>{html.escape(tooltip)}</title>'
                    f'<rect x="{x:.2f}" y="{y}" width="{max(w, min_px):.2f}" '
                    f'height="{row_height - 1}" fill="{color}" rx="1"/>'
                    + (
                        f'<text x="{x + 2:.2f}" y="{y + row_height - 5}" '
                        f'font-size="11" font-family="monospace">'
                        f"{html.escape(label)}</text>"
                        if label
                        else ""
                    )
                    + "</g>"
                )
                rec(child, cpath, x, level + 1)
            x += w

    rec(tree.root, (), 0.0, 0)
    root_y = height - row_height
    svg = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace">',
        f'<text x="4" y="12" font-size="12">{html.escape(title)}</text>',
        f'<rect x="0" y="{root_y}" width="{width}" height="{row_height - 1}" '
        f'fill="#dddddd" rx="1"/>',
        f'<text x="4" y="{root_y + row_height - 5}" font-size="11">all '
        f"({total} ops)</text>",
    ]
    svg.extend(boxes)
    svg.append("</svg>")
    return "\n".join(svg)
