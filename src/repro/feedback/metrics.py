"""Region metrics: the columns of the paper's Table 5.

The paper computes, per benchmark, summary statistics over a hand
selected *region* (the biggest region for which the optimizer suggests
a transformation).  We model a region as a set of functions (the
workload names its kernel functions, standing in for the user's hand
selection); the region closure adds every function transitively called
from them, so interprocedural nests stay whole.

Columns produced (see :class:`RegionMetrics`): #ops(prog), %Aff,
region label, %ops, %Mops, %FPops, interprocedural?, skew?, %||ops,
%simdops, %reuse, %Preuse, ld-src, ld-bin, TileD, %Tilops, C, Comp.,
fusion heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..cfg.builder import DynCallGraph
from ..folding.folder import FoldedDDG, FoldedStatement
from ..schedule.fusion import fuse_components
from ..schedule.nest import NestForest, NestNode
from .stride import access_stride, good_stride_fraction, GOOD_STRIDES


@dataclass
class RegionMetrics:
    """One row of Table 5 (plus bookkeeping)."""

    label: str
    prog_ops: int
    pct_aff: float
    pct_ops: float
    pct_mops: float
    pct_fpops: float
    interprocedural: bool
    skew: bool
    pct_parallel_ops: float
    pct_simd_ops: float
    pct_reuse: float
    pct_potential_reuse: float
    ld_src: int
    ld_bin: int
    tile_depth: int
    pct_tile_ops: float
    components_before: int
    components_after: int
    fusion: str

    def row(self) -> Dict[str, object]:
        return {
            "Region": self.label,
            "#ops": self.prog_ops,
            "%Aff": round(self.pct_aff),
            "%ops": round(self.pct_ops),
            "%Mops": round(self.pct_mops),
            "%FPops": round(self.pct_fpops),
            "interproc.": "Y" if self.interprocedural else "N",
            "skew": "Y" if self.skew else "N",
            "%||ops": round(self.pct_parallel_ops),
            "%simdops": round(self.pct_simd_ops),
            "%reuse": round(self.pct_reuse),
            "%Preuse": round(self.pct_potential_reuse),
            "ld-src": f"{self.ld_src}D",
            "ld-bin": f"{self.ld_bin}D",
            "TileD": f"{self.tile_depth}D",
            "%Tilops": round(self.pct_tile_ops),
            "C": self.components_before,
            "Comp.": self.components_after,
            "fusion": self.fusion,
        }


def region_closure(callgraph: DynCallGraph, funcs: Iterable[str]) -> Set[str]:
    """The functions plus everything they transitively call."""
    out: Set[str] = set()
    work = list(funcs)
    while work:
        f = work.pop()
        if f in out:
            continue
        out.add(f)
        work.extend(callgraph.callees(f))
    return out


def _enclosing_chain(
    forest: NestForest, path: Tuple[str, ...]
) -> List[NestNode]:
    chain = []
    for k in range(1, len(path) + 1):
        node = forest.node_at(path[:k])
        if node is not None:
            chain.append(node)
    return chain


def compute_region_metrics(
    folded: FoldedDDG,
    forest: NestForest,
    callgraph: DynCallGraph,
    region_funcs: Optional[Iterable[str]] = None,
    label: str = "",
    ld_src: Optional[int] = None,
    fusion_heuristic: str = "S",
    src_loop_depths: Optional[Dict[str, int]] = None,
) -> RegionMetrics:
    """Aggregate the Table 5 row for one region."""
    from ..schedule.deps import loop_path

    prog_ops = folded.dyn_ops()
    pct_aff = 100.0 * folded.affine_ops() / prog_ops if prog_ops else 0.0

    closure: Optional[Set[str]] = None
    if region_funcs is not None:
        closure = region_closure(callgraph, region_funcs)

    def in_region(fs: FoldedStatement) -> bool:
        return closure is None or fs.stmt.func in closure

    region_stmts = [fs for fs in folded.statements.values() if in_region(fs)]
    region_ops = sum(fs.count for fs in region_stmts) or 1
    mem_ops = sum(fs.count for fs in region_stmts if fs.stmt.instr.is_mem)
    fp_ops = sum(fs.count for fs in region_stmts if fs.stmt.instr.is_float)

    interproc = len({fs.stmt.func for fs in region_stmts if fs.depth > 0}) > 1

    parallel_ops = 0
    simd_ops = 0
    tile_ops = 0
    ld_bin = 0
    tile_depth = 0
    skew = False
    reuse_good = 0.0
    reuse_total = 0
    preuse_good = 0.0

    from ..schedule.analysis import permutation_legal

    stmt_band: Dict[int, int] = {}
    region_stmt_list = []

    for fs in region_stmts:
        path = loop_path(fs.stmt)
        if not path:
            continue
        ld_bin = max(ld_bin, len(path))
        chain = _enclosing_chain(forest, path)
        if not chain:
            continue
        leaf = chain[-1]
        band = (
            leaf.depth - leaf.band_start
            if leaf.band_start is not None
            else 1
        )
        region_stmt_list.append((fs, path, chain, leaf, band))
        any_par = any(n.parallel or n.parallel_reduction for n in chain)
        wavefront = band >= 2 and not any_par
        # post-transformation parallelism (the paper's %||ops counts
        # what OpenMP pragmas can exploit *after* the suggested
        # transformation): direct parallel loops, reduction-clause
        # parallel loops, or wavefront parallelism over a tilable band
        # (GemsFDTD, nw, pathfinder)
        if any_par or wavefront:
            parallel_ops += fs.count
        # SIMD needs a parallelizable innermost dimension *and*
        # spatially friendly accesses there (pathfinder's wavefront is
        # parallel but stride-hostile: %simdops 0 in Table 5); a fully
        # permutable band lets a parallel outer dimension rotate in
        innermost = forest.node_at(path)
        inner_ok = (
            innermost is not None
            and innermost.is_innermost()
            and (
                innermost.parallel
                or wavefront
                or (band >= 2 and any(n.parallel for n in chain))
            )
        )
        if inner_ok:
            leaf_mem = [s for s in leaf.stmts if s.stmt.instr.is_mem]
            frac = good_stride_fraction(leaf_mem, leaf.depth - 1) if leaf_mem else 1.0
            if frac >= 0.5:
                simd_ops += fs.count
        if any(n.skew_factor for n in chain) or wavefront:
            skew = True
        tile_depth = max(tile_depth, band)
        if fs.stmt.instr.is_mem:
            reuse_total += fs.count
            s = access_stride(fs, len(path) - 1)
            if s is not None and s in GOOD_STRIDES:
                reuse_good += fs.count
            # best legal innermost dimension for this access
            d = len(path)
            best = 1.0 if (s is not None and s in GOOD_STRIDES) else 0.0
            for inner in range(d - 1):
                if best >= 1.0:
                    break
                perm = tuple([j for j in range(d) if j != inner] + [inner])
                node = forest.node_at(path)
                if node is None or not permutation_legal(forest, node, perm):
                    continue
                s2 = access_stride(fs, inner)
                if s2 is not None and s2 in GOOD_STRIDES:
                    best = 1.0
            preuse_good += best * fs.count

    # %Tilops: operations inside the band the TileD column reports --
    # when a >= 2-D band exists, ops in statements whose leaf band
    # reaches 2-D; otherwise any loop counts (1-D strip-mining)
    for fs, path, chain, leaf, band in region_stmt_list:
        if tile_depth >= 2:
            if band >= 2:
                tile_ops += fs.count
        else:
            tile_ops += fs.count

    # components: the region's *own* top-level loops -- for every
    # region statement, cut its path at the first loop belonging to a
    # region function (so a surrounding time/driver loop in main does
    # not collapse the region to one component)
    region_root_paths = []
    seen_paths = set()
    for fs, path, chain, leaf, band in region_stmt_list:
        cut = None
        for k, elem in enumerate(path):
            loop_func = elem[-1].rsplit(":", 1)[0]
            if closure is None or loop_func in closure:
                cut = path[: k + 1]
                break
        if cut is None:
            cut = path[:1]
        if cut not in seen_paths:
            seen_paths.add(cut)
            region_root_paths.append(cut)
    region_roots = [
        forest.node_at(p) for p in region_root_paths if forest.node_at(p)
    ]
    if not region_roots:
        region_roots = [forest.roots[k] for k in sorted(forest.roots)]
    fusion = fuse_components(forest, region_roots, heuristic=fusion_heuristic)

    if ld_src is None:
        if src_loop_depths and closure:
            depths = [src_loop_depths.get(f, 0) for f in closure]
            ld_src = max(depths) if depths else ld_bin
        else:
            ld_src = ld_bin

    return RegionMetrics(
        label=label,
        prog_ops=prog_ops,
        pct_aff=pct_aff,
        pct_ops=100.0 * sum(fs.count for fs in region_stmts) / prog_ops
        if prog_ops
        else 0.0,
        pct_mops=100.0 * mem_ops / region_ops,
        pct_fpops=100.0 * fp_ops / region_ops,
        interprocedural=interproc,
        skew=skew,
        pct_parallel_ops=100.0 * parallel_ops / region_ops,
        pct_simd_ops=100.0 * simd_ops / region_ops,
        pct_reuse=100.0 * reuse_good / reuse_total if reuse_total else 0.0,
        pct_potential_reuse=100.0 * preuse_good / reuse_total
        if reuse_total
        else 0.0,
        ld_src=ld_src,
        ld_bin=ld_bin,
        tile_depth=tile_depth,
        pct_tile_ops=100.0 * tile_ops / region_ops,
        components_before=fusion.components_before,
        components_after=fusion.components_after,
        fusion=fusion_heuristic,
    )
