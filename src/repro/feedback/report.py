"""Human-readable feedback reports.

Renders, per region of interest, what the paper's case studies show:
the fat regions, per-loop-dimension properties (parallel, permutable,
stride-0/1 fractions), the suggested transformation sequence, and the
simplified post-transformation AST.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..schedule.ast_out import render_ast
from ..schedule.nest import NestForest, NestNode
from ..schedule.transform import NestPlan
from .stride import stride_scores


@dataclass
class LoopDimReport:
    """Per-dimension properties of one nest (Table 3's tuples)."""

    loop_id: str
    src_line: Optional[int]
    parallel: bool
    permutable: bool
    pct_stride01: float


@dataclass
class NestReport:
    """Feedback for one innermost nest."""

    leaf: NestNode
    dims: List[LoopDimReport]
    plan: NestPlan
    ops: int

    def interchange_suggested(self) -> bool:
        return self.plan.interchange

    def simd_suggested(self) -> bool:
        return self.plan.simd

    def tile_suggested(self) -> bool:
        return self.plan.tile_dims >= 2


def loop_src_line(forest: NestForest, node: NestNode) -> Optional[int]:
    """Debug-info line of a loop: the smallest instruction line among
    the statements it (transitively) contains -- what a profiler can
    recover from DWARF."""
    lines = [
        s.stmt.instr.src_line
        for n in node.walk()
        for s in n.stmts
        if s.stmt.instr.src_line is not None
    ]
    return min(lines) if lines else None


def nest_report(
    forest: NestForest, leaf: NestNode, plan: NestPlan
) -> NestReport:
    scores = stride_scores(leaf)
    chain: List[NestNode] = []
    node: Optional[NestNode] = leaf
    while node is not None:
        chain.append(node)
        node = forest.node_at(node.path[:-1])
    chain.reverse()
    band_start = leaf.band_start if leaf.band_start is not None else leaf.depth - 1
    dims = []
    for i, n in enumerate(chain):
        dims.append(
            LoopDimReport(
                loop_id=n.loop_id,
                src_line=loop_src_line(forest, n),
                parallel=bool(n.parallel),
                permutable=i >= band_start and leaf.depth - band_start >= 2,
                pct_stride01=100.0 * (scores[i] if i < len(scores) else 0.0),
            )
        )
    return NestReport(leaf=leaf, dims=dims, plan=plan, ops=leaf.ops_total)


def render_report(
    forest: NestForest,
    plans: Sequence[NestPlan],
    title: str = "poly-prof feedback",
    top: int = 10,
) -> str:
    """The textual feedback document."""
    reports = [
        nest_report(forest, p.leaf, p)
        for p in sorted(plans, key=lambda p: -p.leaf.ops_total)[:top]
    ]
    total = forest.total_ops() or 1
    out = [f"=== {title} ===", ""]
    for r in reports:
        pct = 100.0 * r.leaf.ops_total / total
        nest_name = " / ".join(elem[-1] for elem in r.leaf.path)
        out.append(
            f"nest {nest_name}  ({r.leaf.ops_total} ops, {pct:.0f}%)"
        )
        for d in r.dims:
            line = f":{d.src_line}" if d.src_line is not None else ""
            out.append(
                f"  dim {d.loop_id}{line}: "
                f"parallel={'yes' if d.parallel else 'no'} "
                f"permutable={'yes' if d.permutable else 'no'} "
                f"stride01={d.pct_stride01:.0f}%"
            )
        if r.plan.steps:
            out.append("  suggested transformation:")
            for s in r.plan.steps:
                out.append(f"    {s.kind}: {s.detail}")
        else:
            out.append("  no transformation suggested")
        out.append("")
    out.append("--- simplified AST after transformation ---")
    out.append(render_ast(forest, list(plans)))
    return "\n".join(out)
