"""Static affine-region modeling: the LLVM-Polly stand-in.

Experiment II of the paper runs Polly over Rodinia and reports, per
benchmark, why *static* polyhedral modeling of the region of interest
fails.  This module re-creates that baseline over mini-ISA programs:
it attempts to model loop nests from the static code alone -- no
execution, no dynamic disambiguation -- and reports the paper's
failure codes:

====  ==========================================================
R     unhandled function call (not a simple math leaf function)
C     complex CFG: break/return inside a loop, irreducible loop
B     non-affine loop bound or non-affine conditional
F     non-affine access function (includes pointer indirection)
A     possible pointer aliasing beyond the runtime-check budget
P     base pointer of an access not loop-invariant
====  ==========================================================

The contrast with the dynamic pipeline is the reproduction's point:
a loaded row pointer is *F* statically but folds to an affine access
dynamically; two heap arrays *may* alias statically but never do in
the trace.

Static value analysis: a deliberately simple one-pass abstract
interpretation.  Registers with a single static definition evaluate
structurally (constants, parameters, affine combinations); registers
matching the canonical induction-variable pattern become loop
symbols; everything else -- loads, call results, floats, multi-def
registers -- is non-affine.  This mirrors the scalar-evolution
precision a production compiler has at -O2 without profile data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..cfg.looptree import Loop, build_loop_forest
from ..isa.instructions import Call, CondBr, Instr, Return
from ..isa.program import BasicBlock, Function, Program

#: canonical order of the failure codes in reports (paper Table 5)
REASON_ORDER = "RCBFAP"

#: how many may-alias pointer pairs Polly-like runtime checks absorb
ALIAS_CHECK_BUDGET = 3


class _Affine:
    """Abstract value: affine combination of symbols, or unknown."""

    __slots__ = ("terms", "const", "roots")

    def __init__(self, terms=None, const=0, roots=frozenset()):
        self.terms: Dict[str, int] = terms or {}
        self.const = const
        #: parameter roots this value is derived from (for aliasing)
        self.roots: frozenset = roots

    @classmethod
    def constant(cls, c):
        return cls({}, c)

    @classmethod
    def symbol(cls, name, root=None):
        return cls({name: 1}, 0, frozenset([root]) if root else frozenset())

    def add(self, other, sign=1):
        t = dict(self.terms)
        for k, v in other.terms.items():
            t[k] = t.get(k, 0) + sign * v
            if t[k] == 0:
                del t[k]
        return _Affine(t, self.const + sign * other.const, self.roots | other.roots)

    def scale(self, k):
        return _Affine(
            {s: v * k for s, v in self.terms.items()}, self.const * k, self.roots
        )

    def is_const(self):
        return not self.terms


UNKNOWN = None


@dataclass
class NestVerdict:
    """Static modelability of one top-level loop nest."""

    func: str
    header: str
    depth: int
    reasons: str          # subset of RCBFAP, '' when modelable

    @property
    def modelable(self) -> bool:
        return not self.reasons


@dataclass
class StaticReport:
    """Result of static analysis over a region (set of functions)."""

    region: Tuple[str, ...]
    reasons: str                       # whole-region failure codes
    nests: List[NestVerdict] = field(default_factory=list)

    @property
    def whole_region_modelable(self) -> bool:
        return not self.reasons

    def modelable_nests(self) -> List[NestVerdict]:
        return [n for n in self.nests if n.modelable]

    def max_modelable_depth(self) -> int:
        return max((n.depth for n in self.modelable_nests()), default=0)


def _static_cfg(fn: Function):
    nodes = set(fn.blocks)
    edges = set()
    for bb in fn.blocks.values():
        for s in bb.successors():
            edges.add((bb.name, s))
    return nodes, edges


def _is_simple_leaf(fn: Function) -> bool:
    """A 'simple' function Polly-like analysis tolerates (exp, sqrt...):
    straight-line float math, no loops, no memory."""
    nodes, edges = _static_cfg(fn)
    forest = build_loop_forest(fn.name, nodes, edges, fn.entry)
    if forest.all_loops:
        return False
    for bb in fn.blocks.values():
        for ins in bb.instrs:
            if ins.is_mem:
                return False
        if isinstance(bb.terminator, Call):
            return False
    return True


class _FunctionAnalysis:
    """Static per-function facts: loop forest, IVs, abstract values."""

    def __init__(self, program: Program, fn: Function) -> None:
        self.program = program
        self.fn = fn
        nodes, edges = _static_cfg(fn)
        self.forest = build_loop_forest(fn.name, nodes, edges, fn.entry)
        self.block_of_instr: Dict[int, str] = {}
        self.values: Dict[str, Optional[_Affine]] = {}
        self._analyze_values()

    # -- value analysis -----------------------------------------------------------

    def _analyze_values(self) -> None:
        fn = self.fn
        defs: Dict[str, List[Tuple[str, Instr]]] = {}
        for bb in fn.blocks.values():
            for ins in bb.instrs:
                self.block_of_instr[ins.uid] = bb.name
                if ins.dest is not None:
                    defs.setdefault(ins.dest, []).append((bb.name, ins))
        vals: Dict[str, Optional[_Affine]] = {
            p: _Affine.symbol(f"param:{p}", root=p) for p in fn.params
        }

        def operand(op) -> Optional[_Affine]:
            if isinstance(op, (int,)):
                return _Affine.constant(op)
            if isinstance(op, float):
                return UNKNOWN
            return vals.get(op, UNKNOWN)

        # induction variables: multi-def registers matching the pattern
        # {mov r, init} + {add r, r, const} with the add inside a loop
        for reg, sites in defs.items():
            if len(sites) != 2:
                continue
            movs = [i for _, i in sites if i.opcode == "mov"]
            adds = [
                (b, i)
                for b, i in sites
                if i.opcode == "add"
                and i.srcs
                and i.srcs[0] == reg
                and isinstance(i.srcs[1], int)
            ]
            if len(movs) == 1 and len(adds) == 1:
                add_block = adds[0][0]
                loop = self.forest.innermost_containing(add_block)
                if loop is not None:
                    vals[reg] = _Affine.symbol(f"iv:{fn.name}:{loop.id}")

        # single-def registers evaluate structurally in any order that
        # respects def-before-use; the frontend emits defs in order, so
        # a block-order pass suffices (unknown on forward refs is safe)
        for bb in fn.blocks.values():
            for ins in bb.instrs:
                d = ins.dest
                if d is None or d in vals:
                    continue
                if len(defs.get(d, ())) != 1:
                    vals[d] = UNKNOWN
                    continue
                vals[d] = self._eval(ins, operand)
        self.values = vals

    def _eval(self, ins: Instr, operand) -> Optional[_Affine]:
        op = ins.opcode
        if op == "const":
            v = ins.srcs[0]
            return _Affine.constant(v) if isinstance(v, int) else UNKNOWN
        if op == "mov":
            return operand(ins.srcs[0])
        if op in ("add", "sub"):
            a, b = operand(ins.srcs[0]), operand(ins.srcs[1])
            if a is UNKNOWN or b is UNKNOWN:
                return UNKNOWN
            return a.add(b, 1 if op == "add" else -1)
        if op == "mul":
            a, b = operand(ins.srcs[0]), operand(ins.srcs[1])
            if a is UNKNOWN or b is UNKNOWN:
                return UNKNOWN
            if a.is_const():
                return b.scale(a.const)
            if b.is_const():
                return a.scale(b.const)
            return UNKNOWN
        return UNKNOWN  # loads, calls, floats, divisions, ...

    def value_of(self, op) -> Optional[_Affine]:
        if isinstance(op, int):
            return _Affine.constant(op)
        if isinstance(op, float):
            return UNKNOWN
        return self.values.get(op, UNKNOWN)


def static_affine_access_uids(
    program: Program, region_funcs: Optional[Sequence[str]] = None
) -> Set[int]:
    """Uids of memory instructions whose address is *provably* affine
    from the static code alone.

    This is the static side of the crosscheck invariant "statically
    affine implies dynamically foldable": any uid returned here must,
    in an exact (unclamped) profile, fold to a piecewise-affine access
    function.  The converse is of course false -- the dynamic side
    folds far more (that is the paper's point) -- so this set is
    deliberately conservative.  Exclusions that keep it sound:

    * a base address rooted in a *redefined* parameter (the one-pass
      value analysis keeps the stale ``param:`` symbol);
    * an induction variable whose init operand is itself non-affine
      (the ``iv:`` symbol is affine in the canonical coordinates only
      when its start is);
    * any access in a function reachable through a call site inside a
      loop, or in a recursive cycle: its parameters may vary with the
      *caller's* iterators in ways the per-function symbols cannot see.
    """
    if region_funcs is None:
        region_funcs = sorted(program.functions)
    funcs = [f for f in region_funcs if f in program.functions]

    # functions whose params may vary per caller iteration: callees of
    # in-loop call sites and members of recursive cycles, transitively
    loop_called: Set[str] = set()
    callees: Dict[str, Set[str]] = {f: set() for f in program.functions}
    for fname, fn in program.functions.items():
        nodes, edges = _static_cfg(fn)
        forest = build_loop_forest(fname, nodes, edges, fn.entry)
        in_loop = set()
        for lp in forest.all_loops:
            in_loop |= lp.region
        for bb in fn.blocks.values():
            if isinstance(bb.terminator, Call):
                callees[fname].add(bb.terminator.callee)
                if bb.name in in_loop:
                    loop_called.add(bb.terminator.callee)
    # recursion: anything on a call-graph cycle
    for fname in program.functions:
        stack, seen = [fname], set()
        while stack:
            g = stack.pop()
            for c in callees.get(g, ()):
                if c == fname:
                    loop_called.add(fname)
                elif c not in seen:
                    seen.add(c)
                    stack.append(c)
    # propagate: callee of a tainted function is tainted
    changed = True
    while changed:
        changed = False
        for fname in list(loop_called):
            for c in callees.get(fname, ()):
                if c not in loop_called:
                    loop_called.add(c)
                    changed = True

    out: Set[int] = set()
    for fname in funcs:
        fn = program.functions[fname]
        fa = _FunctionAnalysis(program, fn)
        redefined: Set[str] = set()
        iv_init: Dict[str, Instr] = {}  # iv symbol -> its mov instruction
        defs: Dict[str, List[Instr]] = {}
        for bb in fn.blocks.values():
            for ins in bb.instrs:
                if ins.dest is not None:
                    defs.setdefault(ins.dest, []).append(ins)
                    if ins.dest in fn.params:
                        redefined.add(ins.dest)
        for reg, val in fa.values.items():
            if val is UNKNOWN or len(val.terms) != 1 or val.const:
                continue
            sym, k = next(iter(val.terms.items()))
            if sym.startswith("iv:") and k == 1:
                movs = [i for i in defs.get(reg, ()) if i.opcode == "mov"]
                if len(movs) == 1:
                    iv_init[sym] = movs[0]

        sound_cache: Dict[str, Optional[bool]] = {}

        def symbol_sound(sym: str) -> bool:
            if sym in sound_cache:
                # None marks in-progress (an iv-init cycle): unsound
                return bool(sound_cache[sym])
            sound_cache[sym] = None
            if sym.startswith("param:"):
                p = sym[len("param:"):]
                ok = fname not in loop_called and p not in redefined
            elif sym.startswith("iv:"):
                mov = iv_init.get(sym)
                init = fa.value_of(mov.srcs[0]) if mov is not None else UNKNOWN
                ok = init is not UNKNOWN and all(
                    symbol_sound(s) for s in init.terms
                )
            else:
                ok = False
            sound_cache[sym] = ok
            return ok

        for bb in fn.blocks.values():
            for ins in bb.instrs:
                if not ins.is_mem:
                    continue
                base = fa.value_of(ins.srcs[0])
                if base is UNKNOWN:
                    continue
                if all(symbol_sound(s) for s in base.terms):
                    out.add(ins.uid)
    return out


def _analyze_loop_nest(
    program: Program,
    analyses: Dict[str, _FunctionAnalysis],
    fa: _FunctionAnalysis,
    loop: Loop,
) -> Set[str]:
    """Failure reasons for one loop (and its nest), statically."""
    reasons: Set[str] = set()
    fn = fa.fn

    if len(loop.entries) > 1:
        reasons.add("C")

    bases_read: Set[str] = set()
    bases_written: Set[str] = set()

    def visit_block(bb: BasicBlock, in_loop: Loop) -> None:
        for ins in bb.instrs:
            if ins.is_mem:
                base = fa.value_of(ins.srcs[0])
                if base is UNKNOWN:
                    reasons.add("F")
                    # pointer loaded inside this loop: not loop-invariant
                    src = ins.srcs[0]
                    if isinstance(src, str):
                        reasons.add("P") if _defined_in(fa, src, in_loop) else None
                else:
                    # affine address: track parameter roots for aliasing
                    roots = base.roots or {"?anon"}
                    if ins.is_store:
                        bases_written.update(roots)
                    else:
                        bases_read.update(roots)
        term = bb.terminator
        if isinstance(term, Call):
            callee = program.functions.get(term.callee)
            if callee is None or not _is_simple_leaf(callee):
                reasons.add("R")
        elif isinstance(term, Return):
            reasons.add("C")  # return from inside a loop
        elif isinstance(term, CondBr):
            header = bb.name == in_loop.header or any(
                bb.name == l.header
                for l in fa.forest.all_loops
                if bb.name in l.region
            )
            a = fa.value_of(term.a)
            b = fa.value_of(term.b)
            if a is UNKNOWN or b is UNKNOWN:
                reasons.add("B")
            # multi-exit loops (break): an in-loop non-header block
            # jumping out of the loop region
            if not header:
                for s in term.successors():
                    if s not in in_loop.region:
                        reasons.add("C")

    for name in loop.region:
        visit_block(fn.blocks[name], loop)

    # aliasing: distinct parameter-rooted arrays with a writer; a small
    # number of pairs is absorbed by Polly-style runtime checks
    all_bases = bases_read | bases_written
    if bases_written and len(all_bases) > 1:
        pairs = len(bases_written) * len(all_bases) - len(bases_written)
        if pairs > ALIAS_CHECK_BUDGET or "?anon" in all_bases:
            reasons.add("A")
    return reasons


def _defined_in(fa: _FunctionAnalysis, reg: str, loop: Loop) -> bool:
    for bb_name in loop.region:
        for ins in fa.fn.blocks[bb_name].instrs:
            if ins.dest == reg:
                return True
    return False


def _loop_depth(loop: Loop) -> int:
    best = loop.depth
    for c in loop.children:
        best = max(best, _loop_depth(c))
    return best


def analyze_static(
    program: Program, region_funcs: Optional[Sequence[str]] = None
) -> StaticReport:
    """Static modeling attempt over a region of functions.

    Returns the whole-region failure codes plus per-top-level-nest
    verdicts ("Polly could model some smaller subregions").
    """
    if region_funcs is None:
        region_funcs = sorted(program.functions)
    analyses = {
        f: _FunctionAnalysis(program, program.functions[f])
        for f in region_funcs
        if f in program.functions
    }
    all_reasons: Set[str] = set()
    nests: List[NestVerdict] = []
    region_read: Set[str] = set()
    region_written: Set[str] = set()
    for fname, fa in sorted(analyses.items()):
        in_loop_blocks = set()
        for lp in fa.forest.all_loops:
            in_loop_blocks |= lp.region
        # region-level control: a data-dependent conditional *around*
        # the loops (e.g. an error-controlled step-acceptance test)
        # makes the surrounding region non-affine for static tools
        for bb in fa.fn.blocks.values():
            if bb.name in in_loop_blocks:
                continue
            term = bb.terminator
            if isinstance(term, CondBr):
                if fa.value_of(term.a) is UNKNOWN or fa.value_of(term.b) is UNKNOWN:
                    all_reasons.add("B")
            for ins in bb.instrs:
                if ins.is_mem:
                    base = fa.value_of(ins.srcs[0])
                    roots = base.roots if base is not UNKNOWN else {"?anon"}
                    (region_written if ins.is_store else region_read).update(
                        roots or {"?anon"}
                    )
        # accumulate loop-level bases for the whole-region alias check
        for lp in fa.forest.all_loops:
            for name in lp.region:
                for ins in fa.fn.blocks[name].instrs:
                    if ins.is_mem:
                        base = fa.value_of(ins.srcs[0])
                        roots = base.roots if base is not UNKNOWN else {"?anon"}
                        (region_written if ins.is_store else region_read).update(
                            roots or {"?anon"}
                        )
        for root in fa.forest.roots:
            rs: Set[str] = set()

            def rec(l: Loop) -> None:
                rs.update(_analyze_loop_nest(program, analyses, fa, l))
                for c in l.children:
                    rec(c)

            rec(root)
            nests.append(
                NestVerdict(
                    func=fname,
                    header=root.header,
                    depth=_loop_depth(root) - root.depth + 1,
                    reasons="".join(r for r in REASON_ORDER if r in rs),
                )
            )
            all_reasons.update(rs)
        # calls at region top level (outside loops) also break
        # whole-region modeling
        for bb in fa.fn.blocks.values():
            if isinstance(bb.terminator, Call):
                callee = program.functions.get(bb.terminator.callee)
                inside_region = bb.terminator.callee in analyses
                if not inside_region and (
                    callee is None or not _is_simple_leaf(callee)
                ):
                    all_reasons.add("R")
    # whole-region aliasing: the union of pointer roots across the
    # (conceptually inlined) region must fit the runtime-check budget
    all_bases = region_read | region_written
    if region_written and len(all_bases) > 1:
        pairs = len(region_written) * len(all_bases) - len(region_written)
        if pairs > ALIAS_CHECK_BUDGET or "?anon" in all_bases:
            all_reasons.add("A")
    return StaticReport(
        region=tuple(sorted(analyses)),
        reasons="".join(r for r in REASON_ORDER if r in all_reasons),
        nests=nests,
    )
