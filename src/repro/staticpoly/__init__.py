"""Static polyhedral modeling baseline (the paper's Experiment II:
LLVM Polly over Rodinia), with R/C/B/F/A/P failure codes.
"""

from .analyzer import (
    ALIAS_CHECK_BUDGET,
    NestVerdict,
    REASON_ORDER,
    StaticReport,
    analyze_static,
    static_affine_access_uids,
)

__all__ = [
    "ALIAS_CHECK_BUDGET",
    "NestVerdict",
    "REASON_ORDER",
    "StaticReport",
    "analyze_static",
    "static_affine_access_uids",
]
