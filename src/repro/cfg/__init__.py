"""Interprocedural control structure (paper section 3).

Dynamic CFG/CG reconstruction, loop-nesting forests (Havlak via
Ramalingam's characterization), the recursive-component-set, and the
Algorithm 1/2 loop-event generator.
"""

from .builder import ControlStructureBuilder, DynCFG, DynCallGraph
from .loop_events import LoopEvent, LoopEventGenerator, qualify
from .looptree import Loop, LoopForest, build_loop_forest
from .rcs import (
    RecursiveComponent,
    RecursiveComponentSet,
    build_recursive_component_set,
)

__all__ = [
    "ControlStructureBuilder",
    "DynCFG",
    "DynCallGraph",
    "Loop",
    "LoopEvent",
    "LoopEventGenerator",
    "LoopForest",
    "RecursiveComponent",
    "RecursiveComponentSet",
    "build_loop_forest",
    "build_recursive_component_set",
    "qualify",
]
