"""Recursive-component-set: the loop-nesting-tree of the call graph.

Paper section 3.2.  Cycles in the call graph denote potential dynamic
loop structures (recursion).  The recursive-component-set is computed
by the analogue of the loop-forest construction:

1. every top-level SCC of the CG with at least one cycle is a
   *recursive component*;
2. the component's *entries* are its entry nodes (functions callable
   from outside the component);
3. repeatedly: pick an entry node of a remaining cyclic SCC, add it to
   the *headers* set of the enclosing top-level component, delete the
   edges inside the SCC that point to it -- until no cycles remain.

The result drives Algorithm 2: a call to an *entry* opens a recursive
loop, calls/returns to/from a *header* iterate it, and the loop exits
when the entering call unstacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .looptree import _rpo_numbers, _sccs

Edge = Tuple[str, str]


@dataclass
class RecursiveComponent:
    """One recursive component of the call graph."""

    id: str
    functions: FrozenSet[str]
    entries: FrozenSet[str]
    headers: FrozenSet[str]

    #: discriminates from CFG loops on the ``inLoops`` stack
    is_cfg: bool = False

    def __contains__(self, func: str) -> bool:
        return func in self.functions

    def __hash__(self) -> int:
        return hash(self.id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecursiveComponent):
            return NotImplemented
        return self.id == other.id

    def __repr__(self) -> str:
        return (
            f"RecursiveComponent({self.id}, functions={sorted(self.functions)}, "
            f"entries={sorted(self.entries)}, headers={sorted(self.headers)})"
        )


@dataclass
class RecursiveComponentSet:
    """All recursive components, with per-function lookups."""

    components: List[RecursiveComponent] = field(default_factory=list)
    of_function: Dict[str, RecursiveComponent] = field(default_factory=dict)

    def component_of(self, func: str) -> Optional[RecursiveComponent]:
        return self.of_function.get(func)

    def is_entry(self, func: str) -> bool:
        c = self.of_function.get(func)
        return c is not None and func in c.entries

    def is_header(self, func: str) -> bool:
        c = self.of_function.get(func)
        return c is not None and func in c.headers


def build_recursive_component_set(
    nodes: Iterable[str],
    edges: Iterable[Edge],
    root: Optional[str],
) -> RecursiveComponentSet:
    """Compute the recursive-component-set of a call graph."""
    nodes = set(nodes)
    edge_set: Set[Edge] = {(a, b) for (a, b) in edges if a in nodes and b in nodes}
    rpo = _rpo_numbers(nodes, edge_set, root)
    out = RecursiveComponentSet()
    counter = 0

    for comp in _sccs(nodes, edge_set):
        internal = {(a, b) for (a, b) in edge_set if a in comp and b in comp}
        if len(comp) == 1 and not internal:
            continue  # not recursive
        entries = {b for (a, b) in edge_set if b in comp and a not in comp}
        if root in comp:
            entries.add(root)
        if not entries:
            entries = {min(comp, key=lambda n: (rpo.get(n, 1 << 30), n))}

        # peel headers until the component is acyclic
        headers: Set[str] = set()
        sub_nodes = set(comp)
        sub_edges = set(internal)
        sub_entries = set(entries)
        while True:
            cyclic = []
            for scc in _sccs(sub_nodes, sub_edges):
                if len(scc) > 1 or (next(iter(scc)),) * 2 in sub_edges:
                    cyclic.append(scc)
            if not cyclic:
                break
            for scc in cyclic:
                scc_entries = {
                    b for (a, b) in sub_edges if b in scc and a not in scc
                } | (sub_entries & scc)
                if not scc_entries:
                    scc_entries = scc
                h = min(scc_entries, key=lambda n: (rpo.get(n, 1 << 30), n))
                headers.add(h)
                sub_edges = {
                    (a, b) for (a, b) in sub_edges if not (b == h and a in scc)
                }

        counter += 1
        rc = RecursiveComponent(
            id=f"RC{counter}",
            functions=frozenset(comp),
            entries=frozenset(entries),
            headers=frozenset(headers),
        )
        out.components.append(rc)
        for f in comp:
            out.of_function[f] = rc

    out.components.sort(key=lambda c: c.id)
    return out
