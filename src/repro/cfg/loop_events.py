"""Algorithms 1 & 2: loop events from the raw control-event stream.

The stream of ``jump`` / ``call`` / ``return`` events produced by the
instrumented execution is rewritten into *loop events*:

========  ==========================================================
``E``     entry into a CFG loop (jump to a non-visiting header)
``I``     iteration of a CFG loop (jump to a visiting header)
``X``     exit of a CFG loop (jump/return to a block outside it)
``N``     plain local jump
``C``     plain call
``R``     plain return
``Ec``    call to a recursive component's entry: recursive-loop entry
``Ic``    call to a recursive component's header: iteration
``Ir``    return from a recursive component's header: iteration
``Xr``    unstacking of the entering call: recursive-loop exit
========  ==========================================================

The implementation follows the paper's Algorithms 1 and 2, with one
clarification the pseudo-code leaves implicit: the pop-exited-loops
scan on a local jump only considers CFG loops *of the jumping
function* (a callee's jumps must not exit loops still live in its
caller further down the ``inLoops`` stack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Union

from ..isa.events import CallEvent, ControlEvent, JumpEvent, ReturnEvent
from .looptree import Loop, LoopForest
from .rcs import RecursiveComponent, RecursiveComponentSet

AnyLoop = Union[Loop, RecursiveComponent]


def qualify(func: str, bb: str) -> str:
    """Global name of a basic block ('func.bb')."""
    return f"{func}.{bb}"


@dataclass(frozen=True)
class LoopEvent:
    """One loop event; ``block`` is the qualified destination block."""

    kind: str                      # E I X N C R Ec Ic Ir Xr
    block: Optional[str]
    loop: Optional[AnyLoop] = None

    def __str__(self) -> str:
        if self.loop is not None:
            return f"{self.kind}({self.loop.id}, {self.block})"
        return f"{self.kind}({self.block})"


class LoopEventGenerator:
    """Stateful rewriter: control events in, loop events out.

    Feed events with :meth:`process`, which yields zero or more loop
    events per control event.  The ``inLoops`` stack and all
    visiting/stack-count state live here, so one generator serves one
    execution.
    """

    def __init__(
        self,
        forests: Dict[str, LoopForest],
        rcs: RecursiveComponentSet,
    ) -> None:
        self.forests = forests
        self.rcs = rcs
        self.in_loops: List[AnyLoop] = []
        self._visiting: Set[str] = set()           # CFG loop ids
        self._stackcount: Dict[str, int] = {}      # component id -> count
        self._entry: Dict[str, Optional[str]] = {} # component id -> function

    # -- main dispatch ---------------------------------------------------------

    def process(self, event: ControlEvent) -> Iterator[LoopEvent]:
        if isinstance(event, JumpEvent):
            yield from self._on_jump(event)
        elif isinstance(event, CallEvent):
            yield from self._on_call(event)
        elif isinstance(event, ReturnEvent):
            yield from self._on_return(event)
        else:  # pragma: no cover
            raise TypeError(f"unexpected event {event!r}")

    def process_all(self, events: Iterable[ControlEvent]) -> Iterator[LoopEvent]:
        for ev in events:
            yield from self.process(ev)

    # -- Algorithm 1: local jumps -------------------------------------------------

    def _on_jump(self, event: JumpEvent) -> Iterator[LoopEvent]:
        func, bb = event.func, event.dst_bb
        qbb = qualify(func, bb)
        # exit live CFG loops of this function that do not contain B
        while self.in_loops:
            top = self.in_loops[-1]
            if not isinstance(top, Loop) or not top.is_cfg:
                break
            if top.func != func or bb in top.region:
                break
            self._visiting.discard(top.id)
            self.in_loops.pop()
            yield LoopEvent("X", qbb, top)
        forest = self.forests.get(func)
        loop = forest.by_header.get(bb) if forest else None
        if loop is not None:
            if loop.id not in self._visiting:
                self._visiting.add(loop.id)
                self.in_loops.append(loop)
                yield LoopEvent("E", qbb, loop)
            else:
                yield LoopEvent("I", qbb, loop)
        yield LoopEvent("N", qbb)

    # -- Algorithm 2: calls ----------------------------------------------------------

    def _on_call(self, event: CallEvent) -> Iterator[LoopEvent]:
        if event.caller is None:
            # synthetic entry into main: the following jump event emits N
            return
        callee = event.callee
        qbb = qualify(callee, event.dst_bb)
        comp = self.rcs.component_of(callee)
        if comp is not None and callee in comp.entries and \
                self._entry.get(comp.id) is None:
            self._entry[comp.id] = callee
            self._stackcount.setdefault(comp.id, 0)
            self.in_loops.append(comp)
            yield LoopEvent("Ec", qbb, comp)
        elif comp is not None and callee in comp.headers:
            # all CFG loops live inside the component are exited
            while self.in_loops:
                top = self.in_loops[-1]
                if not (isinstance(top, Loop) and top.func in comp.functions):
                    break
                self._visiting.discard(top.id)
                self.in_loops.pop()
                yield LoopEvent("X", qbb, top)
            self._stackcount[comp.id] = self._stackcount.get(comp.id, 0) + 1
            yield LoopEvent("Ic", qbb, comp)
        else:
            yield LoopEvent("C", qbb)

    # -- Algorithm 2: returns -----------------------------------------------------------

    def _on_return(self, event: ReturnEvent) -> Iterator[LoopEvent]:
        func = event.callee  # the function being returned from
        qbb = (
            qualify(event.caller, event.dst_bb)
            if event.caller is not None and event.dst_bb is not None
            else None
        )
        # exit CFG loops still live in the returning function
        while self.in_loops:
            top = self.in_loops[-1]
            if not (isinstance(top, Loop) and top.func == func):
                break
            self._visiting.discard(top.id)
            self.in_loops.pop()
            yield LoopEvent("X", qbb, top)
        comp = self.rcs.component_of(func)
        if (
            comp is not None
            and func in comp.entries
            and self._stackcount.get(comp.id, 0) == 0
            and self._entry.get(comp.id) == func
        ):
            self._entry[comp.id] = None
            if self.in_loops and self.in_loops[-1] is comp:
                self.in_loops.pop()
            yield LoopEvent("Xr", qbb, comp)
        elif comp is not None and func in comp.headers:
            self._stackcount[comp.id] = self._stackcount.get(comp.id, 0) - 1
            yield LoopEvent("Ir", qbb, comp)
        else:
            if event.caller is None:
                return  # main returning: nothing to report
            yield LoopEvent("R", qbb)
