"""Instrumentation I: dynamic CFG and call-graph reconstruction.

POLY-PROF's first pass instruments jump/call/return instructions and
rebuilds, per function, the control-flow graph of the *executed* part
of the program, plus the whole-program call graph.  Only executed
blocks and edges appear -- an advantage the paper calls out: dead code
never reaches the analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.events import CallEvent, Instrumentation, JumpEvent, ReturnEvent


@dataclass
class DynCFG:
    """Dynamically-discovered CFG of one function (executed part)."""

    func: str
    entry: Optional[str] = None
    nodes: Set[str] = field(default_factory=set)
    edges: Set[Tuple[str, str]] = field(default_factory=set)

    def successors(self, bb: str) -> List[str]:
        return sorted(dst for (src, dst) in self.edges if src == bb)

    def predecessors(self, bb: str) -> List[str]:
        return sorted(src for (src, dst) in self.edges if dst == bb)


@dataclass
class DynCallGraph:
    """Dynamically-discovered call graph."""

    root: Optional[str] = None
    nodes: Set[str] = field(default_factory=set)
    #: caller -> callee edges (interprocedural CG edges)
    edges: Set[Tuple[str, str]] = field(default_factory=set)
    #: (caller, callsite_bb, callee) triples, for call-site labelling
    call_sites: Set[Tuple[str, str, str]] = field(default_factory=set)

    def callees(self, func: str) -> List[str]:
        return sorted(dst for (src, dst) in self.edges if src == func)

    def callers(self, func: str) -> List[str]:
        return sorted(src for (src, dst) in self.edges if dst == func)


class ControlStructureBuilder(Instrumentation):
    """Observer that reconstructs CFGs + CG from the raw event stream.

    Also records the linear control-event trace when ``record_trace``
    is set (the later stages re-process it; in a production setting the
    two instrumentation passes run the program twice instead).
    """

    def __init__(self, record_trace: bool = False) -> None:
        self.cfgs: Dict[str, DynCFG] = {}
        self.callgraph = DynCallGraph()
        self.record_trace = record_trace
        self.trace: List[object] = []
        #: frame id -> (caller, callsite block), to close the
        #: call-fallthrough CFG edge when the frame returns
        self._frames: Dict[int, Tuple[Optional[str], Optional[str]]] = {}

    def _cfg(self, func: str) -> DynCFG:
        cfg = self.cfgs.get(func)
        if cfg is None:
            cfg = DynCFG(func)
            self.cfgs[func] = cfg
        return cfg

    # -- event hooks ----------------------------------------------------------

    def on_jump(self, event: JumpEvent) -> None:
        cfg = self._cfg(event.func)
        cfg.nodes.add(event.dst_bb)
        if event.src_bb is None:
            cfg.entry = event.dst_bb
        else:
            cfg.nodes.add(event.src_bb)
            cfg.edges.add((event.src_bb, event.dst_bb))
        if self.record_trace:
            self.trace.append(event)

    def on_call(self, event: CallEvent) -> None:
        cg = self.callgraph
        cg.nodes.add(event.callee)
        cfg = self._cfg(event.callee)
        cfg.nodes.add(event.dst_bb)
        if cfg.entry is None:
            cfg.entry = event.dst_bb
        if event.caller is None:
            cg.root = event.callee
        else:
            cg.nodes.add(event.caller)
            cg.edges.add((event.caller, event.callee))
            cg.call_sites.add((event.caller, event.callsite_bb, event.callee))
            # the call site terminates a block in the caller's CFG
            self._cfg(event.caller).nodes.add(event.callsite_bb)
        self._frames[event.frame_id] = (event.caller, event.callsite_bb)
        if self.record_trace:
            self.trace.append(event)

    def on_return(self, event: ReturnEvent) -> None:
        if event.caller is not None and event.dst_bb is not None:
            cfg = self._cfg(event.caller)
            cfg.nodes.add(event.dst_bb)
            # a call instruction falls through: the caller's CFG has an
            # intraprocedural edge from the call-site block to the
            # continuation block (it materializes when the call returns)
            caller, callsite = self._frames.pop(event.frame_id, (None, None))
            if caller == event.caller and callsite is not None:
                cfg.edges.add((callsite, event.dst_bb))
        if self.record_trace:
            self.trace.append(event)
