"""Loop-nesting forests via Ramalingam's recursive characterization.

Paper section 3.1: 1. each SCC of the CFG containing a cycle is the
region of an outermost loop; 2. one entry node of each loop is
designated its *header*; 3. edges inside the loop targeting the header
are *back-edges*; 4. removing the back-edges and recursing yields the
sub-loops.  This definition (Ramalingam 2002) is what Havlak's
almost-linear algorithm computes; at profiler scale we implement the
definition directly with Tarjan SCCs, which is simpler and fast enough.

The construction handles irreducible loops (multiple entries, as loop
``L2`` in the paper's Fig. 2) by picking the entry with the smallest
reverse-post-order number as header, matching the figure's choice of
``C`` over ``D``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

Edge = Tuple[str, str]


@dataclass
class Loop:
    """One loop of the nesting forest."""

    id: str                     # e.g. "f:L1"
    func: str
    header: str
    region: FrozenSet[str]      # all blocks of the loop (incl. nested)
    entries: FrozenSet[str]     # entry nodes of the loop's SCC
    back_edges: FrozenSet[Edge]
    depth: int = 1
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)

    #: discriminates CFG loops from recursive components on the
    #: ``inLoops`` stack of Algorithms 1-2
    is_cfg: bool = True

    def contains_block(self, bb: str) -> bool:
        return bb in self.region

    def __repr__(self) -> str:
        return f"Loop({self.id}, header={self.header}, region={sorted(self.region)})"

    def __hash__(self) -> int:
        return hash(self.id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Loop):
            return NotImplemented
        return self.id == other.id


@dataclass
class LoopForest:
    """The loop-nesting forest of one function."""

    func: str
    roots: List[Loop] = field(default_factory=list)
    by_header: Dict[str, Loop] = field(default_factory=dict)
    all_loops: List[Loop] = field(default_factory=list)

    def loop_of_header(self, bb: str) -> Optional[Loop]:
        return self.by_header.get(bb)

    def innermost_containing(self, bb: str) -> Optional[Loop]:
        best: Optional[Loop] = None
        for lp in self.all_loops:
            if bb in lp.region and (best is None or lp.depth > best.depth):
                best = lp
        return best

    @property
    def max_depth(self) -> int:
        return max((lp.depth for lp in self.all_loops), default=0)


def _sccs(nodes: Set[str], edges: Set[Edge]) -> List[Set[str]]:
    """Tarjan SCC (iterative)."""
    succ: Dict[str, List[str]] = {n: [] for n in nodes}
    for (a, b) in edges:
        if a in succ and b in nodes:
            succ[a].append(b)
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    out: List[Set[str]] = []
    counter = [0]

    for start in sorted(nodes):
        if start in index:
            continue
        work: List[Tuple[str, int]] = [(start, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack.add(v)
            advanced = False
            for i in range(pi, len(succ[v])):
                w = succ[v][i]
                if w not in index:
                    work[-1] = (v, i + 1)
                    work.append((w, 0))
                    advanced = True
                    break
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            if not advanced:
                work.pop()
                if work:
                    pv = work[-1][0]
                    low[pv] = min(low[pv], low[v])
                if low[v] == index[v]:
                    comp = set()
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.add(w)
                        if w == v:
                            break
                    out.append(comp)
    return out


def _rpo_numbers(nodes: Set[str], edges: Set[Edge], entry: Optional[str]) -> Dict[str, int]:
    """Reverse-post-order numbering from the entry (unreached nodes last)."""
    succ: Dict[str, List[str]] = {n: [] for n in nodes}
    for (a, b) in edges:
        if a in succ and b in nodes:
            succ[a].append(b)
    for n in succ:
        succ[n].sort()
    order: List[str] = []
    seen: Set[str] = set()

    def dfs(start: str) -> None:
        stack: List[Tuple[str, int]] = [(start, 0)]
        seen.add(start)
        while stack:
            v, i = stack[-1]
            if i < len(succ[v]):
                stack[-1] = (v, i + 1)
                w = succ[v][i]
                if w not in seen:
                    seen.add(w)
                    stack.append((w, 0))
            else:
                stack.pop()
                order.append(v)

    if entry is not None and entry in nodes:
        dfs(entry)
    for n in sorted(nodes):
        if n not in seen:
            dfs(n)
    order.reverse()
    return {n: i for i, n in enumerate(order)}


def build_loop_forest(
    func: str,
    nodes: Iterable[str],
    edges: Iterable[Edge],
    entry: Optional[str],
) -> LoopForest:
    """Build the loop-nesting forest of one (dynamic) CFG."""
    nodes = set(nodes)
    edges = {(a, b) for (a, b) in edges if a in nodes and b in nodes}
    rpo = _rpo_numbers(nodes, edges, entry)
    forest = LoopForest(func)
    counter = [0]

    def recurse(
        sub_nodes: Set[str],
        sub_edges: Set[Edge],
        parent: Optional[Loop],
        depth: int,
    ) -> List[Loop]:
        loops: List[Loop] = []
        for comp in _sccs(sub_nodes, sub_edges):
            internal = {(a, b) for (a, b) in sub_edges if a in comp and b in comp}
            if len(comp) == 1 and not internal:
                continue  # trivial SCC without a self-loop: not a loop
            # entry nodes: targets of edges from outside the SCC, or the
            # function entry if it lies inside
            entries = {
                b for (a, b) in edges if b in comp and a not in comp
            }
            if entry in comp:
                entries.add(entry)
            if not entries:
                # unreachable-from-outside cycle; fall back to RPO-least
                entries = {min(comp, key=lambda n: rpo.get(n, 1 << 30))}
            header = min(entries, key=lambda n: (rpo.get(n, 1 << 30), n))
            back = frozenset(
                (a, b) for (a, b) in internal if b == header
            )
            counter[0] += 1
            loop = Loop(
                id=f"{func}:L{counter[0]}",
                func=func,
                header=header,
                region=frozenset(comp),
                entries=frozenset(entries),
                back_edges=back,
                depth=depth,
                parent=parent,
            )
            loops.append(loop)
            forest.all_loops.append(loop)
            forest.by_header[header] = loop
            # recurse with back-edges removed
            inner_edges = internal - back
            loop.children = recurse(comp, inner_edges, loop, depth + 1)
        loops.sort(key=lambda l: (rpo.get(l.header, 1 << 30), l.header))
        return loops

    forest.roots = recurse(nodes, set(edges), None, 1)
    return forest
