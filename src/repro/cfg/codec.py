"""Codecs for the Instrumentation-I structures (dynamic CFGs + CG).

Only the *primary* observations are serialized -- the executed nodes
and edges of every function's dynamic CFG and of the call graph.  The
loop-nesting forests and the recursive-component-set are deterministic
pure functions of those graphs (:func:`~repro.cfg.looptree.build_loop_forest`
iterates in sorted order, as does
:func:`~repro.cfg.rcs.build_recursive_component_set`), so the decoder
recomputes them instead of trusting a serialized copy: the rebuilt
artifacts are identical-by-construction, and the on-disk format stays
small and robust against forest-representation changes.
"""

from __future__ import annotations

from typing import Dict

from .builder import DynCFG, DynCallGraph


def encode_cfgs(cfgs: Dict[str, DynCFG]) -> list:
    out = []
    for func in sorted(cfgs):
        cfg = cfgs[func]
        out.append({
            "func": cfg.func,
            "entry": cfg.entry,
            "nodes": sorted(cfg.nodes),
            "edges": sorted([a, b] for (a, b) in cfg.edges),
        })
    return out


def decode_cfgs(data: list) -> Dict[str, DynCFG]:
    cfgs: Dict[str, DynCFG] = {}
    for item in data:
        cfgs[item["func"]] = DynCFG(
            func=item["func"],
            entry=item["entry"],
            nodes=set(item["nodes"]),
            edges={(a, b) for a, b in item["edges"]},
        )
    return cfgs


def encode_callgraph(cg: DynCallGraph) -> dict:
    return {
        "root": cg.root,
        "nodes": sorted(cg.nodes),
        "edges": sorted([a, b] for (a, b) in cg.edges),
        "call_sites": sorted([a, b, c] for (a, b, c) in cg.call_sites),
    }


def decode_callgraph(data: dict) -> DynCallGraph:
    return DynCallGraph(
        root=data["root"],
        nodes=set(data["nodes"]),
        edges={(a, b) for a, b in data["edges"]},
        call_sites={(a, b, c) for a, b, c in data["call_sites"]},
    )
