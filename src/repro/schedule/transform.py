"""Structured-transformation suggestion (the paper's feedback core).

Assembles, per innermost nest, the sequence of transformations the
polyhedral analysis justifies: skewing (when it legalizes a band),
interchange (when a legal permutation improves spatial locality),
tiling (when a band of >= 2 permutable dimensions exists),
OpenMP-style parallelization (outermost parallel dimension), and
SIMDization (parallel innermost dimension with mostly stride-0/1
accesses) -- the vocabulary of the paper's case studies (Tables 3-4)
and flame-graph annotations (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .analysis import permutation_legal
from .nest import NestForest, NestNode


@dataclass
class TransformStep:
    kind: str            # 'skew' | 'interchange' | 'tile' | 'parallel' | 'simd'
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.detail}"


@dataclass
class NestPlan:
    """Suggested transformation for one innermost nest."""

    leaf: NestNode
    steps: List[TransformStep] = field(default_factory=list)
    permutation: Optional[Tuple[int, ...]] = None   # suggested dim order
    tile_dims: int = 0
    parallel_dims: List[int] = field(default_factory=list)
    simd: bool = False

    @property
    def interchange(self) -> bool:
        return self.permutation is not None and list(self.permutation) != list(
            range(self.leaf.depth)
        )


def best_permutation(
    forest: NestForest,
    leaf: NestNode,
    stride_scores: Sequence[float],
) -> Optional[Tuple[int, ...]]:
    """The legal permutation placing the best-stride dimension
    innermost (and otherwise preserving relative order).

    ``stride_scores[d]`` is the fraction of the nest's memory accesses
    that would be stride-0/1 if dimension ``d`` were innermost.
    """
    d = leaf.depth
    if d < 2 or not stride_scores:
        return None
    best: Optional[Tuple[int, ...]] = None
    best_score = -1.0
    for inner in range(d):
        perm = tuple([j for j in range(d) if j != inner] + [inner])
        if not permutation_legal(forest, leaf, perm):
            continue
        score = stride_scores[inner]
        if score > best_score:
            best_score = score
            best = perm
    return best


def plan_nest(
    forest: NestForest,
    leaf: NestNode,
    stride_scores: Optional[Sequence[float]] = None,
) -> NestPlan:
    """Build the transformation plan for one innermost nest."""
    plan = NestPlan(leaf=leaf)
    d = leaf.depth

    # skewing recorded by the band analysis
    node: Optional[NestNode] = leaf
    chain: List[NestNode] = []
    while node is not None:
        chain.append(node)
        node = forest.node_at(node.path[:-1])
    chain.reverse()   # outermost first
    for n in chain:
        if n.skew_factor:
            plan.steps.append(
                TransformStep(
                    "skew",
                    f"dim {n.depth - 1} += {n.skew_factor} * dim {n.depth - 2}",
                )
            )

    # interchange for spatial locality
    if stride_scores is not None:
        perm = best_permutation(forest, leaf, stride_scores)
        if perm is not None and list(perm) != list(range(d)):
            plan.permutation = perm
            plan.steps.append(
                TransformStep("interchange", f"dimension order {perm}")
            )
        elif perm is not None:
            plan.permutation = perm

    # tiling: band of >= 2 permutable dims
    band_start = leaf.band_start if leaf.band_start is not None else d - 1
    band_size = d - band_start
    if band_size >= 2:
        plan.tile_dims = band_size
        plan.steps.append(
            TransformStep("tile", f"{band_size}D band, tile size 32")
        )

    # parallelization: every parallel dim, outermost first
    for n in chain:
        if n.parallel:
            plan.parallel_dims.append(n.depth - 1)
    if plan.parallel_dims:
        plan.steps.append(
            TransformStep(
                "parallel", f"omp parallel for at dim {plan.parallel_dims[0]}"
            )
        )
    elif any(n.parallel_reduction for n in chain):
        # parallel modulo a reduction recurrence: privatize/expand
        dim = next(i for i, n in enumerate(chain) if n.parallel_reduction)
        plan.parallel_dims.append(dim)
        plan.steps.append(
            TransformStep(
                "parallel",
                f"omp parallel for reduction at dim {dim} "
                "(array-expand the accumulator)",
            )
        )
    elif band_size >= 2:
        # no parallel dimension, but a permutable band: tiled wavefront
        # (skewed) coarse-grain parallelism is available -- the paper's
        # GemsFDTD/nw/pathfinder pattern
        plan.steps.append(
            TransformStep(
                "skew",
                f"wavefront over the {band_size}D band "
                "(tile + skew tile loops, parallel wavefronts)",
            )
        )
        plan.steps.append(
            TransformStep("parallel", "omp parallel for over wavefronts")
        )

    # SIMD: the (post-interchange) innermost dim must be parallel
    inner_dim = plan.permutation[-1] if plan.permutation is not None else d - 1
    inner_parallel = (
        chain[inner_dim].parallel if inner_dim < len(chain) else False
    )
    stride_ok = (
        stride_scores[inner_dim] >= 0.5
        if stride_scores is not None and inner_dim < len(stride_scores)
        else True
    )
    if inner_parallel and stride_ok:
        plan.simd = True
        plan.steps.append(TransformStep("simd", f"vectorize dim {inner_dim}"))

    return plan


def plan_all(
    forest: NestForest,
    stride_scores_of=None,
) -> List[NestPlan]:
    """Plans for every innermost nest.

    ``stride_scores_of(leaf) -> Sequence[float]`` supplies locality
    scores (see :mod:`repro.feedback.stride`); ``None`` disables the
    interchange/SIMD stride reasoning.
    """
    plans = []
    for node in forest.walk():
        if node.is_innermost():
            scores = stride_scores_of(node) if stride_scores_of else None
            plans.append(plan_nest(forest, node, scores))
    return plans
