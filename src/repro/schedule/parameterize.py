"""Iteration-domain parameterization (paper section 6).

Large integer constants in iteration domains cause combinatorial
blow-up in the ILP solvers of polyhedral schedulers.  The paper's
mitigation: replace each large constant by a *parameter* (an unknown
but fixed integer), reusing one parameter for a whole window of nearby
values -- "if x in [1024-s, 1024+s] ... replace x by n + (x - 1024)"
with s typically 20.

We reproduce this as a rewrite of folded statement domains: constants
with absolute value above a threshold become symbolic parameters; a
parameter is reused for every constant within ``slack`` of its anchor
value.  The result reports the rewritten constraints plus parameter
bookkeeping (how many distinct parameters the region needs -- the
scalability statistic that motivated the feature).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..folding.folder import FoldedDDG, FoldedStatement
from ..poly.polyhedron import Polyhedron

#: constants at or above this magnitude get parameterized by default
DEFAULT_THRESHOLD = 64

#: window of values sharing one parameter (the paper sets s = 20)
DEFAULT_SLACK = 20


@dataclass
class Parameter:
    """One introduced parameter with its anchor value."""

    name: str
    value: int       # the anchor (the first constant that created it)

    def covers(self, x: int, slack: int) -> bool:
        return abs(x - self.value) <= slack


@dataclass
class ParameterizedConstraint:
    """One constraint row with the constant split into parameter uses."""

    coeffs: Tuple[int, ...]
    const: int                      # residual constant
    is_eq: bool
    #: (parameter, multiplier) uses folded out of the constant
    params: Tuple[Tuple[Parameter, int], ...] = ()

    def pretty(self, names: Sequence[str]) -> str:
        terms = []
        for c, n in zip(self.coeffs, names):
            if c == 0:
                continue
            terms.append(n if c == 1 else (f"-{n}" if c == -1 else f"{c}{n}"))
        for p, m in self.params:
            terms.append(p.name if m == 1 else f"{m}{p.name}")
        if self.const or not terms:
            terms.append(str(self.const))
        op = "=" if self.is_eq else ">="
        return " + ".join(terms).replace("+ -", "- ") + f" {op} 0"


@dataclass
class ParameterizedDomain:
    stmt: FoldedStatement
    constraints: List[ParameterizedConstraint]


@dataclass
class ParameterizationResult:
    domains: List[ParameterizedDomain]
    parameters: List[Parameter]
    constants_seen: int = 0
    constants_parameterized: int = 0

    @property
    def parameter_count(self) -> int:
        return len(self.parameters)


class Parameterizer:
    """Rewrites large constants into (reusable) parameters."""

    def __init__(
        self,
        threshold: int = DEFAULT_THRESHOLD,
        slack: int = DEFAULT_SLACK,
    ) -> None:
        self.threshold = threshold
        self.slack = slack
        self.parameters: List[Parameter] = []
        self.constants_seen = 0
        self.constants_parameterized = 0

    def _param_for(self, value: int) -> Tuple[Parameter, int]:
        """The parameter covering ``value`` (reusing within the slack
        window), plus the residual offset: value = param.value + off."""
        for p in self.parameters:
            if p.covers(value, self.slack):
                return p, value - p.value
        p = Parameter(name=f"n{len(self.parameters)}", value=value)
        self.parameters.append(p)
        return p, 0

    def seed_anchors(self, values) -> None:
        """Pre-assign parameters for ``values`` in sorted order.

        The streaming :meth:`_param_for` anchors each parameter on the
        *first* constant that created it, so two runs seeing the same
        constant set in different orders get differently-named (and
        differently-anchored) parameters.  Seeding the distinct values
        in sorted order first makes the anchor assignment a pure
        function of the value *set*: every later rewrite only reuses
        the seeded windows, so parameter names and anchors are stable
        across stream orderings (required when merged sweep models
        compare parameterized constraints across runs)."""
        for v in sorted(set(values)):
            self._param_for(v)

    def rewrite_row(
        self, row: Sequence[int], is_eq: bool
    ) -> ParameterizedConstraint:
        coeffs, k = tuple(row[:-1]), int(row[-1])
        self.constants_seen += 1
        if abs(k) < self.threshold:
            return ParameterizedConstraint(coeffs, k, is_eq)
        self.constants_parameterized += 1
        sign = 1 if k > 0 else -1
        p, off = self._param_for(abs(k))
        return ParameterizedConstraint(
            coeffs, sign * off, is_eq, params=((p, sign),)
        )

    def rewrite_polyhedron(self, poly: Polyhedron) -> List[ParameterizedConstraint]:
        out = [self.rewrite_row(e, True) for e in poly.eqs]
        out += [self.rewrite_row(i, False) for i in poly.ineqs]
        return out


def parameterize_domains(
    ddg: FoldedDDG,
    threshold: int = DEFAULT_THRESHOLD,
    slack: int = DEFAULT_SLACK,
) -> ParameterizationResult:
    """Parameterize every statement domain of a folded DDG.

    Anchor-stable: all parameterizable constants are collected first
    and seeded in sorted order (:meth:`Parameterizer.seed_anchors`), so
    two DDGs carrying the same constant set in different statement
    orders produce identically-named, identically-anchored parameters.
    """
    pz = Parameterizer(threshold=threshold, slack=slack)
    large: List[int] = []
    for fs in ddg.statements.values():
        for piece in fs.domain.pieces:
            for row in list(piece.eqs) + list(piece.ineqs):
                k = abs(int(row[-1]))
                if k >= threshold:
                    large.append(k)
    pz.seed_anchors(large)
    domains = []
    for fs in ddg.statements.values():
        cons: List[ParameterizedConstraint] = []
        for piece in fs.domain.pieces:
            cons.extend(pz.rewrite_polyhedron(piece))
        domains.append(ParameterizedDomain(stmt=fs, constraints=cons))
    return ParameterizationResult(
        domains=domains,
        parameters=pz.parameters,
        constants_seen=pz.constants_seen,
        constants_parameterized=pz.constants_parameterized,
    )
