"""Parallelism, permutability, skewing, and tiling analyses.

These run on the :class:`~repro.schedule.nest.NestForest` and annotate
its nodes, providing the raw material for the feedback metrics of the
paper's Tables 3-5:

* **parallel loops** -- a loop is parallel iff no dependence may be
  carried exactly at its depth (outer distances zero, its own nonzero);
* **permutable bands** -- a band of consecutive dimensions is fully
  permutable iff every dependence not carried outside the band has
  non-negative distance in *all* band dimensions (the classic tiling
  legality condition; tiled code is then also wavefront-parallel, as
  the paper recalls for GemsFDTD);
* **skewing** -- when a negative inner distance blocks a band, we
  search small skews ``inner' = inner + f * outer`` that make every
  in-band distance non-negative (exact rational bounds, not heuristics);
* **tilable depth** -- the maximal permutable band ending at each
  innermost loop, reported as TileD in Table 5.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from .deps import DepVector
from .nest import NestForest, NestNode

#: maximal skew factor tried (paper-scale skews are 1)
MAX_SKEW = 3


def loop_parallel(
    forest: NestForest, node: NestNode, ignore_reductions: bool = False
) -> bool:
    """No dependence carried exactly at this loop's dimension.

    With ``ignore_reductions`` the associative register recurrences are
    discounted (an OpenMP reduction clause / array expansion removes
    them) -- this is the paper's %||ops notion, while the strict form
    is what Table 3 reports per dimension.
    """
    level = node.depth - 1
    for dv in forest.deps_under(node.path):
        if ignore_reductions and dv.is_reduction:
            continue
        if dv.may_be_carried_at(level):
            return False
    return True


def mark_parallel(forest: NestForest) -> None:
    for node in forest.walk():
        node.parallel = loop_parallel(forest, node)
        node.parallel_reduction = node.parallel or loop_parallel(
            forest, node, ignore_reductions=True
        )


def _nonneg_in_dims(
    dv: DepVector, dims: Sequence[int], skews: Dict[int, int]
) -> bool:
    """All distances of ``dv`` non-negative in the given dimensions,
    after applying ``skews`` (dim -> skew factor w.r.t. dim-1)."""
    for j in dims:
        if j >= dv.common:
            continue
        f = skews.get(j, 0)
        if f:
            lo_j = dv.bounds[j][0]
            lo_o = dv.bounds[j - 1][0]
            if lo_j is None or lo_o is None:
                return False
            if lo_j + f * lo_o < 0:
                return False
        else:
            if dv.may_be_negative(j):
                return False
    return True


def _dep_outside_band(dv: DepVector, band_start: int) -> bool:
    """Is the dependence necessarily carried by a loop outer to the
    band (some strictly positive distance before band_start)?"""
    return any(dv.signs[j] == "+" for j in range(min(band_start, dv.common)))


def permutable_band(
    forest: NestForest, leaf: NestNode, band_start: int
) -> Tuple[bool, Dict[int, int]]:
    """Is [band_start .. leaf.depth-1] a legal permutable band for the
    statements under ``leaf``'s path prefix?  Returns (legal, skews).

    Tries no skew first, then small skews on dimensions whose negative
    distances block legality.
    """
    dims = list(range(band_start, leaf.depth))
    deps = [
        dv
        for dv in forest.deps_under(leaf.path[: band_start + 1])
        if not _dep_outside_band(dv, band_start)
    ]
    if all(_nonneg_in_dims(dv, dims, {}) for dv in deps):
        return True, {}
    # skew search: per offending inner dimension, try factors 1..MAX_SKEW
    skews: Dict[int, int] = {}
    for j in dims:
        if j == 0:
            continue
        bad = [dv for dv in deps if j < dv.common and dv.may_be_negative(j)]
        if not bad:
            continue
        found = None
        for f in range(1, MAX_SKEW + 1):
            trial = dict(skews)
            trial[j] = f
            if all(_nonneg_in_dims(dv, dims[: dims.index(j) + 1], trial) for dv in deps):
                found = f
                break
        if found is None:
            return False, {}
        skews[j] = found
    if all(_nonneg_in_dims(dv, dims, skews) for dv in deps):
        return True, skews
    return False, {}


def _min_band_start(forest: NestForest, leaf: NestNode) -> int:
    """Outermost dimension the leaf's band may include.

    A band dimension must *funnel* through the leaf's chain: if an
    enclosing loop has other children with operations (sibling
    sub-nests, like the two update kernels under GemsFDTD's time
    loop), permuting/tiling that dimension for this leaf alone is not
    a per-nest transformation -- it would require fusing the siblings
    first -- so the band stops below it.
    """
    start = leaf.depth - 1
    for k in range(leaf.depth - 1, 0, -1):
        parent = forest.node_at(leaf.path[:k])
        if parent is None:
            break
        on_chain = leaf.path[:k + 1][-1]
        others = [
            c
            for key, c in parent.children.items()
            if key != on_chain and c.ops_total > 0
        ]
        if others:
            break
        start = k - 1
    return start


def tilable_depth(forest: NestForest, leaf: NestNode) -> Tuple[int, Dict[int, int]]:
    """Size of the maximal permutable band ending at this innermost
    loop, with the skews (if any) that legalize it.

    Following the paper ("we tend to avoid skewing unless it really
    provides improvements"), an unskewed band of >= 2 dimensions is
    preferred over a larger band that needs skewing; skewed bands are
    reported only when they *enable* tiling (unskewed band of size 1).
    """
    min_start = _min_band_start(forest, leaf)
    best_plain = 1
    best_skewed = 1
    skewed_skews: Dict[int, int] = {}
    for start in range(leaf.depth - 1, min_start - 1, -1):
        ok, skews = permutable_band(forest, leaf, start)
        if not ok:
            break
        size = leaf.depth - start
        if not skews:
            best_plain = max(best_plain, size)
        elif size > best_skewed:
            best_skewed = size
            skewed_skews = skews
    if best_plain >= 2 or best_plain >= best_skewed:
        return best_plain, {}
    return best_skewed, skewed_skews


def mark_bands(forest: NestForest) -> None:
    """Annotate every innermost loop's ancestors with band membership."""
    for node in forest.walk():
        if not node.is_innermost():
            continue
        depth, skews = tilable_depth(forest, node)
        start = node.depth - depth
        cur: Optional[NestNode] = node
        while cur is not None and cur.depth > start:
            if cur.band_start is None or cur.band_start > start:
                cur.band_start = start
            sk = skews.get(cur.depth - 1)
            if sk:
                cur.skew_factor = sk
            cur = forest.node_at(cur.path[:-1])


def analyze_forest(forest: NestForest) -> NestForest:
    """Run all analyses; returns the (annotated) forest."""
    mark_parallel(forest)
    mark_bands(forest)
    return forest


def permutation_legal(
    forest: NestForest, leaf: NestNode, perm: Sequence[int]
) -> bool:
    """Is the full permutation ``perm`` of the leaf's dimensions legal?

    Classic criterion: after permuting every dependence's distance
    vector, it must remain lexicographically non-negative.  Evaluated
    conservatively on sign patterns (a '*' that could break order
    rejects the permutation).
    """
    deps = forest.deps_under(leaf.path[:1])
    deps = [dv for dv in deps if dv.dst_path[: leaf.depth] == leaf.path]
    d = leaf.depth
    for dv in deps:
        signs = [dv.signs[p] if p < dv.common else "0" for p in perm]
        # lexicographic non-negativity of the permuted sign vector
        ok = False
        definitely_bad = False
        for s in signs:
            if s == "+":
                ok = True
                break
            if s == "0":
                continue
            if s in ("+0",):
                # may be zero here and decided later: continue, but a
                # later '-' can still break it; treat as undecided-safe
                continue
            # '-', '-0', '*' can make the leading nonzero negative
            definitely_bad = True
            break
        if definitely_bad:
            return False
        # all-zero (loop independent) is fine; ok==True is fine
    return True
