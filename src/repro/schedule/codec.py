"""Codec for dependence vectors (the cached feedback-stage input).

Computing :func:`~repro.schedule.deps.analyze_deps` -- the sign
pattern and rational bounds of every dependence distance, by
polyhedral bounding per piece per dimension -- is the one feedback
stage whose cost is comparable to folding itself.  Its result is a
pure function of the folded DDG, so the store persists it alongside
the DDG; the cheap passes downstream (forest analysis, planning) are
always re-run.

A serialized vector references its dependence by
:class:`~repro.ddg.graph.DepKey`; the decoder resolves it against the
already-decoded :class:`~repro.folding.folder.FoldedDDG`, so a vector
and the DDG share one ``FoldedDep`` object exactly as they do on the
cold path.
"""

from __future__ import annotations

from typing import List

from ..ddg.graph import DepKey
from ..folding.folder import FoldedDDG
from ..poly.codec import decode_fraction, encode_fraction
from .deps import DepVector


def encode_dep_vectors(vectors: List[DepVector]) -> list:
    out = []
    for dv in vectors:
        out.append({
            "src": list(dv.dep.key.src),
            "dst": list(dv.dep.key.dst),
            "kind": dv.dep.key.kind,
            "src_path": [list(e) for e in dv.src_path],
            "dst_path": [list(e) for e in dv.dst_path],
            "common": dv.common,
            "signs": list(dv.signs),
            "bounds": [
                [encode_fraction(lo), encode_fraction(hi)]
                for lo, hi in dv.bounds
            ],
            "is_reduction": dv.is_reduction,
        })
    return out


def decode_dep_vectors(data: list, ddg: FoldedDDG) -> List[DepVector]:
    out: List[DepVector] = []
    for item in data:
        key = DepKey(
            src=tuple(item["src"]),
            dst=tuple(item["dst"]),
            kind=item["kind"],
        )
        dep = ddg.deps.get(key)
        if dep is None:
            raise ValueError(f"dependence vector for unknown stream {key}")
        out.append(
            DepVector(
                dep=dep,
                src_path=tuple(tuple(e) for e in item["src_path"]),
                dst_path=tuple(tuple(e) for e in item["dst_path"]),
                common=int(item["common"]),
                signs=tuple(item["signs"]),
                bounds=tuple(
                    (decode_fraction(lo), decode_fraction(hi))
                    for lo, hi in item["bounds"]
                ),
                is_reduction=bool(item["is_reduction"]),
            )
        )
    return out
