"""Polyhedral verification of suggested transformations.

The paper's feedback is advisory -- a human applies the transformation
-- and its conclusion points at polyhedral equivalence checking
(PolyCheck & friends) as the road to validating the rewritten code.
This module provides the analysis-side half of that story: given a
nest's suggested transformation (permutation and/or skew), *prove*
from the folded dependence relations that the new schedule preserves
every dependence, by exact emptiness checks on the violation sets.

For a dependence with consumer domain ``D`` and producer function
``src(dst)``, the transformed distance along dimension ``j`` is::

    delta'_j(dst) = T_j(dst) - T_j(src(dst))

with ``T`` the (affine) new schedule.  The transformation is legal iff
no point of ``D`` has a lexicographically negative transformed
distance -- i.e. for every prefix ``j`` the set::

    { dst in D : delta'_0 = ... = delta'_{j-1} = 0,  delta'_j <= -1 }

is empty.  Each emptiness question is decided exactly by the
Fourier-Motzkin core of :mod:`repro.poly`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..poly.affine import AffineExpr
from ..poly.polyhedron import Polyhedron
from .deps import DepVector
from .nest import NestForest, NestNode
from .transform import NestPlan


@dataclass
class Violation:
    """One dependence broken by the transformation."""

    dep: DepVector
    dimension: int
    witness: Optional[Tuple[int, ...]]  # a consumer point exhibiting it

    def __str__(self) -> str:
        return (
            f"dependence {self.dep.dep.key.kind} "
            f"{self.dep.dep.key.src}->{self.dep.dep.key.dst} violated at "
            f"dim {self.dimension}"
            + (f" (witness {self.witness})" if self.witness else "")
        )


@dataclass
class VerificationResult:
    legal: bool
    checked: int
    skipped: int                       # non-affine deps (conservative)
    violations: List[Violation] = field(default_factory=list)


def schedule_exprs(
    depth: int,
    permutation: Optional[Sequence[int]] = None,
    skews: Optional[Dict[int, int]] = None,
) -> List[AffineExpr]:
    """The affine schedule ``T`` for a nest of ``depth`` dimensions.

    ``skews[j] = f`` applies ``x_j += f * x_{j-1}`` *before* the
    permutation (matching how the band analysis reports skews).
    """
    skews = skews or {}
    base: List[AffineExpr] = []
    for j in range(depth):
        e = AffineExpr.var(j, depth)
        f = skews.get(j, 0)
        if f:
            e = e + AffineExpr.var(j - 1, depth).scale(f)
        base.append(e)
    if permutation is not None:
        base = [base[p] for p in permutation]
    return base


def _transformed_deltas(
    dv: DepVector,
    sched: Sequence[AffineExpr],
) -> Optional[List[List[Tuple[Polyhedron, AffineExpr]]]]:
    """Per schedule dimension, (domain piece, delta expression) pairs.

    Each schedule expression ``T`` ranges over the ``c`` common
    dimensions; the delta over the consumer's full coordinate space is
    ``T(dst[:c]) - T(src(dst)[:c])``.
    """
    rel = dv.dep.relation
    if rel is None:
        return None
    d = dv.dep.dst_depth
    out: List[List[Tuple[Polyhedron, AffineExpr]]] = []
    for T in sched:
        c = T.dim
        if c > dv.common or c > dv.dep.src_depth:
            return None  # schedule uses a dimension the pair doesn't share
        per_piece = []
        # lift T's input arity from c to d (extra dst dims unused)
        T_dst = AffineExpr(
            tuple(T.coeffs) + (0,) * (d - c), T.const, T.den
        )
        for piece, fn in rel.pieces:
            # producer side: substitute src_j = fn_j(dst), j < c
            T_src = T.substitute([fn[j] for j in range(c)]) if c else \
                AffineExpr.constant(T.const, d)
            per_piece.append((piece, T_dst - T_src))
        out.append(per_piece)
    return out


def verify_dep(
    dv: DepVector, sched: Sequence[AffineExpr]
) -> Optional[Violation]:
    """None when the dependence is preserved; a Violation otherwise."""
    deltas = _transformed_deltas(dv, sched)
    if deltas is None:
        return Violation(dep=dv, dimension=-1, witness=None)
    ndims = len(sched)
    for piece_idx in range(len(dv.dep.relation.pieces)):
        piece = dv.dep.relation.pieces[piece_idx][0]
        if piece.is_empty():
            continue
        for j in range(ndims):
            # violation set: outer transformed deltas zero, this one < 0
            p = piece
            ok = True
            for k in range(j):
                e = deltas[k][piece_idx][1]
                if not e.is_integral():
                    e = AffineExpr(e.coeffs, e.const, 1)
                p = p.add_constraint(e.as_row(), is_eq=True)
            e = deltas[j][piece_idx][1]
            if not e.is_integral():
                e = AffineExpr(e.coeffs, e.const, 1)
            neg = tuple(-c for c in e.coeffs) + (-e.const - 1,)
            p = p.add_constraint(neg)
            if not p.is_empty():
                return Violation(
                    dep=dv, dimension=j, witness=p.sample()
                )
    return None


def verify_plan(
    forest: NestForest, plan: NestPlan
) -> VerificationResult:
    """Verify a nest plan's reordering against every dependence shared
    by statements under the nest."""
    leaf = plan.leaf
    skews = {}
    node: Optional[NestNode] = leaf
    while node is not None and len(node.path) > 0:
        if node.skew_factor:
            skews[node.depth - 1] = node.skew_factor
        node = forest.node_at(node.path[:-1])
    sched_full = schedule_exprs(leaf.depth, plan.permutation, skews)

    checked = 0
    skipped = 0
    violations: List[Violation] = []
    for dv in forest.deps_under(leaf.path[:1]):
        if dv.dst_path[: leaf.depth] != leaf.path and (
            len(dv.dst_path) < leaf.depth
            or dv.dst_path[: leaf.depth] != leaf.path
        ):
            continue
        if dv.is_reduction:
            continue  # removed by privatization/expansion
        if dv.dep.relation is None:
            skipped += 1
            continue
        # restrict the schedule to the shared dimensions
        c = min(dv.common, leaf.depth)
        if c == 0:
            continue
        sched = [
            AffineExpr(e.coeffs[:c], e.const, e.den)
            for e in schedule_exprs(
                c,
                tuple(p for p in (plan.permutation or range(leaf.depth)) if p < c)
                if plan.permutation
                else None,
                {k: v for k, v in skews.items() if k < c},
            )
        ]
        checked += 1
        v = verify_dep(dv, sched)
        if v is not None:
            violations.append(v)
    return VerificationResult(
        legal=not violations,
        checked=checked,
        skipped=skipped,
        violations=violations,
    )
