"""Loop-nest trees over the folded DDG.

Statements are grouped by *loop path* (the tuple of loop ids from
their dynamic contexts -- which freely crosses function boundaries,
this being the whole point of the dynamic IIV).  The resulting forest
is the structure on which the feedback analyses (parallelism,
permutability, tiling, fusion) run and on which region metrics are
aggregated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..folding.folder import FoldedDDG, FoldedStatement
from .deps import DepVector, analyze_deps, loop_path


@dataclass
class NestNode:
    """One loop of the interprocedural nest forest."""

    path: Tuple[Tuple[str, ...], ...]   # context entries, outermost first
    children: Dict[str, "NestNode"] = field(default_factory=dict)
    stmts: List[FoldedStatement] = field(default_factory=list)   # exactly here
    ops_here: int = 0
    ops_total: int = 0              # including sub-loops

    # analysis results (filled by repro.schedule.analysis)
    parallel: Optional[bool] = None
    #: parallel once reduction recurrences are privatized/expanded
    parallel_reduction: Optional[bool] = None
    band_start: Optional[int] = None   # outermost dim of the permutable
                                       # band this loop belongs to
    skew_factor: Optional[int] = None  # skew (w.r.t. parent) that made
                                       # the band legal, if any

    @property
    def loop_id(self) -> str:
        """The loop id of this node (last component of its identity)."""
        return self.path[-1][-1]

    @property
    def depth(self) -> int:
        return len(self.path)

    def walk(self) -> Iterator["NestNode"]:
        yield self
        for key in sorted(self.children):
            yield from self.children[key].walk()

    def is_innermost(self) -> bool:
        return not self.children


@dataclass
class NestForest:
    """All loops of the program, with the dependence vectors."""

    roots: Dict[str, NestNode] = field(default_factory=dict)
    #: statements at depth 0 (outside any loop)
    toplevel_stmts: List[FoldedStatement] = field(default_factory=list)
    deps: List[DepVector] = field(default_factory=list)

    def walk(self) -> Iterator[NestNode]:
        for key in sorted(self.roots):
            yield from self.roots[key].walk()

    def node_at(self, path: Tuple[str, ...]) -> Optional[NestNode]:
        if not path:
            return None
        node = self.roots.get(path[0])
        for p in path[1:]:
            if node is None:
                return None
            node = node.children.get(p)
        return node

    def deps_under(self, path: Tuple[str, ...]) -> List[DepVector]:
        """Dependences whose endpoints both lie (at least) under the
        loops named by ``path`` -- i.e. sharing those loops."""
        n = len(path)
        return [
            dv
            for dv in self.deps
            if dv.common >= n
            and dv.dst_path[:n] == path
            and dv.src_path[:n] == path
        ]

    def total_ops(self) -> int:
        return sum(n.ops_total for n in (self.roots[k] for k in self.roots)) + sum(
            s.count for s in self.toplevel_stmts
        )


def build_nest_forest(
    ddg: FoldedDDG, deps: Optional[List[DepVector]] = None
) -> NestForest:
    """Group statements into the interprocedural loop-nest forest and
    attach dependence vectors.

    ``deps`` short-circuits :func:`~repro.schedule.deps.analyze_deps`
    (the one feedback pass whose polyhedral bounding is expensive) with
    a precomputed vector list -- the artifact store persists it with
    the folded DDG, since it is a pure function of the DDG.
    """
    forest = NestForest()
    for fs in ddg.statements.values():
        path = loop_path(fs.stmt)
        if not path:
            forest.toplevel_stmts.append(fs)
            continue
        node = forest.roots.get(path[0])
        if node is None:
            node = NestNode(path=(path[0],))
            forest.roots[path[0]] = node
        for p in path[1:]:
            child = node.children.get(p)
            if child is None:
                child = NestNode(path=node.path + (p,))
                node.children[p] = child
            node = child
        node.stmts.append(fs)
        node.ops_here += fs.count

    def tally(node: NestNode) -> int:
        node.ops_total = node.ops_here + sum(
            tally(c) for c in node.children.values()
        )
        return node.ops_total

    for root in forest.roots.values():
        tally(root)
    forest.deps = analyze_deps(ddg) if deps is None else deps
    return forest
