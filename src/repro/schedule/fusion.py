"""Loop fusion/distribution structure (paper Table 5, columns C /
Comp. / fusion).

The paper counts, per region, the number of *components* -- outermost
loops executing more than 5% of the region's operations -- before (C)
and after (Comp.) the proposed transformation, under one of two fusion
heuristics: ``maxfuse`` (M, merge whenever legal) and ``smartfuse``
(S, merge only loops that actually share data, a balanced
fusion/distribution strategy).

Fusion legality between two sibling nests is checked on the folded
dependence relations under identity alignment: a dependence from nest
A to nest B fuses iff its distance on the (aligned) outermost
dimension is non-negative -- the consumer instance never precedes its
producer within the fused loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..poly.affine import AffineExpr
from .deps import DepVector
from .nest import NestForest, NestNode

#: a loop counts as a component above this fraction of region ops
COMPONENT_THRESHOLD = 0.05


@dataclass
class FusionResult:
    components_before: int
    components_after: int
    heuristic: str                      # 'M' or 'S'
    groups: List[List[str]]             # fused groups of root loop ids


def _cross_deps(
    forest: NestForest, a: NestNode, b: NestNode
) -> List[DepVector]:
    """Dependences between the two sibling nests (either direction).

    The nests may sit at any depth (siblings under a shared driver
    loop); membership is by full path prefix.
    """
    ka, kb = len(a.path), len(b.path)
    out = []
    for dv in forest.deps:
        sp, dp = dv.src_path, dv.dst_path
        in_a_src = sp[:ka] == a.path
        in_b_src = sp[:kb] == b.path
        in_a_dst = dp[:ka] == a.path
        in_b_dst = dp[:kb] == b.path
        if (in_a_src and in_b_dst and not in_b_src) or (
            in_b_src and in_a_dst and not in_a_src
        ):
            out.append(dv)
    return out


def _fusion_legal(
    forest: NestForest, first: NestNode, second: NestNode
) -> bool:
    """Can ``first`` and ``second`` (in this textual order) fuse?

    Every dependence flowing from ``first`` to ``second`` must have a
    non-negative outer distance under identity alignment; dependences
    from ``second`` back to ``first`` (possible through memory reuse)
    must, after fusion, still point backward in time -- which identity
    alignment cannot guarantee, so they block fusion.
    """
    axis = len(first.path) - 1  # the dimension being fused
    for dv in _cross_deps(forest, first, second):
        ka = len(first.path)
        forward = dv.src_path[:ka] == first.path
        if not forward:
            return False
        rel = dv.dep.relation
        if rel is None:
            return False
        d = dv.dep.dst_depth
        if d <= axis or dv.dep.src_depth <= axis:
            continue  # scalar endpoints: no alignment constraint
        for piece, fn in rel.pieces:
            if piece.is_empty():
                continue
            e = AffineExpr.var(axis, d) - fn[axis]
            if not e.is_integral():
                e = AffineExpr(e.coeffs, e.const, 1)
            lo, _ = piece.bounds(e.as_row())
            if lo is None or lo < 0:
                return False
    return True


def _shares_data(forest: NestForest, a: NestNode, b: NestNode) -> bool:
    return bool(_cross_deps(forest, a, b))


def fuse_components(
    forest: NestForest,
    roots: Optional[Sequence[NestNode]] = None,
    heuristic: str = "S",
) -> FusionResult:
    """Compute the component structure before/after fusion."""
    if roots is None:
        roots = [forest.roots[k] for k in forest.roots]
    roots = list(roots)
    total = sum(r.ops_total for r in roots) or 1

    def is_component(ops: int) -> bool:
        return ops > COMPONENT_THRESHOLD * total

    before = sum(1 for r in roots if is_component(r.ops_total))

    # greedy left-to-right fusion of consecutive nests
    groups: List[List[NestNode]] = []
    for r in roots:
        if groups:
            last = groups[-1]
            legal = all(_fusion_legal(forest, x, r) for x in last)
            if heuristic == "M":
                want = legal
            else:  # smartfuse: only fuse when data is shared
                want = legal and any(_shares_data(forest, x, r) for x in last)
            if want:
                last.append(r)
                continue
        groups.append([r])

    after = sum(
        1 for g in groups if is_component(sum(n.ops_total for n in g))
    )
    return FusionResult(
        components_before=before,
        components_after=after,
        heuristic=heuristic,
        groups=[[n.loop_id for n in g] for g in groups],
    )
