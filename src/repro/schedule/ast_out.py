"""Simplified post-transformation AST rendering.

The paper's feedback includes "a decorated simplified AST describing
the program structure after transformation" -- loop structure with
per-loop properties (parallel, tilable, skewed) and the statements
each loop surrounds, letting the user gauge the effort of writing the
transformed code by hand.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .nest import NestForest, NestNode
from .transform import NestPlan


def render_ast(
    forest: NestForest,
    plans: Optional[List[NestPlan]] = None,
    show_stmts: bool = True,
) -> str:
    """Text rendering of the (annotated, possibly transformed) nest."""
    plan_by_leaf: Dict[tuple, NestPlan] = {}
    for p in plans or []:
        plan_by_leaf[p.leaf.path] = p

    lines: List[str] = []

    def props(node: NestNode) -> str:
        tags = []
        if node.parallel:
            tags.append("parallel")
        if node.band_start is not None and node.depth - node.band_start >= 2:
            tags.append("tilable")
        if node.skew_factor:
            tags.append(f"skew+{node.skew_factor}")
        plan = plan_by_leaf.get(node.path)
        if plan is not None:
            if plan.interchange:
                tags.append(f"interchange{plan.permutation}")
            if plan.simd:
                tags.append("simd")
        return (" [" + ", ".join(tags) + "]") if tags else ""

    def rec(node: NestNode, indent: int) -> None:
        pad = "  " * indent
        lines.append(
            f"{pad}for {node.loop_id}  // ops={node.ops_total}{props(node)}"
        )
        if show_stmts and node.stmts:
            mems = sum(1 for s in node.stmts if s.stmt.instr.is_mem)
            lines.append(
                f"{pad}  S[{len(node.stmts)} stmts, {mems} mem refs]"
            )
        for key in sorted(node.children):
            rec(node.children[key], indent + 1)

    for key in sorted(forest.roots):
        rec(forest.roots[key], 0)
    return "\n".join(lines)
