"""Dependence vectors from the folded DDG.

Bridges the compact polyhedral DDG to classic dependence-based loop
analysis: for every transformation-relevant dependence we determine
the *common loop nest* of its endpoints (via the dynamic-IIV contexts)
and the exact sign pattern / rational bounds of the dependence
distance along each common dimension.

Sign patterns per dimension:

=======  ===============================================
``'0'``  distance is exactly 0 (loop-independent here)
``'+'``  strictly positive (carried forward)
``'-'``  strictly negative
``'+0'`` non-negative, zero attained
``'-0'`` non-positive, zero attained
``'*'``  unknown / both signs (incl. non-affine deps)
=======  ===============================================
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from ..ddg.graph import Statement
from ..folding.folder import FoldedDDG, FoldedDep
from ..poly.affine import AffineExpr
from ..poly.pmap import _sign_pattern

Bound = Tuple[Optional[Fraction], Optional[Fraction]]


def loop_path(stmt: Statement) -> Tuple[Tuple[str, ...], ...]:
    """The loop identities enclosing a statement, outermost first.

    Each element is the statement's *full* context entry for that
    dimension -- calling-context elements plus the loop id as the last
    component (set there by the ``E``/``Ec`` loop events).  Using the
    full entry keeps two invocations of the same static loop from
    different call sites distinct (the paper's backprop feedback treats
    the two ``bpnn_layerforward`` calls separately), while recursion
    still folds (recursive components keep contexts bounded).
    """
    ctx = stmt.context
    return tuple(ctx[j] for j in range(len(ctx) - 1))


def path_loop_id(elem: Tuple[str, ...]) -> str:
    """The loop id of one path element (its last component)."""
    return elem[-1]


def common_depth(src: Statement, dst: Statement) -> int:
    """Number of loop dimensions shared by two statements.

    Contexts matching on a prefix of length ``k`` share the loops of
    the first ``k`` dimensions (the k-th context entry pins the k-th
    loop id as its last element).
    """
    k = 0
    for a, b in zip(src.context, dst.context):
        if a != b:
            break
        k += 1
    return min(k, src.depth, dst.depth)


#: opcodes whose self-recurrences are reassociable reductions
ASSOCIATIVE_OPS = frozenset(
    "add mul fadd fmul fmin fmax and or xor".split()
)


@dataclass
class DepVector:
    """One dependence with its distance signature on the common nest."""

    dep: FoldedDep
    src_path: Tuple[str, ...]
    dst_path: Tuple[str, ...]
    common: int
    signs: Tuple[str, ...]       # per common dimension
    bounds: Tuple[Bound, ...]    # rational (lo, hi) per common dimension
    #: a register self-recurrence through an associative operation: an
    #: OpenMP reduction clause (or the paper's array expansion of
    #: ``sum``) removes it, so it does not block parallelization --
    #: though the loop is not plainly parallel either (Table 3 reports
    #: L_layer's k loop as non-parallel)
    is_reduction: bool = False

    @property
    def kind(self) -> str:
        return self.dep.key.kind

    def may_be_zero(self, dim: int) -> bool:
        return self.signs[dim] in ("0", "+0", "-0", "*")

    def may_be_nonzero(self, dim: int) -> bool:
        return self.signs[dim] != "0"

    def may_be_negative(self, dim: int) -> bool:
        return self.signs[dim] in ("-", "-0", "*")

    def may_be_carried_at(self, level: int) -> bool:
        """Can this dependence be carried exactly at ``level`` (0-based
        dimension index): all outer distances zero, this one nonzero?"""
        if level >= self.common:
            return False
        return all(self.may_be_zero(j) for j in range(level)) and \
            self.may_be_nonzero(level)

    def carried_somewhere_within(self, first: int) -> bool:
        """May the dependence be carried at any level >= first?"""
        return any(
            self.may_be_carried_at(l) for l in range(first, self.common)
        )

    def is_loop_independent(self) -> bool:
        return all(s == "0" for s in self.signs)


def _delta_info(dep: FoldedDep, common: int) -> Tuple[Tuple[str, ...], Tuple[Bound, ...]]:
    """Sign pattern and bounds of (dst_j - src_j) for each common dim."""
    if common == 0:
        return (), ()
    if dep.relation is None:
        # the full relation did not fold, but individual producer
        # components may have (paper: one affine function per label
        # component) -- use them for exact per-dimension signs
        if dep.partial_src is not None:
            return _partial_delta_info(dep, common)
        return ("*",) * common, ((None, None),) * common
    signs: List[str] = []
    bounds: List[Bound] = []
    d = dep.dst_depth
    for j in range(common):
        lo_all: Optional[Fraction] = None
        hi_all: Optional[Fraction] = None
        lo_unbounded = False
        hi_unbounded = False
        seen = False
        for piece, fn in dep.relation.pieces:
            if piece.is_empty():
                continue
            e = AffineExpr.var(j, d) - fn[j]
            if not e.is_integral():
                # scaling by the (positive) denominator preserves signs
                e = AffineExpr(e.coeffs, e.const, 1)
            lo, hi = piece.bounds(e.as_row())
            seen = True
            if lo is None:
                lo_unbounded = True
            elif lo_all is None or lo < lo_all:
                lo_all = lo
            if hi is None:
                hi_unbounded = True
            elif hi_all is None or hi > hi_all:
                hi_all = hi
        if not seen:
            signs.append("0")
            bounds.append((Fraction(0), Fraction(0)))
            continue
        if lo_unbounded:
            lo_all = None
        if hi_unbounded:
            hi_all = None
        signs.append(_sign_pattern(lo_all, hi_all))
        bounds.append((lo_all, hi_all))
    return tuple(signs), tuple(bounds)


def _partial_delta_info(
    dep: FoldedDep, common: int
) -> Tuple[Tuple[str, ...], Tuple[Bound, ...]]:
    d = dep.dst_depth
    signs: List[str] = []
    bounds: List[Bound] = []
    for j in range(common):
        expr = dep.partial_src[j] if j < len(dep.partial_src) else None
        if expr is None:
            signs.append("*")
            bounds.append((None, None))
            continue
        e = AffineExpr.var(j, d) - expr
        if not e.is_integral():
            e = AffineExpr(e.coeffs, e.const, 1)
        lo_all: Optional[Fraction] = None
        hi_all: Optional[Fraction] = None
        unb_lo = unb_hi = False
        seen = False
        for piece in dep.domain.pieces:
            if piece.is_empty():
                continue
            lo, hi = piece.bounds(e.as_row())
            seen = True
            if lo is None:
                unb_lo = True
            elif lo_all is None or lo < lo_all:
                lo_all = lo
            if hi is None:
                unb_hi = True
            elif hi_all is None or hi > hi_all:
                hi_all = hi
        if not seen:
            signs.append("*")
            bounds.append((None, None))
            continue
        if unb_lo:
            lo_all = None
        if unb_hi:
            hi_all = None
        signs.append(_sign_pattern(lo_all, hi_all))
        bounds.append((lo_all, hi_all))
    return tuple(signs), tuple(bounds)


def analyze_deps(ddg: FoldedDDG) -> List[DepVector]:
    """Dependence vectors for every transformation-relevant dependence."""
    out: List[DepVector] = []
    for dep in ddg.transform_deps():
        src_stmt = ddg.statements[dep.key.src].stmt
        dst_stmt = ddg.statements[dep.key.dst].stmt
        common = common_depth(src_stmt, dst_stmt)
        signs, bounds = _delta_info(dep, common)
        is_red = (
            dep.key.kind == "reg"
            and dep.key.src == dep.key.dst
            and dst_stmt.instr.opcode in ASSOCIATIVE_OPS
        )
        out.append(
            DepVector(
                dep=dep,
                src_path=loop_path(src_stmt),
                dst_path=loop_path(dst_stmt),
                common=common,
                signs=signs,
                bounds=bounds,
                is_reduction=is_red,
            )
        )
    return out
