"""Polyhedral feedback backend (paper section 6): dependence vectors,
nest analyses (parallelism / permutability / skewing / tiling), fusion
structure, transformation suggestion, and simplified AST output.
"""

from .analysis import (
    analyze_forest,
    loop_parallel,
    mark_bands,
    mark_parallel,
    permutable_band,
    permutation_legal,
    tilable_depth,
)
from .ast_out import render_ast
from .deps import DepVector, analyze_deps, common_depth, loop_path
from .fusion import COMPONENT_THRESHOLD, FusionResult, fuse_components
from .nest import NestForest, NestNode, build_nest_forest
from .transform import NestPlan, TransformStep, best_permutation, plan_all, plan_nest
from .verify import (
    VerificationResult,
    Violation,
    schedule_exprs,
    verify_dep,
    verify_plan,
)

__all__ = [
    "COMPONENT_THRESHOLD",
    "DepVector",
    "FusionResult",
    "NestForest",
    "NestNode",
    "NestPlan",
    "TransformStep",
    "analyze_deps",
    "analyze_forest",
    "best_permutation",
    "build_nest_forest",
    "common_depth",
    "fuse_components",
    "loop_parallel",
    "loop_path",
    "mark_bands",
    "mark_parallel",
    "permutable_band",
    "permutation_legal",
    "plan_all",
    "plan_nest",
    "render_ast",
    "schedule_exprs",
    "tilable_depth",
    "VerificationResult",
    "verify_dep",
    "verify_plan",
    "Violation",
]
