"""POLY-PROF end-to-end pipeline (paper Fig. 1).

The stages, mirroring the figure:

1. **Instrumentation I** -- run the program once, reconstruct dynamic
   CFGs and the call graph; build loop-nesting forests and the
   recursive-component-set (:mod:`repro.cfg`).
2. **Instrumentation II** -- run again with the DDG builder: loop
   events, dynamic IIVs, shadow memory; stream statement/dependence
   points (:mod:`repro.ddg`).
3. **Folding** -- compress the point streams into a compact polyhedral
   DDG (:mod:`repro.folding`).
4. **Polyhedral feedback** -- dependence analysis, transformation
   search, metrics, reports (:mod:`repro.schedule`,
   :mod:`repro.feedback`).

Because a mini-ISA program consumes its :class:`~repro.isa.Memory`,
workloads are described by a :class:`ProgramSpec` whose ``make_state``
returns a *fresh* (args, memory) pair per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .cfg import (
    ControlStructureBuilder,
    DynCallGraph,
    DynCFG,
    LoopForest,
    RecursiveComponentSet,
    build_loop_forest,
    build_recursive_component_set,
)
from .ddg import DDGBuilder, DDGSink, RecordingSink
from .isa import Memory, Program, RunStats, run_program
from .obs import Span, Tracer


@dataclass
class ProgramSpec:
    """A runnable workload: a program plus fresh-state factory.

    The ``region_*`` fields model the paper's hand-selected region of
    interest per benchmark (Table 5): the kernel functions, the label
    printed in the Region column, the fusion heuristic used, and the
    source loop depth (``ld-src``) when it differs from what the
    frontend records (e.g. a compiler unrolled a source loop away).
    """

    name: str
    program: Program
    make_state: Callable[[], Tuple[Sequence, Memory]]

    #: optional human annotations used by reports (not by analysis)
    description: str = ""
    region_funcs: Optional[Tuple[str, ...]] = None
    region_label: str = ""
    fusion_heuristic: str = "S"
    ld_src: Optional[int] = None
    #: emulates the paper's scheduler memory budget (streamcluster
    #: exhausted memory at scheduling); None = unlimited
    scheduler_stmt_budget: Optional[int] = None


@dataclass
class ControlProfile:
    """Result of Instrumentation I."""

    cfgs: Dict[str, DynCFG]
    callgraph: DynCallGraph
    forests: Dict[str, LoopForest]
    rcs: RecursiveComponentSet
    stats: RunStats
    wall_seconds: float = 0.0


@dataclass
class DDGProfile:
    """Result of Instrumentation II."""

    builder: DDGBuilder
    sink: DDGSink
    stats: RunStats
    wall_seconds: float = 0.0


def profile_control(
    spec: ProgramSpec,
    fuel: int = 50_000_000,
    engine: str = "fast",
    extra_observers: Sequence = (),
    tracer: Optional[Tracer] = None,
) -> ControlProfile:
    """Stage 1: reconstruct the interprocedural control structure.

    ``wall_seconds`` is the duration of the ``stage1.execute`` span --
    the instrumented execution alone, exactly what a cached artifact
    preserves from the run that produced it.  Standalone callers that
    pass no tracer get a private one just for that measurement.
    """
    tracer = tracer if tracer is not None else Tracer()
    args, memory = spec.make_state()
    csb = ControlStructureBuilder()
    with tracer.span("stage1.execute", cat="exec", engine=engine) as sp:
        _, stats = run_program(
            spec.program,
            args=args,
            memory=memory,
            observers=[csb, *extra_observers],
            fuel=fuel,
            engine=engine,
        )
    sp.count("dyn_instrs", stats.dyn_instrs)
    with tracer.span("stage1.forests", cat="build"):
        forests = {
            f: build_loop_forest(f, cfg.nodes, cfg.edges, cfg.entry)
            for f, cfg in csb.cfgs.items()
        }
    with tracer.span("stage1.rcs", cat="build"):
        rcs = build_recursive_component_set(
            csb.callgraph.nodes, csb.callgraph.edges, csb.callgraph.root
        )
    return ControlProfile(
        cfgs=csb.cfgs,
        callgraph=csb.callgraph,
        forests=forests,
        rcs=rcs,
        stats=stats,
        wall_seconds=sp.duration,
    )


def profile_ddg(
    spec: ProgramSpec,
    control: ControlProfile,
    sink: Optional[DDGSink] = None,
    track_anti_output: bool = True,
    build_schedule_tree: bool = True,
    fuel: int = 50_000_000,
    engine: str = "fast",
    extra_observers: Sequence = (),
    tracer: Optional[Tracer] = None,
    emit_funcs: Optional[set] = None,
) -> DDGProfile:
    """Stage 2: build the DDG point streams (fresh execution).

    ``wall_seconds`` is the ``stage2.execute`` span's duration (the
    instrumented execution with the DDG builder riding along).

    ``emit_funcs`` restricts sink emission to the named functions
    (incremental re-analysis); everything else runs the builder's
    non-emitted tier -- see :class:`~repro.ddg.builder.DDGBuilder`."""
    tracer = tracer if tracer is not None else Tracer()
    args, memory = spec.make_state()
    if sink is None:
        sink = RecordingSink()
    with tracer.span("stage2.build_setup", cat="build"):
        builder = DDGBuilder(
            spec.program,
            control.forests,
            control.rcs,
            sink,
            track_anti_output=track_anti_output,
            build_schedule_tree=build_schedule_tree,
            emit_funcs=emit_funcs,
        )
    with tracer.span("stage2.execute", cat="exec", engine=engine) as sp:
        _, stats = run_program(
            spec.program,
            args=args,
            memory=memory,
            observers=[builder, *extra_observers],
            fuel=fuel,
            engine=engine,
        )
    sp.count("dyn_instrs", stats.dyn_instrs)
    sp.count("mem_ops", stats.mem_ops)
    return DDGProfile(
        builder=builder, sink=sink, stats=stats, wall_seconds=sp.duration
    )


@dataclass
class StageTimings:
    """Fresh wall-clock cost of one :func:`analyze` call, per stage.

    Unlike the ``wall_seconds`` recorded inside
    :class:`ControlProfile`/:class:`DDGProfile` -- which a cached
    artifact preserves verbatim from the run that *produced* it --
    these measure what **this** call actually spent, cache lookups
    included.  On a warm hit ``instr1``/``instr2_fold`` collapse to
    the artifact-decode time.
    """

    instr1: float = 0.0         # Instrumentation I (or stage-1 load)
    instr2_fold: float = 0.0    # Instrumentation II + folding (or load)
    feedback: float = 0.0       # dep vectors, forest analysis, planning
    stage1_cached: bool = False
    stage2_cached: bool = False

    @classmethod
    def from_span_tree(
        cls,
        root: Span,
        stage1_cached: bool = False,
        stage2_cached: bool = False,
    ) -> "StageTimings":
        """Derive the per-stage split from a finished ``analyze`` root
        span.

        Each stage is the interval from the previous stage's span end
        to its own (the last one runs to the root's end), so the three
        parts include every bit of inter-stage glue and **sum exactly
        to the root's duration** -- unlike the old per-stage
        ``perf_counter`` pairs, which dropped the glue and never summed
        to end-to-end.
        """
        stages = {c.name: c for c in root.children}
        s1 = stages.get("instr1")
        s2 = stages.get("instr2_fold")
        if s1 is None or s2 is None:
            raise ValueError(
                "span tree lacks instr1/instr2_fold stage spans"
            )
        return cls(
            instr1=s1.t1 - root.t0,
            instr2_fold=s2.t1 - s1.t1,
            feedback=root.t1 - s2.t1,
            stage1_cached=stage1_cached,
            stage2_cached=stage2_cached,
        )

    @property
    def cache_hit(self) -> bool:
        """True when every profiled execution was skipped."""
        return self.stage1_cached and self.stage2_cached

    @property
    def total(self) -> float:
        return self.instr1 + self.instr2_fold + self.feedback

    def as_dict(self) -> Dict[str, float]:
        return {
            "instr1": self.instr1,
            "instr2_fold": self.instr2_fold,
            "feedback": self.feedback,
        }


@dataclass
class AnalysisResult:
    """Everything the feedback stages need, bundled."""

    spec: ProgramSpec
    control: ControlProfile
    ddg_profile: DDGProfile
    folded: "FoldedDDG"
    forest: "NestForest"
    plans: List["NestPlan"] = field(default_factory=list)
    #: pipeline settings, recorded so the cross-checker can reproduce
    #: the run (on the opposite engine)
    engine: str = "fast"
    track_anti_output: bool = True
    #: soundness report when the run was crosschecked (``--crosscheck``)
    crosscheck: Optional["CrosscheckReport"] = None
    #: fresh per-stage cost of this call (cache-aware; see StageTimings)
    timings: StageTimings = field(default_factory=StageTimings)
    #: root span of this call's trace (every analyze() is traced at
    #: stage granularity; deep traces add execution counters/memory)
    trace: Optional[Span] = None
    #: fold worker processes this call ran with (1 = serial in-process)
    fold_jobs: int = 1
    #: per-shard fold busy seconds when ``fold_jobs > 1`` (these
    #: overlap each other and the execution -- informational only,
    #: never part of the StageTimings parts-sum-to-total accounting)
    shard_seconds: Optional[List[float]] = None
    #: what the incremental machinery did when ``analyze(baseline=...)``
    #: was used (:class:`~repro.incr.IncrementalInfo`); deliberately
    #: *not* part of any report/metrics document -- incremental output
    #: stays byte-identical to a cold run
    incremental: Optional["IncrementalInfo"] = None

    @property
    def schedule_tree(self):
        return self.ddg_profile.builder.schedule_tree

    def total_wall_seconds(self) -> float:
        return self.control.wall_seconds + self.ddg_profile.wall_seconds


def analyze(
    spec: ProgramSpec,
    track_anti_output: bool = True,
    build_schedule_tree: bool = True,
    max_pieces: int = 6,
    clamp: Optional[int] = None,
    fuel: int = 50_000_000,
    engine: str = "fast",
    crosscheck: bool = False,
    store: Optional["ArtifactStore"] = None,
    extra_observers: Sequence = (),
    tracer: Optional[Tracer] = None,
    fold_jobs: int = 1,
    baseline: Optional[str] = None,
) -> AnalysisResult:
    """The full POLY-PROF pipeline: profile, fold, analyze, plan.

    ``clamp`` bounds the points folded per stream (Fig. 1's relevance
    scalability clamping); clamped streams degrade to conservative
    over-approximations.

    ``engine`` selects the execution/folding path: ``"fast"`` (block
    compilation, batched instrumentation, fast folding backend) or
    ``"reference"`` (the original per-instruction interpreter and
    folder).  Both produce identical results for completed runs.

    ``crosscheck`` additionally runs the dynamic-vs-static soundness
    sanitizers (:mod:`repro.dataflow.crosscheck`) over the finished
    result -- including an independent recount of the dependence
    streams on the *other* engine -- and attaches the report.  The
    analysis artifacts themselves are unaffected.

    ``store`` enables content-addressed caching (:mod:`repro.store`):
    the workload and the options above are fingerprinted, and a warm
    stage-2 hit skips both profiled executions *and* folding entirely,
    leaving only the cheap feedback passes.  A stage-2 miss with a
    stage-1 hit still skips Instrumentation I.  Cached and fresh runs
    produce identical results; cache state only shows up in
    ``result.timings``.

    ``extra_observers`` attach additional passive
    :class:`~repro.isa.events.Instrumentation` observers to both
    profiled executions -- the analysis service uses this to enforce
    cooperative per-job deadlines/cancellation from worker threads
    (where ``SIGALRM`` is unavailable).  They are deliberately *not*
    part of the cache key: an observer must never change what is
    computed, only watch it (or abort it by raising).

    ``fold_jobs`` folds the stage-2 point streams in that many worker
    processes (:mod:`repro.parallel`): the event stream is sharded by
    statement/dependence key and folded concurrently with the
    instrumented execution, then merged bit-identically to the serial
    result.  Deliberately *not* part of the cache key: serial and
    parallel folds produce the same ``ddg-`` artifact bytes, so a warm
    hit folded either way serves both.  ``1`` (the default) keeps the
    serial in-process fold.

    ``tracer`` collects the hierarchical span tree of this call
    (:mod:`repro.obs`).  When omitted a private stage-granularity
    tracer runs anyway -- a handful of spans per call, unmeasurable
    against an instrumented execution -- because the span tree is the
    *only* timing source: ``result.timings`` and ``result.trace`` are
    both derived from it.  Pass an explicit tracer to keep the spans
    (``repro trace``, the suite runner, the service daemon all do).

    ``baseline`` (requires ``store``) is the program fingerprint of a
    previously analyzed baseline: the spec's program is statically
    diffed against the baseline's manifest, the invalidated dependence
    frontier is sliced (:mod:`repro.incr`), and only the frontier is
    re-instrumented -- everything else is stitched from per-function
    ``rgn-`` region artifacts.  The result is byte-identical to a cold
    full analysis; what the machinery did is reported on
    ``result.incremental``.  Any dynamic boundary violation or stitch
    inconsistency falls back to a cold run automatically.
    """
    from .folding import FastFoldingSink, FoldingSink
    from .schedule import analyze_forest, build_nest_forest, plan_all
    from .feedback.stride import stride_scores

    if tracer is None:
        # a standalone analyze() is its own trace front door: mint a
        # context so even library callers get stitchable span identity
        from .obs.context import new_trace_context

        tracer = Tracer(context=new_trace_context())
    if baseline is not None and store is None:
        raise ValueError("analyze(baseline=...) requires an artifact store")
    keys = None
    if store is not None:
        from .store import (
            decode_control_profile,
            decode_stage2,
            encode_control_profile,
            encode_stage2,
            keys_for_spec,
        )

        keys = keys_for_spec(
            spec,
            engine=engine,
            fuel=fuel,
            max_pieces=max_pieces,
            clamp=clamp,
            track_anti_output=track_anti_output,
            build_schedule_tree=build_schedule_tree,
        )

    stage1_cached = stage2_cached = False
    with tracer.span(
        "analyze", cat="pipeline", workload=spec.name, engine=engine
    ) as root:
        # -- incremental planning: diff + slice + region loads -----------------
        incr_plan = None
        if baseline is not None:
            from .ddg import FrontierViolation
            from .incr import (
                IncrementalMismatch,
                plan_incremental,
                stitch_folded,
            )
            from .store import decode_stage2_meta

            incr_plan = plan_incremental(
                spec,
                keys,
                baseline,
                store,
                tracer,
                engine=engine,
                fuel=fuel,
                max_pieces=max_pieces,
                clamp=clamp,
                track_anti_output=track_anti_output,
                build_schedule_tree=build_schedule_tree,
            )

        # -- stage 1: interprocedural control structure ------------------------
        with tracer.span("instr1", cat="stage"):
            control = None
            if store is not None:
                with tracer.span("stage1.load", cat="cache"):
                    control = store.load(keys.stage1, decode_control_profile)
                if (
                    control is None
                    and incr_plan is not None
                    and incr_plan.mode == "identical"
                ):
                    # an all-unchanged diff implies identical control
                    # structure (CFGs are uid-free), so the baseline's
                    # stage-1 artifact serves verbatim
                    with tracer.span("stage1.load_base", cat="cache"):
                        control = store.load(
                            incr_plan.base_keys.stage1,
                            decode_control_profile,
                        )
            stage1_cached = control is not None
            if control is None:
                control = profile_control(
                    spec,
                    fuel=fuel,
                    engine=engine,
                    extra_observers=extra_observers,
                    tracer=tracer,
                )
            if store is not None and not store.contains(keys.stage1):
                with tracer.span("stage1.put", cat="cache"):
                    store.put(keys.stage1, encode_control_profile(control))

        # -- stage 2: DDG streams + folding ------------------------------------
        shard_seconds = None
        with tracer.span("instr2_fold", cat="stage") as stage2_span:
            dep_vectors = None
            loaded = None

            def run_stage2(emit_funcs):
                """One instrumented stage-2 execution + fold; ``None``
                emits everything (cold), a set emits only the frontier."""
                nonlocal shard_seconds
                if fold_jobs > 1:
                    from .parallel import ParallelFoldManager

                    manager = ParallelFoldManager(
                        fold_jobs,
                        engine=engine,
                        max_pieces=max_pieces,
                        clamp=clamp,
                    )
                    try:
                        ddgp = profile_ddg(
                            spec,
                            control,
                            sink=manager.router,
                            track_anti_output=track_anti_output,
                            build_schedule_tree=build_schedule_tree,
                            fuel=fuel,
                            engine=engine,
                            extra_observers=extra_observers,
                            tracer=tracer,
                            emit_funcs=emit_funcs,
                        )
                        with tracer.span(
                            "fold.finalize", cat="fold", fold_jobs=manager.jobs
                        ):
                            folded = manager.finalize()
                        manager.attach_spans(stage2_span)
                        shard_seconds = manager.shard_busy_seconds()
                    finally:
                        manager.close()
                else:
                    sink_cls = (
                        FastFoldingSink if engine == "fast" else FoldingSink
                    )
                    sink = sink_cls(max_pieces=max_pieces, clamp=clamp)
                    ddgp = profile_ddg(
                        spec,
                        control,
                        sink=sink,
                        track_anti_output=track_anti_output,
                        build_schedule_tree=build_schedule_tree,
                        fuel=fuel,
                        engine=engine,
                        extra_observers=extra_observers,
                        tracer=tracer,
                        emit_funcs=emit_funcs,
                    )
                    with tracer.span("fold.finalize", cat="fold"):
                        folded = sink.finalize(tracer=tracer)
                return ddgp, folded

            if store is not None:
                with tracer.span("stage2.load", cat="cache"):
                    loaded = store.load(
                        keys.stage2, lambda p: decode_stage2(p, spec.program)
                    )
            if loaded is not None:
                folded, ddgp, dep_vectors = loaded
                stage2_cached = True
                if incr_plan is not None:
                    incr_plan.info.mode = "warm"
                    incr_plan.info.reason = "stage2-warm-hit"
            elif incr_plan is not None and incr_plan.mode == "identical":
                try:
                    with tracer.span("incr.stitch", cat="incr") as sp:
                        base_payload = store.get(incr_plan.base_keys.stage2)
                        if base_payload is None:
                            raise IncrementalMismatch(
                                "baseline stage-2 artifact vanished"
                            )
                        folded = stitch_folded(
                            spec.program, None, incr_plan.regions, None
                        )
                        ddgp = decode_stage2_meta(base_payload)
                        sp.count("regions_reused", len(incr_plan.regions))
                    stage2_cached = True
                except IncrementalMismatch as exc:
                    incr_plan.info.mode = "cold"
                    incr_plan.info.reason = f"fallback: {exc}"
                    incr_plan.info.regions_reused = 0
                    ddgp, folded = run_stage2(None)
            elif incr_plan is not None and incr_plan.mode == "incremental":
                try:
                    ddgp, fresh = run_stage2(set(incr_plan.emit_funcs))
                    with tracer.span("incr.stitch", cat="incr") as sp:
                        folded = stitch_folded(
                            spec.program,
                            fresh,
                            incr_plan.regions,
                            ddgp.builder.context_ids,
                        )
                        sp.count("regions_reused", len(incr_plan.regions))
                except (FrontierViolation, IncrementalMismatch) as exc:
                    incr_plan.info.mode = "cold"
                    incr_plan.info.reason = (
                        f"fallback: {type(exc).__name__}: {exc}"
                    )
                    incr_plan.info.regions_reused = 0
                    ddgp, folded = run_stage2(None)
            else:
                ddgp, folded = run_stage2(None)

        # -- feedback: dependence vectors, forest analysis, planning -----------
        with tracer.span("feedback", cat="stage"):
            with tracer.span("feedback.forest", cat="feedback"):
                forest = build_nest_forest(folded, deps=dep_vectors)
            with tracer.span("feedback.analysis", cat="feedback"):
                analyze_forest(forest)
            with tracer.span("feedback.plan", cat="feedback"):
                plans = plan_all(forest, stride_scores_of=stride_scores)
            if store is not None and not store.contains(keys.stage2):
                with tracer.span("stage2.put", cat="cache"):
                    store.put(
                        keys.stage2, encode_stage2(folded, ddgp, forest.deps)
                    )
            if store is not None:
                # write-through the incremental levels (manifest +
                # per-function regions) on every stored run, so *this*
                # analysis can serve as a future baseline
                from .incr import build_manifest, encode_regions

                with tracer.span("incr.put", cat="cache") as sp:
                    if not store.contains(keys.manifest):
                        manifest = (
                            incr_plan.new_manifest
                            if incr_plan is not None
                            and incr_plan.new_manifest is not None
                            else build_manifest(spec.program)
                        )
                        store.put(keys.manifest, manifest)
                    missing = [
                        f
                        for f in spec.program.functions
                        if not store.contains(keys.region(f))
                    ]
                    if missing:
                        payloads = encode_regions(spec.program, folded)
                        for func in missing:
                            store.put(keys.region(func), payloads[func])
                    sp.count("regions_written", len(missing))

    timings = (
        StageTimings.from_span_tree(root, stage1_cached, stage2_cached)
        if tracer.enabled
        else StageTimings(
            stage1_cached=stage1_cached, stage2_cached=stage2_cached
        )
    )
    result = AnalysisResult(
        spec=spec,
        control=control,
        ddg_profile=ddgp,
        folded=folded,
        forest=forest,
        plans=plans,
        engine=engine,
        track_anti_output=track_anti_output,
        timings=timings,
        trace=root if tracer.enabled else None,
        fold_jobs=max(1, fold_jobs),
        shard_seconds=shard_seconds,
        incremental=incr_plan.info if incr_plan is not None else None,
    )
    if crosscheck:
        from .dataflow.crosscheck import CheckOptions, run_crosscheck

        with tracer.span("crosscheck", cat="stage"):
            result.crosscheck = run_crosscheck(
                result, CheckOptions(fuel=fuel)
            )
    return result
