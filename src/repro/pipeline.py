"""POLY-PROF end-to-end pipeline (paper Fig. 1).

The stages, mirroring the figure:

1. **Instrumentation I** -- run the program once, reconstruct dynamic
   CFGs and the call graph; build loop-nesting forests and the
   recursive-component-set (:mod:`repro.cfg`).
2. **Instrumentation II** -- run again with the DDG builder: loop
   events, dynamic IIVs, shadow memory; stream statement/dependence
   points (:mod:`repro.ddg`).
3. **Folding** -- compress the point streams into a compact polyhedral
   DDG (:mod:`repro.folding`).
4. **Polyhedral feedback** -- dependence analysis, transformation
   search, metrics, reports (:mod:`repro.schedule`,
   :mod:`repro.feedback`).

Because a mini-ISA program consumes its :class:`~repro.isa.Memory`,
workloads are described by a :class:`ProgramSpec` whose ``make_state``
returns a *fresh* (args, memory) pair per run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .cfg import (
    ControlStructureBuilder,
    DynCallGraph,
    DynCFG,
    LoopForest,
    RecursiveComponentSet,
    build_loop_forest,
    build_recursive_component_set,
)
from .ddg import DDGBuilder, DDGSink, RecordingSink
from .isa import Memory, Program, RunStats, run_program


@dataclass
class ProgramSpec:
    """A runnable workload: a program plus fresh-state factory.

    The ``region_*`` fields model the paper's hand-selected region of
    interest per benchmark (Table 5): the kernel functions, the label
    printed in the Region column, the fusion heuristic used, and the
    source loop depth (``ld-src``) when it differs from what the
    frontend records (e.g. a compiler unrolled a source loop away).
    """

    name: str
    program: Program
    make_state: Callable[[], Tuple[Sequence, Memory]]

    #: optional human annotations used by reports (not by analysis)
    description: str = ""
    region_funcs: Optional[Tuple[str, ...]] = None
    region_label: str = ""
    fusion_heuristic: str = "S"
    ld_src: Optional[int] = None
    #: emulates the paper's scheduler memory budget (streamcluster
    #: exhausted memory at scheduling); None = unlimited
    scheduler_stmt_budget: Optional[int] = None


@dataclass
class ControlProfile:
    """Result of Instrumentation I."""

    cfgs: Dict[str, DynCFG]
    callgraph: DynCallGraph
    forests: Dict[str, LoopForest]
    rcs: RecursiveComponentSet
    stats: RunStats
    wall_seconds: float = 0.0


@dataclass
class DDGProfile:
    """Result of Instrumentation II."""

    builder: DDGBuilder
    sink: DDGSink
    stats: RunStats
    wall_seconds: float = 0.0


def profile_control(
    spec: ProgramSpec,
    fuel: int = 50_000_000,
    engine: str = "fast",
    extra_observers: Sequence = (),
) -> ControlProfile:
    """Stage 1: reconstruct the interprocedural control structure."""
    args, memory = spec.make_state()
    csb = ControlStructureBuilder()
    t0 = time.perf_counter()
    _, stats = run_program(
        spec.program,
        args=args,
        memory=memory,
        observers=[csb, *extra_observers],
        fuel=fuel,
        engine=engine,
    )
    dt = time.perf_counter() - t0
    forests = {
        f: build_loop_forest(f, cfg.nodes, cfg.edges, cfg.entry)
        for f, cfg in csb.cfgs.items()
    }
    rcs = build_recursive_component_set(
        csb.callgraph.nodes, csb.callgraph.edges, csb.callgraph.root
    )
    return ControlProfile(
        cfgs=csb.cfgs,
        callgraph=csb.callgraph,
        forests=forests,
        rcs=rcs,
        stats=stats,
        wall_seconds=dt,
    )


def profile_ddg(
    spec: ProgramSpec,
    control: ControlProfile,
    sink: Optional[DDGSink] = None,
    track_anti_output: bool = True,
    build_schedule_tree: bool = True,
    fuel: int = 50_000_000,
    engine: str = "fast",
    extra_observers: Sequence = (),
) -> DDGProfile:
    """Stage 2: build the DDG point streams (fresh execution)."""
    args, memory = spec.make_state()
    if sink is None:
        sink = RecordingSink()
    builder = DDGBuilder(
        spec.program,
        control.forests,
        control.rcs,
        sink,
        track_anti_output=track_anti_output,
        build_schedule_tree=build_schedule_tree,
    )
    t0 = time.perf_counter()
    _, stats = run_program(
        spec.program,
        args=args,
        memory=memory,
        observers=[builder, *extra_observers],
        fuel=fuel,
        engine=engine,
    )
    dt = time.perf_counter() - t0
    return DDGProfile(builder=builder, sink=sink, stats=stats, wall_seconds=dt)


@dataclass
class StageTimings:
    """Fresh wall-clock cost of one :func:`analyze` call, per stage.

    Unlike the ``wall_seconds`` recorded inside
    :class:`ControlProfile`/:class:`DDGProfile` -- which a cached
    artifact preserves verbatim from the run that *produced* it --
    these measure what **this** call actually spent, cache lookups
    included.  On a warm hit ``instr1``/``instr2_fold`` collapse to
    the artifact-decode time.
    """

    instr1: float = 0.0         # Instrumentation I (or stage-1 load)
    instr2_fold: float = 0.0    # Instrumentation II + folding (or load)
    feedback: float = 0.0       # dep vectors, forest analysis, planning
    stage1_cached: bool = False
    stage2_cached: bool = False

    @property
    def cache_hit(self) -> bool:
        """True when every profiled execution was skipped."""
        return self.stage1_cached and self.stage2_cached

    @property
    def total(self) -> float:
        return self.instr1 + self.instr2_fold + self.feedback

    def as_dict(self) -> Dict[str, float]:
        return {
            "instr1": self.instr1,
            "instr2_fold": self.instr2_fold,
            "feedback": self.feedback,
        }


@dataclass
class AnalysisResult:
    """Everything the feedback stages need, bundled."""

    spec: ProgramSpec
    control: ControlProfile
    ddg_profile: DDGProfile
    folded: "FoldedDDG"
    forest: "NestForest"
    plans: List["NestPlan"] = field(default_factory=list)
    #: pipeline settings, recorded so the cross-checker can reproduce
    #: the run (on the opposite engine)
    engine: str = "fast"
    track_anti_output: bool = True
    #: soundness report when the run was crosschecked (``--crosscheck``)
    crosscheck: Optional["CrosscheckReport"] = None
    #: fresh per-stage cost of this call (cache-aware; see StageTimings)
    timings: StageTimings = field(default_factory=StageTimings)

    @property
    def schedule_tree(self):
        return self.ddg_profile.builder.schedule_tree

    def total_wall_seconds(self) -> float:
        return self.control.wall_seconds + self.ddg_profile.wall_seconds


def analyze(
    spec: ProgramSpec,
    track_anti_output: bool = True,
    build_schedule_tree: bool = True,
    max_pieces: int = 6,
    clamp: Optional[int] = None,
    fuel: int = 50_000_000,
    engine: str = "fast",
    crosscheck: bool = False,
    store: Optional["ArtifactStore"] = None,
    extra_observers: Sequence = (),
) -> AnalysisResult:
    """The full POLY-PROF pipeline: profile, fold, analyze, plan.

    ``clamp`` bounds the points folded per stream (Fig. 1's relevance
    scalability clamping); clamped streams degrade to conservative
    over-approximations.

    ``engine`` selects the execution/folding path: ``"fast"`` (block
    compilation, batched instrumentation, fast folding backend) or
    ``"reference"`` (the original per-instruction interpreter and
    folder).  Both produce identical results for completed runs.

    ``crosscheck`` additionally runs the dynamic-vs-static soundness
    sanitizers (:mod:`repro.dataflow.crosscheck`) over the finished
    result -- including an independent recount of the dependence
    streams on the *other* engine -- and attaches the report.  The
    analysis artifacts themselves are unaffected.

    ``store`` enables content-addressed caching (:mod:`repro.store`):
    the workload and the options above are fingerprinted, and a warm
    stage-2 hit skips both profiled executions *and* folding entirely,
    leaving only the cheap feedback passes.  A stage-2 miss with a
    stage-1 hit still skips Instrumentation I.  Cached and fresh runs
    produce identical results; cache state only shows up in
    ``result.timings``.

    ``extra_observers`` attach additional passive
    :class:`~repro.isa.events.Instrumentation` observers to both
    profiled executions -- the analysis service uses this to enforce
    cooperative per-job deadlines/cancellation from worker threads
    (where ``SIGALRM`` is unavailable).  They are deliberately *not*
    part of the cache key: an observer must never change what is
    computed, only watch it (or abort it by raising).
    """
    from .folding import FastFoldingSink, FoldingSink
    from .schedule import analyze_forest, build_nest_forest, plan_all
    from .feedback.stride import stride_scores

    timings = StageTimings()
    keys = None
    if store is not None:
        from .store import (
            decode_control_profile,
            decode_stage2,
            encode_control_profile,
            encode_stage2,
            keys_for_spec,
        )

        keys = keys_for_spec(
            spec,
            engine=engine,
            fuel=fuel,
            max_pieces=max_pieces,
            clamp=clamp,
            track_anti_output=track_anti_output,
            build_schedule_tree=build_schedule_tree,
        )

    # -- stage 1: interprocedural control structure ----------------------------
    t0 = time.perf_counter()
    control = (
        store.load(keys.stage1, decode_control_profile)
        if store is not None
        else None
    )
    timings.stage1_cached = control is not None
    if control is None:
        control = profile_control(
            spec, fuel=fuel, engine=engine, extra_observers=extra_observers
        )
        if store is not None:
            store.put(keys.stage1, encode_control_profile(control))
    timings.instr1 = time.perf_counter() - t0

    # -- stage 2: DDG streams + folding ----------------------------------------
    t0 = time.perf_counter()
    dep_vectors = None
    loaded = (
        store.load(keys.stage2, lambda p: decode_stage2(p, spec.program))
        if store is not None
        else None
    )
    if loaded is not None:
        folded, ddgp, dep_vectors = loaded
        timings.stage2_cached = True
    else:
        sink_cls = FastFoldingSink if engine == "fast" else FoldingSink
        sink = sink_cls(max_pieces=max_pieces, clamp=clamp)
        ddgp = profile_ddg(
            spec,
            control,
            sink=sink,
            track_anti_output=track_anti_output,
            build_schedule_tree=build_schedule_tree,
            fuel=fuel,
            engine=engine,
            extra_observers=extra_observers,
        )
        folded = sink.finalize()
    timings.instr2_fold = time.perf_counter() - t0

    # -- feedback: dependence vectors, forest analysis, planning ---------------
    t0 = time.perf_counter()
    forest = build_nest_forest(folded, deps=dep_vectors)
    analyze_forest(forest)
    plans = plan_all(forest, stride_scores_of=stride_scores)
    if store is not None and not timings.stage2_cached:
        store.put(keys.stage2, encode_stage2(folded, ddgp, forest.deps))
    timings.feedback = time.perf_counter() - t0

    result = AnalysisResult(
        spec=spec,
        control=control,
        ddg_profile=ddgp,
        folded=folded,
        forest=forest,
        plans=plans,
        engine=engine,
        track_anti_output=track_anti_output,
        timings=timings,
    )
    if crosscheck:
        from .dataflow.crosscheck import CheckOptions, run_crosscheck

        result.crosscheck = run_crosscheck(
            result, CheckOptions(fuel=fuel)
        )
    return result
