"""Command-line interface: ``python -m repro <command>``.

Drives the pipeline over the bundled workloads the way a user would
drive POLY-PROF over a binary:

* ``list``                    -- available workloads
* ``report <workload>``       -- full feedback report (nests, plans, AST)
* ``metrics <workload>``      -- the Table 5 row for the workload
* ``flamegraph <workload>``   -- write the annotated flame-graph SVG
* ``trace <workload>``        -- trace the analyzer analyzing: span
  summary, Chrome-trace JSON (``-o``), self-flamegraph (``--flame``)
* ``static <workload>``       -- the static (mini-Polly) baseline view
* ``verify <workload>``       -- verify every suggested plan polyhedrally
* ``regions <workload>``      -- rank candidate regions of interest
* ``lint [workloads...]``     -- static linter over workload programs
* ``suite [workloads...]``    -- analyze many workloads in parallel
* ``sweep <workload>``        -- profile over an input sweep and merge
  the per-run DDGs into a parameterized dependence model
* ``serve``                   -- run the analysis daemon (HTTP API)
* ``route``                   -- consistent-hash router over replicas

Analysis commands take ``--engine {fast,reference}`` (default fast:
block-compiled VM, batched instrumentation, fast folding backend),
``--crosscheck`` (run the dynamic-vs-static soundness sanitizers),
``--fold-jobs N`` (fold the stage-2 streams in N shard processes,
bit-identical to the serial fold; see :mod:`repro.parallel`), and
``--cache DIR`` / ``--no-cache`` (content-addressed artifact store;
the ``REPRO_CACHE_DIR`` environment variable supplies a default
directory).  ``report`` and ``metrics`` take ``--format {text,json}``;
the JSON documents carry a top-level schema ``version`` field and are
byte-identical to what the daemon serves.  ``suite`` additionally
takes ``--jobs``, ``--timeout`` and ``--cache-max-mb`` (LRU size cap
for the shared store).  ``serve`` takes ``--port``, ``--workers``,
``--queue-depth``, ``--job-timeout`` and the cache flags.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence


def _get_spec(name: str):
    from .workloads import all_workloads

    reg = all_workloads()
    if name not in reg:
        options = ", ".join(sorted(reg))
        raise SystemExit(f"unknown workload {name!r}; available: {options}")
    return reg[name]()


def cmd_list(args) -> int:
    from .workloads import all_workloads, RODINIA_ORDER

    reg = all_workloads()
    print("Rodinia 3.1 suite (paper Table 5):")
    for name in RODINIA_ORDER:
        print(f"  {name:16s} {reg[name]().description}")
    extra = sorted(set(reg) - set(RODINIA_ORDER))
    if extra:
        print("other workloads:")
        for name in extra:
            print(f"  {name:16s} {reg[name]().description}")
    return 0


def _store_from_args(args):
    """The :class:`~repro.store.ArtifactStore` the flags ask for, or None.

    Precedence: ``--no-cache`` wins; then ``--cache DIR``; then the
    ``REPRO_CACHE_DIR`` environment variable.
    """
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache", None) or os.environ.get(
        "REPRO_CACHE_DIR"
    )
    if not cache_dir:
        return None
    from .store import ArtifactStore

    max_mb = getattr(args, "cache_max_mb", None)
    return ArtifactStore(
        cache_dir,
        max_bytes=None if max_mb is None else max_mb * 1024 * 1024,
    )


def _cache_dir_from_args(args) -> Optional[str]:
    """Like :func:`_store_from_args` but just the directory (for the
    suite runner, whose workers each open their own handle)."""
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache", None) or os.environ.get(
        "REPRO_CACHE_DIR"
    ) or None


def _print_incremental(result) -> None:
    """One-line incremental summary on **stderr** -- stdout must stay
    byte-identical to a cold run of the same program."""
    info = result.incremental
    if info is None:
        return
    parts = [f"incremental: mode={info.mode}"]
    if info.mode in ("incremental", "identical"):
        parts.append(
            f"regions reused {info.regions_reused}/{info.funcs_total}"
        )
    if info.frontier:
        parts.append(f"frontier: {', '.join(sorted(info.frontier))}")
    if info.reason:
        parts.append(f"reason: {info.reason}")
    print("  ".join(parts), file=sys.stderr)


def _baseline_of(args) -> Optional[str]:
    """Resolve ``--baseline``: a workload name is fingerprinted; a raw
    64-hex program digest passes through."""
    ref = getattr(args, "baseline", None)
    if not ref:
        return None
    from .workloads import all_workloads

    reg = all_workloads()
    if ref in reg:
        from .isa.fingerprint import fingerprint_program

        return fingerprint_program(reg[ref]().program)
    if len(ref) == 64 and all(c in "0123456789abcdef" for c in ref):
        return ref
    options = ", ".join(sorted(reg))
    raise SystemExit(
        f"--baseline {ref!r} is neither a workload name nor a program "
        f"fingerprint; workloads: {options}"
    )


def _print_crosscheck(result) -> int:
    """Print the crosscheck summary; return the violation count."""
    if result.crosscheck is None:
        return 0
    print(result.crosscheck.render())
    return len(result.crosscheck.violations)


def cmd_report(args) -> int:
    from .feedback import render_report
    from .pipeline import analyze

    spec = _get_spec(args.workload)
    store = _store_from_args(args)
    baseline = _baseline_of(args)
    if baseline is not None and store is None:
        raise SystemExit(
            "--baseline requires an artifact store (--cache DIR or "
            "REPRO_CACHE_DIR)"
        )
    result = analyze(
        spec, engine=args.engine, crosscheck=args.crosscheck,
        store=store, fold_jobs=args.fold_jobs, baseline=baseline,
    )
    _print_incremental(result)
    bad = result.crosscheck is not None and result.crosscheck.violations
    if args.format == "json":
        from .feedback.jsonout import render_json, report_document

        sys.stdout.write(render_json(report_document(result)))
        return 1 if bad else 0
    print(
        f"{spec.name}: {result.ddg_profile.builder.instr_count} dynamic "
        f"instructions, {result.folded.stmt_count()} folded statements, "
        f"{len(result.folded.deps)} dependence relations"
    )
    print(render_report(result.forest, result.plans,
                        title=f"poly-prof feedback: {spec.name}"))
    return 1 if _print_crosscheck(result) else 0


def cmd_metrics(args) -> int:
    from .feedback import compute_region_metrics
    from .pipeline import analyze

    spec = _get_spec(args.workload)
    store = _store_from_args(args)
    baseline = _baseline_of(args)
    if baseline is not None and store is None:
        raise SystemExit(
            "--baseline requires an artifact store (--cache DIR or "
            "REPRO_CACHE_DIR)"
        )
    result = analyze(
        spec, engine=args.engine, crosscheck=args.crosscheck,
        store=store, fold_jobs=args.fold_jobs, baseline=baseline,
    )
    _print_incremental(result)
    if args.format == "json":
        from .feedback.jsonout import metrics_document, render_json

        sys.stdout.write(render_json(metrics_document(result)))
        bad = result.crosscheck is not None and result.crosscheck.violations
        return 1 if bad else 0
    m = compute_region_metrics(
        result.folded,
        result.forest,
        result.control.callgraph,
        region_funcs=spec.region_funcs,
        label=spec.region_label or spec.name,
        ld_src=spec.ld_src,
        fusion_heuristic=spec.fusion_heuristic,
    )
    for k, v in m.row().items():
        print(f"  {k:12s} {v}")
    return 1 if _print_crosscheck(result) else 0


def cmd_flamegraph(args) -> int:
    from .feedback import render_flamegraph_svg
    from .pipeline import analyze

    spec = _get_spec(args.workload)
    result = analyze(
        spec, engine=args.engine, store=_store_from_args(args)
    )
    svg = render_flamegraph_svg(
        result.schedule_tree,
        title=f"poly-prof annotated flame graph: {spec.name}",
    )
    out = args.output or f"{spec.name}_flamegraph.svg"
    with open(out, "w") as fh:
        fh.write(svg)
    print(f"wrote {out}")
    return 0


def cmd_trace(args) -> int:
    """Trace the analyzer analyzing: span summary to stdout, plus
    optional Chrome-trace JSON (``-o``) and self-flamegraph
    (``--flame``) artifacts."""
    from .obs import (
        TraceObserver,
        Tracer,
        render_self_flamegraph,
        render_span_text,
        validate_chrome_trace,
        write_chrome_trace,
    )
    from .pipeline import analyze

    spec = _get_spec(args.workload)
    store = _store_from_args(args)
    baseline = _baseline_of(args)
    if baseline is not None and store is None:
        raise SystemExit(
            "--baseline requires an artifact store (--cache DIR or "
            "REPRO_CACHE_DIR)"
        )
    from .obs.context import new_trace_context

    # the CLI is a trace front door: mint the request identity here so
    # exported spans carry trace/span ids like service-run ones do
    tracer = Tracer(memory=args.mem, context=new_trace_context())
    observer = TraceObserver(tracer)
    try:
        result = analyze(
            spec,
            engine=args.engine,
            store=store,
            tracer=tracer,
            extra_observers=[observer],
            fold_jobs=args.fold_jobs,
            baseline=baseline,
        )
        _print_incremental(result)
        if args.format == "json":
            from .feedback.jsonout import render_json, trace_document

            sys.stdout.write(
                render_json(trace_document(result, spans=tracer.roots))
            )
        else:
            print(f"span tree for {spec.name} ({args.engine} engine):")
            print(render_span_text(tracer.roots))
        if args.output:
            doc = write_chrome_trace(
                args.output, tracer.roots, workload=spec.name
            )
            events = validate_chrome_trace(doc)
            print(
                f"wrote {args.output} ({events} events; load it at "
                "https://ui.perfetto.dev or chrome://tracing)"
            )
        if args.flame is not None:
            out = args.flame or f"{spec.name}_selfflame.svg"
            svg = render_self_flamegraph(
                tracer.roots,
                title=f"poly-prof tracing itself: {spec.name}",
            )
            with open(out, "w") as fh:
                fh.write(svg)
            print(f"wrote {out}")
    finally:
        tracer.close()
    return 0


def cmd_static(args) -> int:
    from .staticpoly import analyze_static

    spec = _get_spec(args.workload)
    report = analyze_static(spec.program, spec.region_funcs)
    print(f"region: {', '.join(report.region)}")
    print(f"whole region modelable: {report.whole_region_modelable}")
    if report.reasons:
        print(f"failure reasons: {report.reasons} "
              "(R=call C=cfg B=bounds F=access A=alias P=base-ptr)")
    for nest in report.nests:
        verdict = "ok" if nest.modelable else nest.reasons
        print(f"  {nest.func}/{nest.header} ({nest.depth}D): {verdict}")
    return 0


def cmd_regions(args) -> int:
    from .feedback import suggest_regions
    from .pipeline import analyze

    spec = _get_spec(args.workload)
    store = _store_from_args(args)
    baseline = _baseline_of(args)
    if baseline is not None and store is None:
        raise SystemExit(
            "--baseline requires an artifact store (--cache DIR or "
            "REPRO_CACHE_DIR)"
        )
    result = analyze(
        spec, engine=args.engine, crosscheck=args.crosscheck,
        store=store, fold_jobs=args.fold_jobs, baseline=baseline,
    )
    _print_incremental(result)
    total = result.folded.dyn_ops() or 1
    print("candidate regions (best first):")
    for cand in suggest_regions(result, top=8):
        print(
            f"  {cand.root_func:24s} ops {100 * cand.ops // total:3d}%  "
            f"transformable {100 * cand.transformable_ops // total:3d}%  "
            f"funcs: {', '.join(cand.funcs)}"
        )
    return 1 if _print_crosscheck(result) else 0


def cmd_verify(args) -> int:
    from .pipeline import analyze
    from .schedule import verify_plan

    spec = _get_spec(args.workload)
    store = _store_from_args(args)
    baseline = _baseline_of(args)
    if baseline is not None and store is None:
        raise SystemExit(
            "--baseline requires an artifact store (--cache DIR or "
            "REPRO_CACHE_DIR)"
        )
    result = analyze(
        spec, engine=args.engine, crosscheck=args.crosscheck,
        store=store, fold_jobs=args.fold_jobs, baseline=baseline,
    )
    _print_incremental(result)
    bad = 0
    for plan in result.plans:
        if not plan.steps:
            continue
        res = verify_plan(result.forest, plan)
        status = "LEGAL" if res.legal else "VIOLATED"
        nest = " / ".join(p[-1] for p in plan.leaf.path)
        print(f"  {nest}: {status} "
              f"({res.checked} deps checked, {res.skipped} conservative)")
        if not res.legal:
            bad += 1
            for v in res.violations[:3]:
                print(f"    {v}")
    print("all plans verified" if bad == 0 else f"{bad} plans VIOLATED")
    if _print_crosscheck(result):
        return 1
    return 0 if bad == 0 else 1


def cmd_lint(args) -> int:
    import json

    from .dataflow import lint_program
    from .workloads import all_workloads

    reg = all_workloads()
    names = args.workloads or sorted(reg)
    bad = 0
    reports = []
    for name in names:
        if name not in reg:
            options = ", ".join(sorted(reg))
            raise SystemExit(
                f"unknown workload {name!r}; available: {options}"
            )
        spec = reg[name]()
        report = lint_program(spec.program)
        report.program = spec.name
        reports.append(report)
        if not report.clean:
            bad += 1
    if args.format == "json":
        print(json.dumps([r.as_dict() for r in reports], indent=2))
    else:
        for report in reports:
            if report.diagnostics or args.verbose:
                print(report.render())
        clean = len(reports) - bad
        print(f"{clean}/{len(reports)} workload program(s) lint clean")
    return 0 if bad == 0 else 1


def cmd_diff(args) -> int:
    """Static diff of two program versions + the sliced frontier."""
    import json

    from .incr import (
        append_sink_instr,
        build_manifest,
        compute_frontier,
        diff_document,
        diff_manifests,
    )

    base_spec = _get_spec(args.baseline)
    new_spec = _get_spec(args.workload)
    new_program = new_spec.program
    if args.edit:
        if args.edit not in new_program.functions:
            options = ", ".join(sorted(new_program.functions))
            raise SystemExit(
                f"--edit {args.edit!r}: no such function; "
                f"available: {options}"
            )
        new_program = append_sink_instr(new_program, args.edit)
    base_manifest = build_manifest(base_spec.program)
    new_manifest = build_manifest(new_program)
    diff = diff_manifests(base_manifest, new_manifest)
    frontier = compute_frontier(new_program, diff, base_manifest)
    if args.format == "json":
        doc = diff_document(
            diff,
            frontier=frontier,
            baseline_name=base_spec.name,
            program_name=new_spec.name,
        )
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(
        f"diff {base_spec.name} ({diff.baseline_digest[:12]}) -> "
        f"{new_spec.name} ({diff.program_digest[:12]})"
    )
    summary = diff.summary()
    print(
        "  "
        + "  ".join(f"{k}: {v}" for k, v in summary.items() if v)
    )
    for name in sorted(diff.functions):
        st = diff.functions[name]
        if st.status == "unchanged" and st.subtree_clean:
            continue
        line = f"  {name:24s} {st.status}"
        if st.blocks_changed:
            line += f"  blocks: {', '.join(st.blocks_changed)}"
        if st.renamed_from:
            line += f"  (renamed from {st.renamed_from})"
        if st.renamed_to:
            line += f"  (renamed to {st.renamed_to})"
        if st.status == "unchanged" and not st.subtree_clean:
            line += "  (callee subtree changed)"
        print(line)
    if frontier.funcs:
        print("re-analysis frontier:")
        for name in sorted(frontier.funcs):
            reasons = frontier.reasons.get(name, [])
            why = "; ".join(
                r.rule + (f" via {r.via}" if r.via else "")
                for r in reasons[:3]
            )
            print(f"  {name:24s} {why}")
    else:
        print("re-analysis frontier: empty (all regions reusable)")
    return 0


def cmd_serve(args) -> int:
    from .service import ServiceConfig, serve

    max_mb = getattr(args, "cache_max_mb", None)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache_dir=_cache_dir_from_args(args),
        cache_max_bytes=None if max_mb is None else max_mb * 1024 * 1024,
        engine=args.engine,
        default_timeout=args.job_timeout,
        drain_grace=args.drain_grace,
        retain_jobs=args.retain_jobs,
        max_fold_jobs=args.max_fold_jobs,
        execution=args.execution,
        replica_id=args.replica_id,
    )
    return serve(config)


def cmd_route(args) -> int:
    from .service.router import RouterConfig, route

    config = RouterConfig(
        host=args.host,
        port=args.port,
        replicas=args.replica,
        vnodes=args.vnodes,
        default_engine=args.engine,
        health_interval=args.health_interval,
    )
    return route(config)


def cmd_suite(args) -> int:
    from .runner import render_suite_table, run_suite
    from .workloads import RODINIA_ORDER

    names = args.workloads or list(RODINIA_ORDER)
    max_mb = getattr(args, "cache_max_mb", None)
    results = run_suite(
        names,
        jobs=args.jobs,
        timeout=args.timeout,
        engine=args.engine,
        clamp=args.clamp,
        crosscheck=args.crosscheck,
        cache_dir=_cache_dir_from_args(args),
        cache_max_bytes=None if max_mb is None else max_mb * 1024 * 1024,
        fold_jobs=args.fold_jobs,
    )
    print(render_suite_table(results))
    if not all(r.ok for r in results):
        return 1
    if any(r.soundness_violations for r in results):
        return 1
    return 0


def cmd_sweep(args) -> int:
    from .obs import Tracer
    from .sweep import (
        render_sweep_text,
        run_sweep,
        sweep_document,
    )
    from .sweep.driver import SweepError
    from .sweep.grid import GridError, parse_point

    points = None
    if args.point:
        try:
            points = [parse_point(text) for text in args.point]
        except GridError as exc:
            raise SystemExit(str(exc))
    max_mb = getattr(args, "cache_max_mb", None)
    from .obs.context import new_trace_context

    tracer = Tracer(context=new_trace_context())
    try:
        with tracer.span("sweep", cat="sweep", workload=args.workload):
            result = run_sweep(
                args.workload,
                points,
                engine=args.engine,
                clamp=args.clamp,
                crosscheck=args.crosscheck,
                fold_jobs=args.fold_jobs,
                jobs=args.jobs,
                timeout=args.timeout,
                cache_dir=_cache_dir_from_args(args),
                cache_max_bytes=(
                    None if max_mb is None else max_mb * 1024 * 1024
                ),
                tracer=tracer,
            )
    except (SweepError, GridError) as exc:
        raise SystemExit(str(exc))
    finally:
        tracer.close()
    if args.format == "json":
        from .feedback.jsonout import render_json

        sys.stdout.write(render_json(sweep_document(result)))
        return 0
    print(render_sweep_text(result))
    return 0


def _add_engine_arg(p) -> None:
    p.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default="fast",
        help="execution/folding path: block-compiled fast engine "
        "(default) or the reference interpreter",
    )


def _add_cache_args(p) -> None:
    p.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="content-addressed artifact store directory; warm "
        "re-analyses skip both profiled executions (default: "
        "$REPRO_CACHE_DIR when set)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the artifact store even if REPRO_CACHE_DIR is set",
    )


def _add_fold_jobs_arg(p) -> None:
    p.add_argument(
        "--fold-jobs",
        type=int,
        default=1,
        metavar="N",
        help="fold the stage-2 point streams in N shard worker "
        "processes (bit-identical to the serial fold; 1 = in-process)",
    )


def _add_baseline_arg(p) -> None:
    p.add_argument(
        "--baseline",
        metavar="REF",
        default=None,
        help="incremental re-analysis against this baseline: a "
        "workload name or a 64-hex program fingerprint whose manifest "
        "and region artifacts are in the store; only the invalidated "
        "frontier is re-instrumented (requires --cache); output stays "
        "byte-identical to a cold run, the incremental summary goes "
        "to stderr",
    )


def _add_crosscheck_arg(p) -> None:
    p.add_argument(
        "--crosscheck",
        action="store_true",
        help="run the dynamic-vs-static soundness sanitizers "
        "(recount on the other engine, dependence-shape, affine "
        "agreement, parallel-claim verification)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="poly-prof reproduction: dependence profiling for "
        "structured transformations",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available workloads")
    for name, help_ in (
        ("report", "full feedback report"),
        ("metrics", "Table 5 metrics row"),
        ("verify", "verify suggested plans polyhedrally"),
        ("regions", "rank candidate regions of interest"),
    ):
        p = sub.add_parser(name, help=help_)
        p.add_argument("workload")
        _add_engine_arg(p)
        _add_crosscheck_arg(p)
        _add_fold_jobs_arg(p)
        _add_cache_args(p)
        _add_baseline_arg(p)
        if name in ("report", "metrics"):
            p.add_argument(
                "--format",
                choices=("text", "json"),
                default="text",
                help="output format; json documents carry a schema "
                "'version' field and match the analysis service "
                "byte-for-byte",
            )
    p = sub.add_parser("static", help="static (mini-Polly) baseline")
    p.add_argument("workload")
    p = sub.add_parser(
        "lint", help="static linter over workload programs"
    )
    p.add_argument(
        "workloads",
        nargs="*",
        help="workload names (default: every registered workload)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format",
    )
    p.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print per-workload summaries with no findings",
    )
    p = sub.add_parser("flamegraph", help="write annotated flame-graph SVG")
    p.add_argument("workload")
    p.add_argument("-o", "--output", default=None)
    _add_engine_arg(p)
    _add_cache_args(p)
    p = sub.add_parser(
        "trace", help="trace the analyzer analyzing a workload"
    )
    p.add_argument("workload")
    p.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write Chrome trace-event JSON (loads in Perfetto / "
        "chrome://tracing)",
    )
    p.add_argument(
        "--flame",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="write the analyzer's own span tree as a flame-graph SVG "
        "(default file: <workload>_selfflame.svg)",
    )
    p.add_argument(
        "--mem",
        action="store_true",
        help="also sample tracemalloc at span boundaries (slower)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format: indented span tree (text) or the "
        "versioned trace document (json)",
    )
    _add_engine_arg(p)
    _add_fold_jobs_arg(p)
    _add_cache_args(p)
    _add_baseline_arg(p)
    p = sub.add_parser(
        "diff",
        help="statically diff two program versions and show the "
        "re-analysis frontier",
    )
    p.add_argument("baseline", help="baseline workload name")
    p.add_argument("workload", help="new/edited workload name")
    p.add_argument(
        "--edit",
        metavar="FUNC",
        default=None,
        help="apply the canonical one-function body edit (a dead "
        "const appended to FUNC's entry block) to the new side "
        "before diffing -- exercises the frontier on a single "
        "workload",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="human summary (text) or the versioned diff document "
        "with per-function status and frontier reasons (json)",
    )
    p = sub.add_parser(
        "suite", help="analyze many workloads in parallel"
    )
    p.add_argument(
        "workloads",
        nargs="*",
        help="workload names (default: the whole Rodinia suite)",
    )
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: CPU count; 1 = inline)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-workload wall-clock limit in seconds",
    )
    p.add_argument(
        "--clamp",
        type=int,
        default=None,
        help="per-stream folding point clamp",
    )
    _add_engine_arg(p)
    _add_crosscheck_arg(p)
    _add_fold_jobs_arg(p)
    _add_cache_args(p)
    p.add_argument(
        "--cache-max-mb",
        type=int,
        default=None,
        metavar="MB",
        help="LRU size cap for the shared artifact store",
    )
    p = sub.add_parser(
        "sweep",
        help="profile one workload over an input sweep and merge the "
        "per-run DDGs into a parameterized dependence model",
    )
    p.add_argument("workload")
    p.add_argument(
        "--point",
        action="append",
        default=[],
        metavar="BINDINGS",
        help="one sweep point as comma-separated name=value bindings "
        "(repeatable; unbound params take their registry defaults; "
        "default: the workload's declared sweep grid)",
    )
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="warm-phase worker processes (default: CPU count; "
        "1 = no warm phase)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point wall-clock limit in seconds (warm phase)",
    )
    p.add_argument(
        "--clamp",
        type=int,
        default=None,
        help="per-stream folding point clamp",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format; the json sweep document matches the "
        "analysis service byte-for-byte",
    )
    _add_engine_arg(p)
    _add_crosscheck_arg(p)
    _add_fold_jobs_arg(p)
    _add_cache_args(p)
    p.add_argument(
        "--cache-max-mb",
        type=int,
        default=None,
        metavar="MB",
        help="LRU size cap for the shared artifact store",
    )
    p = sub.add_parser(
        "serve", help="run the analysis daemon (JSON HTTP API)"
    )
    p.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: loopback only)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=8123,
        help="TCP port (0 = pick an ephemeral port and print it)",
    )
    p.add_argument(
        "-w",
        "--workers",
        type=int,
        default=2,
        help="analysis worker threads sharing one artifact store",
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="max queued jobs before submissions get 429",
    )
    p.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-job execution deadline (requests may "
        "override; default: unbounded)",
    )
    p.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="on SIGTERM, seconds to let in-flight jobs finish before "
        "cancelling them",
    )
    p.add_argument(
        "--retain-jobs",
        type=int,
        default=256,
        help="finished jobs kept for polling/dedup before eviction",
    )
    p.add_argument(
        "--max-fold-jobs",
        type=int,
        default=None,
        metavar="N",
        help="cap on per-job fold_jobs requests (default: cpu_count "
        "// workers, so in-flight fold processes never oversubscribe "
        "the host)",
    )
    p.add_argument(
        "--execution",
        choices=("thread", "process"),
        default="thread",
        help="run analyses in worker threads (warm-optimized default) "
        "or long-lived worker processes (cold throughput scales with "
        "cores)",
    )
    p.add_argument(
        "--replica-id",
        default=None,
        metavar="NAME",
        help="identity reported in /healthz and /metrics when this "
        "daemon is one replica behind `repro route`",
    )
    _add_engine_arg(p)
    _add_cache_args(p)
    p.add_argument(
        "--cache-max-mb",
        type=int,
        default=None,
        metavar="MB",
        help="LRU size cap for the artifact store",
    )
    p = sub.add_parser(
        "route",
        help="run the consistent-hash router over replica daemons",
    )
    p.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: loopback only)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=8120,
        help="TCP port (0 = pick an ephemeral port and print it)",
    )
    p.add_argument(
        "--replica",
        action="append",
        required=True,
        metavar="HOST:PORT",
        help="replica daemon address; repeat once per ring member",
    )
    p.add_argument(
        "--vnodes",
        type=int,
        default=64,
        help="virtual points per replica on the hash ring",
    )
    p.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between replica health probes",
    )
    _add_engine_arg(p)

    args = parser.parse_args(argv)
    handler = {
        "list": cmd_list,
        "report": cmd_report,
        "metrics": cmd_metrics,
        "flamegraph": cmd_flamegraph,
        "trace": cmd_trace,
        "static": cmd_static,
        "verify": cmd_verify,
        "regions": cmd_regions,
        "diff": cmd_diff,
        "lint": cmd_lint,
        "suite": cmd_suite,
        "sweep": cmd_sweep,
        "serve": cmd_serve,
        "route": cmd_route,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
