"""JSON-safe codecs for the polyhedral value types.

The artifact store serializes folded DDGs, whose leaves are all built
from the types here: constraint rows (tuples of ints), polyhedra,
named integer sets, affine expressions/functions, affine maps, and
exact rationals.  Every encoder emits plain lists/dicts of ints and
strings; decoders rebuild through the ``from_normalized`` trusted
constructors -- the encoders emit the (idempotently) normalized
internal form, so re-normalizing on decode would only repeat gcd work
that dominates warm-path cost.  ``encode(decode(encode(x))) ==
encode(x)`` and decoded values compare equal to the originals.
Trusting content (not structure: row lengths are still checked) is
sound because the store reads through gzip, whose CRC32 already turns
any on-disk corruption into a cache miss.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence

from .affine import AffineExpr, AffineFunction
from .pmap import IMap
from .polyhedron import Polyhedron
from .pset import ISet, Space


def encode_polyhedron(p: Polyhedron) -> dict:
    return {
        "d": p.dim,
        "eq": [list(r) for r in p.eqs],
        "ge": [list(r) for r in p.ineqs],
    }


def decode_polyhedron(data: dict) -> Polyhedron:
    return Polyhedron.from_normalized(
        data["d"], eqs=data["eq"], ineqs=data["ge"]
    )


def encode_iset(s: ISet) -> dict:
    return {
        "names": list(s.space.names),
        "pieces": [encode_polyhedron(p) for p in s.pieces],
    }


def decode_iset(data: dict) -> ISet:
    return ISet(
        Space([str(n) for n in data["names"]]),
        [decode_polyhedron(p) for p in data["pieces"]],
    )


def encode_expr(e: AffineExpr) -> list:
    return [list(e.coeffs), e.const, e.den]


def decode_expr(data: Sequence) -> AffineExpr:
    coeffs, const, den = data
    return AffineExpr.from_normalized(coeffs, const, den)


def encode_function(fn: AffineFunction) -> list:
    return [encode_expr(e) for e in fn.exprs]


def decode_function(data: Sequence) -> AffineFunction:
    return AffineFunction([decode_expr(e) for e in data])


def encode_imap(m: IMap) -> dict:
    return {
        "in": list(m.in_space.names),
        "out": list(m.out_space.names),
        "pieces": [
            [encode_polyhedron(dom), encode_function(fn)]
            for dom, fn in m.pieces
        ],
    }


def decode_imap(data: dict) -> IMap:
    return IMap(
        Space([str(n) for n in data["in"]]),
        Space([str(n) for n in data["out"]]),
        [
            (decode_polyhedron(dom), decode_function(fn))
            for dom, fn in data["pieces"]
        ],
    )


def encode_fraction(f: Optional[Fraction]) -> Optional[List[int]]:
    if f is None:
        return None
    return [f.numerator, f.denominator]


def decode_fraction(data: Optional[Sequence]) -> Optional[Fraction]:
    if data is None:
        return None
    return Fraction(int(data[0]), int(data[1]))
