"""Integer polyhedra with exact Fourier-Motzkin elimination.

A :class:`Polyhedron` is the set of integer points ``x`` in ``Z^d``
satisfying a conjunction of affine constraints with integer
coefficients.  Constraint rows are tuples of length ``d + 1``::

    (c_0, ..., c_{d-1}, k)   meaning   c . x + k  (== 0 | >= 0)

This is deliberately a small library: the polyhedra produced by the
folding stage of POLY-PROF have single-digit dimensionality, so exact
Fourier-Motzkin projection -- despite its worst-case blowup -- is both
simple and fast enough, and avoids any dependence on external ILP
machinery.

Emptiness is decided exactly over the rationals (FM elimination down to
a constant system) strengthened with an integrality test on the
equality lattice; for the sets this reproduction manipulates (folded
iteration domains and dependence relations, which are built from
actually-executed integer points) this is exact in practice.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .linalg import dot, integer_solvable, normalize_row, vec_gcd

Row = Tuple[int, ...]


class Polyhedron:
    """A conjunction of integer affine constraints over ``d`` variables."""

    __slots__ = ("dim", "eqs", "ineqs")

    def __init__(
        self,
        dim: int,
        eqs: Iterable[Sequence[int]] = (),
        ineqs: Iterable[Sequence[int]] = (),
    ) -> None:
        self.dim = int(dim)
        self.eqs: Tuple[Row, ...] = tuple(
            self._check(normalize_row(r)) for r in eqs
        )
        self.ineqs: Tuple[Row, ...] = tuple(
            self._check(self._norm_ineq(r)) for r in ineqs
        )

    # -- construction helpers ------------------------------------------------

    def _check(self, row: Sequence[int]) -> Row:
        if len(row) != self.dim + 1:
            raise ValueError(
                f"constraint row of length {len(row)} for dim {self.dim}"
            )
        return tuple(int(x) for x in row)

    @staticmethod
    def _norm_ineq(row: Sequence[int]) -> Row:
        """Normalize ``c.x + k >= 0``: divide coeffs by their gcd g and
        tighten the constant to floor(k/g) (valid over the integers)."""
        coeffs, k = list(row[:-1]), int(row[-1])
        g = vec_gcd(coeffs)
        if g > 1:
            coeffs = [c // g for c in coeffs]
            k = k // g  # floor division tightens toward feasibility
        return tuple(coeffs) + (k,)

    @classmethod
    def from_normalized(
        cls,
        dim: int,
        eqs: Iterable[Sequence[int]] = (),
        ineqs: Iterable[Sequence[int]] = (),
    ) -> "Polyhedron":
        """Construct from rows that are *already* normalized -- i.e.
        rows read back from a :class:`Polyhedron` built through
        ``__init__`` (whose normalization is idempotent).  Skips the
        per-row gcd work, which dominates artifact decode; row lengths
        are still checked so a structurally wrong payload fails fast.
        """
        p = object.__new__(cls)
        p.dim = dim = int(dim)
        n = dim + 1
        for r in eqs:
            if len(r) != n:
                raise ValueError(
                    f"constraint row of length {len(r)} for dim {dim}"
                )
        for r in ineqs:
            if len(r) != n:
                raise ValueError(
                    f"constraint row of length {len(r)} for dim {dim}"
                )
        p.eqs = tuple(tuple(r) for r in eqs)
        p.ineqs = tuple(tuple(r) for r in ineqs)
        return p

    @classmethod
    def universe(cls, dim: int) -> "Polyhedron":
        return cls(dim)

    @classmethod
    def from_point(cls, point: Sequence[int]) -> "Polyhedron":
        d = len(point)
        eqs = []
        for i, v in enumerate(point):
            row = [0] * (d + 1)
            row[i] = 1
            row[d] = -int(v)
            eqs.append(row)
        return cls(d, eqs=eqs)

    @classmethod
    def box(cls, bounds: Sequence[Tuple[int, int]]) -> "Polyhedron":
        """Axis-aligned box ``lo_i <= x_i <= hi_i``."""
        d = len(bounds)
        ineqs = []
        for i, (lo, hi) in enumerate(bounds):
            row = [0] * (d + 1)
            row[i] = 1
            row[d] = -int(lo)
            ineqs.append(tuple(row))
            row = [0] * (d + 1)
            row[i] = -1
            row[d] = int(hi)
            ineqs.append(tuple(row))
        return cls(d, ineqs=ineqs)

    # -- basic queries --------------------------------------------------------

    def contains(self, point: Sequence[int]) -> bool:
        p = tuple(int(x) for x in point) + (1,)
        return all(dot(e, p) == 0 for e in self.eqs) and all(
            dot(i, p) >= 0 for i in self.ineqs
        )

    def constraints(self) -> Iterator[Tuple[Row, bool]]:
        """Yield ``(row, is_eq)`` pairs."""
        for e in self.eqs:
            yield e, True
        for i in self.ineqs:
            yield i, False

    def __repr__(self) -> str:
        return f"Polyhedron(dim={self.dim}, eqs={list(self.eqs)}, ineqs={list(self.ineqs)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polyhedron):
            return NotImplemented
        return self.is_subset(other) and other.is_subset(self)

    def __hash__(self) -> int:  # structural hash (not canonical)
        return hash((self.dim, frozenset(self.eqs), frozenset(self.ineqs)))

    # -- set operations --------------------------------------------------------

    def intersect(self, other: "Polyhedron") -> "Polyhedron":
        if self.dim != other.dim:
            raise ValueError("dimension mismatch")
        return Polyhedron(
            self.dim, eqs=self.eqs + other.eqs, ineqs=self.ineqs + other.ineqs
        )

    def add_constraint(self, row: Sequence[int], is_eq: bool = False) -> "Polyhedron":
        if is_eq:
            return Polyhedron(self.dim, eqs=self.eqs + (tuple(row),), ineqs=self.ineqs)
        return Polyhedron(self.dim, eqs=self.eqs, ineqs=self.ineqs + (tuple(row),))

    # -- elimination -----------------------------------------------------------

    def _substitute_eqs(self) -> Optional[Tuple[List[Row], List[Row]]]:
        """Gaussian-eliminate equalities; returns (eqs, ineqs) with the
        equality system triangularized, or ``None`` if an immediate
        contradiction (0 == k, k != 0) is found."""
        eqs = [list(e) for e in self.eqs]
        ineqs = [list(i) for i in self.ineqs]
        used: List[Tuple[int, List[int]]] = []  # (pivot var, row)
        for row in eqs:
            cur = list(row)
            for (pv, prow) in used:
                if cur[pv]:
                    a, b = prow[pv], cur[pv]
                    cur = [a * x - b * y for x, y in zip(cur, prow)]
            cur = list(normalize_row(cur))
            piv = next((j for j in range(self.dim) if cur[j]), None)
            if piv is None:
                if cur[self.dim] != 0:
                    return None
                continue
            used.append((piv, cur))
        out_eqs = [tuple(r) for (_, r) in used]
        # substitute pivots into inequalities
        out_ineqs: List[Row] = []
        for row in ineqs:
            cur = list(row)
            for (pv, prow) in used:
                if cur[pv]:
                    a, b = prow[pv], cur[pv]
                    # scale so pivot cancels; keep inequality direction:
                    # multiply cur by |a| and subtract sign-matched prow
                    if a > 0:
                        cur = [a * x - b * y for x, y in zip(cur, prow)]
                    else:
                        cur = [-a * x + b * y for x, y in zip(cur, prow)]
            out_ineqs.append(self._norm_ineq(cur))
        return out_eqs, out_ineqs

    def eliminate(self, var: int) -> "Polyhedron":
        """Project out variable ``var`` (exact over the rationals; the
        result is the rational shadow, a safe over-approximation of the
        integer projection)."""
        eqs = list(self.eqs)
        ineqs = list(self.ineqs)
        # prefer elimination through an equality
        pivot_eq = next((e for e in eqs if e[var]), None)
        if pivot_eq is not None:
            new_eqs = []
            for e in eqs:
                if e is pivot_eq:
                    continue
                if e[var]:
                    a, b = pivot_eq[var], e[var]
                    e = tuple(a * x - b * y for x, y in zip(e, pivot_eq))
                new_eqs.append(e)
            new_ineqs = []
            for i in ineqs:
                if i[var]:
                    a, b = pivot_eq[var], i[var]
                    if a > 0:
                        i = tuple(a * x - b * y for x, y in zip(i, pivot_eq))
                    else:
                        i = tuple(-a * x + b * y for x, y in zip(i, pivot_eq))
                new_ineqs.append(i)
            return self._drop_var(var, new_eqs, new_ineqs)
        # Fourier-Motzkin on inequalities
        pos = [i for i in ineqs if i[var] > 0]
        neg = [i for i in ineqs if i[var] < 0]
        rest = [i for i in ineqs if i[var] == 0]
        combos: List[Row] = []
        for p in pos:
            for n in neg:
                row = tuple(
                    (-n[var]) * x + p[var] * y for x, y in zip(p, n)
                )
                combos.append(row)
        return self._drop_var(var, eqs, rest + combos)

    def _drop_var(
        self, var: int, eqs: Iterable[Sequence[int]], ineqs: Iterable[Sequence[int]]
    ) -> "Polyhedron":
        def drop(row: Sequence[int]) -> Tuple[int, ...]:
            return tuple(row[:var]) + tuple(row[var + 1 :])

        new_eqs = {normalize_row(drop(e)) for e in eqs}
        new_ineqs = {self._norm_ineq(drop(i)) for i in ineqs}
        # prune trivially-true inequalities (0 >= -k)
        new_ineqs = {
            i for i in new_ineqs if any(i[:-1]) or i[-1] < 0
        }
        new_eqs = {e for e in new_eqs if any(e)}
        return Polyhedron(self.dim - 1, eqs=new_eqs, ineqs=new_ineqs)

    def project_onto(self, keep: Sequence[int]) -> "Polyhedron":
        """Project onto the listed variables (in the given order)."""
        keep = list(keep)
        p = self
        # eliminate in descending index order so indices stay valid
        mapping = list(range(self.dim))
        for v in sorted(set(range(self.dim)) - set(keep), reverse=True):
            p = p.eliminate(mapping.index(v))
            mapping.remove(v)
        if mapping != keep:
            # permute remaining dims to the requested order
            perm = [mapping.index(k) for k in keep]
            p = p.permute(perm)
        return p

    def permute(self, perm: Sequence[int]) -> "Polyhedron":
        """Reorder variables: new var ``i`` is old var ``perm[i]``."""
        def permrow(row: Row) -> Row:
            return tuple(row[p] for p in perm) + (row[self.dim],)

        return Polyhedron(
            self.dim,
            eqs=[permrow(e) for e in self.eqs],
            ineqs=[permrow(i) for i in self.ineqs],
        )

    # -- emptiness / bounds -----------------------------------------------------

    def is_empty(self) -> bool:
        """Exact rational emptiness + equality-lattice integrality test."""
        sub = self._substitute_eqs()
        if sub is None:
            return True
        eqs, _ = sub
        if eqs and not integer_solvable(eqs):
            return True
        p = self
        for v in range(self.dim - 1, -1, -1):
            p = p.eliminate(v)
            # early contradiction check on constant rows
            for i in p.ineqs:
                if not any(i[:-1]) and i[-1] < 0:
                    return True
            for e in p.eqs:
                if not any(e[:-1]) and e[-1] != 0:
                    return True
        for i in p.ineqs:
            if i[-1] < 0:
                return True
        for e in p.eqs:
            if e[-1] != 0:
                return True
        return False

    def is_subset(self, other: "Polyhedron") -> bool:
        """``self`` subset-of ``other`` (rational test per constraint)."""
        if self.is_empty():
            return True
        for row, is_eq in other.constraints():
            if is_eq:
                # self must satisfy row == 0 everywhere: both >= 0 and <= 0
                neg = tuple(-x for x in row)
                if not self._implies(row) or not self._implies(neg):
                    return False
            else:
                if not self._implies(row):
                    return False
        return True

    def _implies(self, row: Sequence[int]) -> bool:
        """Does every point of self satisfy ``row . (x,1) >= 0``?

        Checked as emptiness of ``self AND (row . (x,1) <= -1)``.
        """
        neg = tuple(-x for x in row[:-1]) + (-int(row[-1]) - 1,)
        return self.add_constraint(neg).is_empty()

    def bounds(self, expr: Sequence[int]) -> Tuple[Optional[Fraction], Optional[Fraction]]:
        """Rational (min, max) of the affine expression ``expr . (x, 1)``
        over the polyhedron; ``None`` marks unboundedness.  Raises
        ``ValueError`` on an empty polyhedron."""
        if len(expr) != self.dim + 1:
            raise ValueError("expression arity mismatch")
        # introduce t as a fresh last variable with t - expr = 0
        d = self.dim
        eqs = [e[:d] + (0,) + e[d:] for e in self.eqs]
        ineqs = [i[:d] + (0,) + i[d:] for i in self.ineqs]
        t_eq = tuple(-int(c) for c in expr[:d]) + (1, -int(expr[d]))
        p = Polyhedron(d + 1, eqs=eqs + [t_eq], ineqs=ineqs)
        for v in range(d - 1, -1, -1):
            p = p.eliminate(v)
        # p is now 1-D over t
        lo: Optional[Fraction] = None
        hi: Optional[Fraction] = None
        feasible = True
        for e in p.eqs:
            c, k = e[0], e[1]
            if c == 0:
                if k != 0:
                    feasible = False
                continue
            v = Fraction(-k, c)
            lo = v if lo is None or v > lo else lo
            hi = v if hi is None or v < hi else hi
        for i in p.ineqs:
            c, k = i[0], i[1]
            if c == 0:
                if k < 0:
                    feasible = False
                continue
            if c > 0:
                v = Fraction(-k, c)
                lo = v if lo is None or v > lo else lo
            else:
                v = Fraction(-k, c)
                hi = v if hi is None or v < hi else hi
        if not feasible or (lo is not None and hi is not None and lo > hi):
            raise ValueError("bounds() on empty polyhedron")
        return lo, hi

    def var_bounds(self, var: int) -> Tuple[Optional[Fraction], Optional[Fraction]]:
        expr = [0] * (self.dim + 1)
        expr[var] = 1
        return self.bounds(expr)

    # -- integer points -----------------------------------------------------------

    def fix(self, var: int, value: int) -> "Polyhedron":
        """Substitute an integer value for a variable (dim shrinks by 1)."""
        def subst(row: Row) -> Tuple[int, ...]:
            out = list(row[:var]) + list(row[var + 1 :])
            out[-1] = row[self.dim] + row[var] * int(value)
            return tuple(out)

        return Polyhedron(
            self.dim - 1,
            eqs=[subst(e) for e in self.eqs],
            ineqs=[subst(i) for i in self.ineqs],
        )

    def points(self, limit: int = 2_000_000) -> Iterator[Tuple[int, ...]]:
        """Enumerate all integer points (requires boundedness).

        Points are produced in lexicographic order.  ``limit`` guards
        against runaway enumeration.
        """
        count = [0]

        def rec(p: Polyhedron, prefix: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
            if p.dim == 0:
                ok = all(e[-1] == 0 for e in p.eqs) and all(
                    i[-1] >= 0 for i in p.ineqs
                )
                if ok:
                    count[0] += 1
                    if count[0] > limit:
                        raise RuntimeError("points(): enumeration limit exceeded")
                    yield prefix
                return
            if p.is_empty():
                return
            lo, hi = p.var_bounds(0)
            if lo is None or hi is None:
                raise ValueError("points() on unbounded polyhedron")
            import math

            lo_i = math.ceil(lo)
            hi_i = math.floor(hi)
            for v in range(lo_i, hi_i + 1):
                yield from rec(p.fix(0, v), prefix + (v,))

        yield from rec(self, ())

    def card(self) -> int:
        """Number of integer points (bounded polyhedra only).

        Enumerates outer dimensions recursively and closes the innermost
        dimension in constant time, so counting an ``n``-point 2-D
        triangle costs O(sqrt(n)) recursion steps.
        """
        import math

        def rec(p: Polyhedron) -> int:
            if p.dim == 0:
                ok = all(e[-1] == 0 for e in p.eqs) and all(
                    i[-1] >= 0 for i in p.ineqs
                )
                return 1 if ok else 0
            if p.dim == 1:
                try:
                    lo, hi = p.var_bounds(0)
                except ValueError:
                    return 0
                if lo is None or hi is None:
                    raise ValueError("card() on unbounded polyhedron")
                lo_i, hi_i = math.ceil(lo), math.floor(hi)
                if hi_i < lo_i:
                    return 0
                # account for equality/lattice constraints in 1-D
                if p.eqs:
                    total = 0
                    for v in range(lo_i, hi_i + 1):
                        if p.contains((v,)):
                            total += 1
                    return total
                return hi_i - lo_i + 1
            if p.is_empty():
                return 0
            lo, hi = p.var_bounds(0)
            if lo is None or hi is None:
                raise ValueError("card() on unbounded polyhedron")
            total = 0
            for v in range(math.ceil(lo), math.floor(hi) + 1):
                total += rec(p.fix(0, v))
            return total

        return rec(self)

    def sample(self) -> Optional[Tuple[int, ...]]:
        """One integer point (lexicographically smallest), or None."""
        import math

        def rec(p: Polyhedron, prefix: Tuple[int, ...]) -> Optional[Tuple[int, ...]]:
            if p.dim == 0:
                ok = all(e[-1] == 0 for e in p.eqs) and all(
                    i[-1] >= 0 for i in p.ineqs
                )
                return prefix if ok else None
            if p.is_empty():
                return None
            lo, hi = p.var_bounds(0)
            if lo is None:
                lo = Fraction(-(10 ** 9))
            if hi is None:
                hi = Fraction(10 ** 9)
            for v in range(math.ceil(lo), math.floor(hi) + 1):
                r = rec(p.fix(0, v), prefix + (v,))
                if r is not None:
                    return r
            return None

        return rec(self, ())
