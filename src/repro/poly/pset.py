"""Named integer sets: finite unions of polyhedra over a named space.

The ISL-flavoured user-facing layer: a :class:`Space` carries variable
names (canonical induction variables like ``cj``, ``ck``), a
:class:`ISet` is a finite union of :class:`Polyhedron` pieces in that
space.  The folding stage produces these as statement iteration
domains (paper Fig. 3k, Table 2).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from .polyhedron import Polyhedron


class Space:
    """An ordered tuple of variable names."""

    __slots__ = ("names",)

    def __init__(self, names: Sequence[str]) -> None:
        self.names: Tuple[str, ...] = tuple(names)
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"duplicate names in space: {self.names}")

    @property
    def dim(self) -> int:
        return len(self.names)

    def index(self, name: str) -> int:
        return self.names.index(name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Space):
            return NotImplemented
        return self.names == other.names

    def __hash__(self) -> int:
        return hash(self.names)

    def __repr__(self) -> str:
        return f"Space{self.names}"


class ISet:
    """Finite union of polyhedra over a named space."""

    __slots__ = ("space", "pieces")

    def __init__(self, space: Space, pieces: Iterable[Polyhedron] = ()) -> None:
        self.space = space
        ps: List[Polyhedron] = []
        for p in pieces:
            if p.dim != space.dim:
                raise ValueError("piece dimension mismatch")
            ps.append(p)
        self.pieces: Tuple[Polyhedron, ...] = tuple(ps)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def empty(cls, space: Space) -> "ISet":
        return cls(space)

    @classmethod
    def universe(cls, space: Space) -> "ISet":
        return cls(space, [Polyhedron.universe(space.dim)])

    @classmethod
    def from_points(cls, space: Space, points: Iterable[Sequence[int]]) -> "ISet":
        return cls(space, [Polyhedron.from_point(p) for p in points])

    # -- queries -------------------------------------------------------------------

    def is_empty(self) -> bool:
        return all(p.is_empty() for p in self.pieces)

    def contains(self, point: Sequence[int]) -> bool:
        return any(p.contains(point) for p in self.pieces)

    def card(self) -> int:
        """Number of integer points.  Pieces produced by the folder are
        disjoint; overlapping pieces would be double-counted, so the
        folder guarantees disjointness."""
        return sum(p.card() for p in self.pieces)

    def points(self) -> Iterator[Tuple[int, ...]]:
        for p in self.pieces:
            yield from p.points()

    # -- operations ------------------------------------------------------------------

    def union(self, other: "ISet") -> "ISet":
        if self.space != other.space:
            raise ValueError("space mismatch")
        return ISet(self.space, self.pieces + other.pieces)

    def intersect(self, other: "ISet") -> "ISet":
        if self.space != other.space:
            raise ValueError("space mismatch")
        out = [
            a.intersect(b)
            for a in self.pieces
            for b in other.pieces
        ]
        return ISet(self.space, [p for p in out if not p.is_empty()])

    def coalesce(self) -> "ISet":
        """Drop empty and subsumed pieces (cheap canonicalization)."""
        live = [p for p in self.pieces if not p.is_empty()]
        out: List[Polyhedron] = []
        for i, p in enumerate(live):
            if any(
                j != i and p.is_subset(q)
                for j, q in enumerate(live)
                if not (j < i and q.is_subset(p))
            ):
                continue
            out.append(p)
        return ISet(self.space, out)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ISet):
            return NotImplemented
        if self.space != other.space:
            return False
        # mutual inclusion piecewise (sufficient for folder-produced sets;
        # falls back to point sampling only in tests)
        return self._subset(other) and other._subset(self)

    def _subset(self, other: "ISet") -> bool:
        for p in self.pieces:
            if p.is_empty():
                continue
            if not any(p.is_subset(q) for q in other.pieces):
                # piece may be covered by a union; approximate via points
                try:
                    if all(other.contains(pt) for pt in p.points(limit=10000)):
                        continue
                except (RuntimeError, ValueError):
                    pass
                return False
        return True

    def __hash__(self) -> int:
        return hash((self.space, self.pieces))

    def pretty(self) -> str:
        if not self.pieces:
            return "{ }"
        names = self.space.names
        parts = []
        for p in self.pieces:
            cons = []
            for e in p.eqs:
                cons.append(_row_str(e, names, "="))
            for i in p.ineqs:
                cons.append(_row_str(i, names, ">="))
            vars_ = ", ".join(names)
            parts.append(f"[{vars_}] : " + " and ".join(cons) if cons else f"[{vars_}]")
        return "{ " + "; ".join(parts) + " }"

    def __repr__(self) -> str:
        return f"ISet({self.pretty()})"


def _row_str(row: Sequence[int], names: Sequence[str], op: str) -> str:
    terms = []
    for c, n in zip(row, names):
        if c == 0:
            continue
        if c == 1:
            terms.append(n)
        elif c == -1:
            terms.append(f"-{n}")
        else:
            terms.append(f"{c}{n}")
    k = row[len(names)]
    if k or not terms:
        terms.append(str(k))
    return " + ".join(terms).replace("+ -", "- ") + f" {op} 0"
