"""Exact linear algebra over the integers and rationals.

This module is the numeric kernel of :mod:`repro.poly`, the small
integer-set library that stands in for ISL in this reproduction.  All
routines are exact: integer matrices are manipulated with fraction-free
(Bareiss) elimination or with :class:`fractions.Fraction` entries, never
with floating point, because polyhedral legality questions (is this
dependence distance non-negative? is this set empty?) cannot tolerate
rounding.

The matrices involved are tiny (loop depths are single digits), so the
implementation favours clarity over asymptotic cleverness.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import List, Optional, Sequence, Tuple

Vector = Tuple[int, ...]


def vec_gcd(vec: Sequence[int]) -> int:
    """Greatest common divisor of a vector's entries (0 for all-zero)."""
    g = 0
    for x in vec:
        g = gcd(g, abs(int(x)))
        if g == 1:
            return 1
    return g


def normalize_row(row: Sequence[int]) -> Vector:
    """Divide a row of integers by the gcd of its entries.

    All-zero rows are returned unchanged.  Used to canonicalize
    constraint rows so that syntactically equal constraints compare
    equal.
    """
    g = vec_gcd(row)
    if g <= 1:
        return tuple(int(x) for x in row)
    return tuple(int(x) // g for x in row)


def dot(a: Sequence[int], b: Sequence[int]) -> int:
    return sum(int(x) * int(y) for x, y in zip(a, b))


def solve_rational(
    rows: Sequence[Sequence[Fraction]], rhs: Sequence[Fraction]
) -> Optional[List[Fraction]]:
    """Solve ``A x = b`` exactly over the rationals.

    Returns one solution (free variables pinned to 0) or ``None`` when
    the system is inconsistent.  Gaussian elimination with exact
    :class:`Fraction` arithmetic.
    """
    m = [list(r) + [rhs[i]] for i, r in enumerate(rows)]
    nrows = len(m)
    ncols = len(rows[0]) if nrows else 0
    pivots: List[Tuple[int, int]] = []
    r = 0
    for c in range(ncols):
        # find pivot
        piv = None
        for i in range(r, nrows):
            if m[i][c] != 0:
                piv = i
                break
        if piv is None:
            continue
        m[r], m[piv] = m[piv], m[r]
        pv = m[r][c]
        m[r] = [x / pv for x in m[r]]
        for i in range(nrows):
            if i != r and m[i][c] != 0:
                f = m[i][c]
                m[i] = [x - f * y for x, y in zip(m[i], m[r])]
        pivots.append((r, c))
        r += 1
        if r == nrows:
            break
    # consistency: rows with zero coefficients but nonzero rhs
    for i in range(nrows):
        if all(x == 0 for x in m[i][:ncols]) and m[i][ncols] != 0:
            return None
    sol = [Fraction(0)] * ncols
    for (ri, ci) in pivots:
        sol[ci] = m[ri][ncols]
    return sol


def nullspace_rational(rows: Sequence[Sequence[Fraction]]) -> List[List[Fraction]]:
    """Basis of the (right) nullspace of a rational matrix."""
    nrows = len(rows)
    ncols = len(rows[0]) if nrows else 0
    m = [list(r) for r in rows]
    pivots: List[int] = []
    r = 0
    for c in range(ncols):
        piv = None
        for i in range(r, nrows):
            if m[i][c] != 0:
                piv = i
                break
        if piv is None:
            continue
        m[r], m[piv] = m[piv], m[r]
        pv = m[r][c]
        m[r] = [x / pv for x in m[r]]
        for i in range(nrows):
            if i != r and m[i][c] != 0:
                f = m[i][c]
                m[i] = [x - f * y for x, y in zip(m[i], m[r])]
        pivots.append(c)
        r += 1
        if r == nrows:
            break
    free = [c for c in range(ncols) if c not in pivots]
    basis = []
    for fc in free:
        v = [Fraction(0)] * ncols
        v[fc] = Fraction(1)
        for ri, pc in enumerate(pivots):
            v[pc] = -m[ri][fc]
        basis.append(v)
    return basis


def rank(rows: Sequence[Sequence[int]]) -> int:
    """Rank of an integer matrix (computed over the rationals)."""
    if not rows:
        return 0
    m = [[Fraction(x) for x in r] for r in rows]
    nrows, ncols = len(m), len(m[0])
    r = 0
    for c in range(ncols):
        piv = None
        for i in range(r, nrows):
            if m[i][c] != 0:
                piv = i
                break
        if piv is None:
            continue
        m[r], m[piv] = m[piv], m[r]
        pv = m[r][c]
        for i in range(r + 1, nrows):
            if m[i][c] != 0:
                f = m[i][c] / pv
                m[i] = [x - f * y for x, y in zip(m[i], m[r])]
        r += 1
        if r == nrows:
            break
    return r


def hermite_normal_form(rows: Sequence[Sequence[int]]) -> List[List[int]]:
    """Row-style Hermite normal form of an integer matrix.

    Returns the HNF rows (nonzero rows only).  Used to answer integer
    solvability questions for equality systems: ``A x = b`` has an
    integer solution iff ``b`` reduces to zero against the HNF of the
    rows of ``A`` augmented appropriately.
    """
    m = [list(map(int, r)) for r in rows if any(r)]
    if not m:
        return []
    ncols = len(m[0])
    r = 0
    for c in range(ncols):
        # find row with smallest nonzero |entry| in column c at/below r
        while True:
            piv = None
            best = None
            for i in range(r, len(m)):
                v = abs(m[i][c])
                if v and (best is None or v < best):
                    best, piv = v, i
            if piv is None:
                break
            m[r], m[piv] = m[piv], m[r]
            if m[r][c] < 0:
                m[r] = [-x for x in m[r]]
            done = True
            for i in range(r + 1, len(m)):
                if m[i][c]:
                    q = m[i][c] // m[r][c]
                    m[i] = [x - q * y for x, y in zip(m[i], m[r])]
                    if m[i][c]:
                        done = False
            if done:
                break
        if piv is not None:
            # reduce entries above the pivot
            for i in range(r):
                if m[i][c]:
                    q = m[i][c] // m[r][c]
                    m[i] = [x - q * y for x, y in zip(m[i], m[r])]
            r += 1
            if r == len(m):
                break
    return [row for row in m if any(row)]


def integer_solvable(eqs: Sequence[Sequence[int]]) -> bool:
    """Check whether the equality system has an integer solution.

    Each row is ``(c_0, ..., c_{d-1}, k)`` meaning ``sum c_i x_i + k == 0``.
    The check is exact: eliminate variables preserving integrality via
    HNF-style reduction and test the resulting divisibility conditions.
    """
    rows = [list(map(int, r)) for r in eqs if any(r)]
    if not rows:
        return True
    ncols = len(rows[0]) - 1
    # HNF of coefficient part, carrying the constant column along.
    m = rows
    r = 0
    for c in range(ncols):
        while True:
            piv = None
            best = None
            for i in range(r, len(m)):
                v = abs(m[i][c])
                if v and (best is None or v < best):
                    best, piv = v, i
            if piv is None:
                break
            m[r], m[piv] = m[piv], m[r]
            done = True
            for i in range(r + 1, len(m)):
                if m[i][c]:
                    q = m[i][c] // m[r][c]
                    m[i] = [x - q * y for x, y in zip(m[i], m[r])]
                    if m[i][c]:
                        done = False
            if done:
                break
        if piv is not None:
            r += 1
            if r == len(m):
                break
    # rows with all-zero coefficients must have zero constant;
    # pivot rows give divisibility conditions solved greedily from the
    # last pivot upward -- but since each pivot variable is free, any
    # row with a nonzero coefficient is satisfiable over Z iff the gcd
    # of the coefficients divides the constant.
    for row in m:
        coeffs, k = row[:ncols], row[ncols]
        g = vec_gcd(coeffs)
        if g == 0:
            if k != 0:
                return False
        elif k % g != 0:
            return False
    return True


def solve_int(
    rows: Sequence[Sequence[int]], rhs: Sequence[int]
) -> Optional[List[Fraction]]:
    """Solve ``A x = b`` exactly for integer input, fraction-free.

    Same contract as :func:`solve_rational` (free variables pinned to
    0, ``None`` on inconsistency) but eliminates with integer
    cross-multiplication and gcd normalization, constructing Fractions
    only for the final back-substitution -- an order of magnitude
    faster on the folding hot path.
    """
    nrows = len(rows)
    ncols = len(rows[0]) if nrows else 0
    m = [list(map(int, r)) + [int(rhs[i])] for i, r in enumerate(rows)]
    pivots: List[Tuple[int, int]] = []
    r = 0
    for c in range(ncols):
        piv = None
        for i in range(r, nrows):
            if m[i][c]:
                piv = i
                break
        if piv is None:
            continue
        m[r], m[piv] = m[piv], m[r]
        prow = m[r]
        a = prow[c]
        for i in range(nrows):
            if i != r and m[i][c]:
                b = m[i][c]
                row = m[i]
                new = [a * x - b * y for x, y in zip(row, prow)]
                g = vec_gcd(new)
                if g > 1:
                    new = [x // g for x in new]
                m[i] = new
        pivots.append((r, c))
        r += 1
        if r == nrows:
            break
    for i in range(nrows):
        if m[i][ncols] != 0 and not any(m[i][:ncols]):
            return None
    sol = [Fraction(0)] * ncols
    for (ri, ci) in pivots:
        sol[ci] = Fraction(m[ri][ncols], m[ri][ci])
    return sol
