"""Affine expressions and vector-valued affine functions.

An :class:`AffineExpr` is ``(c . x + k) / den`` with integer
coefficients and a positive integer denominator.  The folding stage
fits these exactly to observed ``(point, value)`` streams; the
scheduler manipulates them when composing transformations.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import List, Optional, Sequence, Tuple

from .linalg import solve_int


class AffineExpr:
    """``value(x) = (coeffs . x + const) / den`` with ``den >= 1``."""

    __slots__ = ("coeffs", "const", "den")

    def __init__(self, coeffs: Sequence[int], const: int, den: int = 1) -> None:
        if den == 0:
            raise ValueError("zero denominator")
        if den < 0:
            coeffs = [-c for c in coeffs]
            const, den = -const, -den
        g = abs(den)
        for c in coeffs:
            g = gcd(g, abs(int(c)))
        g = gcd(g, abs(int(const)))
        if g > 1:
            coeffs = [int(c) // g for c in coeffs]
            const, den = int(const) // g, den // g
        self.coeffs: Tuple[int, ...] = tuple(int(c) for c in coeffs)
        self.const: int = int(const)
        self.den: int = int(den)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_normalized(
        cls, coeffs: Sequence[int], const: int, den: int
    ) -> "AffineExpr":
        """Construct from an already-reduced ``(coeffs, const, den)``
        triple (``den >= 1``, gcd 1) -- the form ``__init__`` produces
        and the artifact codec serializes.  Skips the gcd reduction,
        which dominates artifact decode."""
        e = object.__new__(cls)
        e.coeffs = tuple(coeffs)
        e.const = const
        e.den = den
        return e

    @classmethod
    def constant(cls, value: int, dim: int) -> "AffineExpr":
        return cls((0,) * dim, value)

    @classmethod
    def var(cls, index: int, dim: int) -> "AffineExpr":
        c = [0] * dim
        c[index] = 1
        return cls(c, 0)

    @classmethod
    def from_fractions(cls, coeffs: Sequence[Fraction], const: Fraction) -> "AffineExpr":
        den = const.denominator
        for c in coeffs:
            den = den * c.denominator // gcd(den, c.denominator)
        return cls(
            [int(c * den) for c in coeffs], int(const * den), den
        )

    # -- evaluation -------------------------------------------------------------

    @property
    def dim(self) -> int:
        return len(self.coeffs)

    def __call__(self, point: Sequence[int]) -> Fraction:
        num = sum(c * int(p) for c, p in zip(self.coeffs, point)) + self.const
        return Fraction(num, self.den)

    def eval_int(self, point: Sequence[int]) -> int:
        """Evaluate, requiring an integer result."""
        v = self(point)
        if v.denominator != 1:
            raise ValueError(f"non-integer value {v} at {tuple(point)}")
        return int(v)

    def is_integral(self) -> bool:
        return self.den == 1

    def is_constant(self) -> bool:
        return not any(self.coeffs)

    # -- algebra ---------------------------------------------------------------

    def __add__(self, other: "AffineExpr") -> "AffineExpr":
        self._same_dim(other)
        d = self.den * other.den
        return AffineExpr(
            [a * other.den + b * self.den for a, b in zip(self.coeffs, other.coeffs)],
            self.const * other.den + other.const * self.den,
            d,
        )

    def __sub__(self, other: "AffineExpr") -> "AffineExpr":
        return self + other.scale(-1)

    def scale(self, k: int) -> "AffineExpr":
        return AffineExpr([c * k for c in self.coeffs], self.const * k, self.den)

    def _same_dim(self, other: "AffineExpr") -> None:
        if self.dim != other.dim:
            raise ValueError("arity mismatch")

    def substitute(self, exprs: Sequence["AffineExpr"]) -> "AffineExpr":
        """Compose: this expression applied to ``x_i = exprs[i](y)``."""
        if len(exprs) != self.dim:
            raise ValueError("arity mismatch")
        out_dim = exprs[0].dim if exprs else 0
        acc = AffineExpr.constant(0, out_dim)
        for c, e in zip(self.coeffs, exprs):
            if c:
                acc = acc + e.scale(c)
        acc = acc + AffineExpr.constant(self.const, out_dim)
        if self.den != 1:
            acc = AffineExpr(acc.coeffs, acc.const, acc.den * self.den)
        return acc

    # -- misc --------------------------------------------------------------------

    def as_row(self) -> Tuple[int, ...]:
        """Constraint-row form ``coeffs + (const,)`` (requires den == 1)."""
        if self.den != 1:
            raise ValueError("as_row() requires an integral expression")
        return self.coeffs + (self.const,)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return (
            self.coeffs == other.coeffs
            and self.const == other.const
            and self.den == other.den
        )

    def __hash__(self) -> int:
        return hash((self.coeffs, self.const, self.den))

    def pretty(self, names: Optional[Sequence[str]] = None) -> str:
        names = list(names) if names else [f"i{j}" for j in range(self.dim)]
        parts: List[str] = []
        for c, n in zip(self.coeffs, names):
            if c == 0:
                continue
            if c == 1:
                parts.append(n)
            elif c == -1:
                parts.append(f"-{n}")
            else:
                parts.append(f"{c}{n}")
        if self.const or not parts:
            parts.append(str(self.const))
        s = " + ".join(parts).replace("+ -", "- ")
        if self.den != 1:
            s = f"({s})/{self.den}"
        return s

    def __repr__(self) -> str:
        return f"AffineExpr({self.pretty()})"


class AffineFunction:
    """A vector of affine expressions sharing one input space."""

    __slots__ = ("exprs",)

    def __init__(self, exprs: Sequence[AffineExpr]) -> None:
        self.exprs: Tuple[AffineExpr, ...] = tuple(exprs)
        if len({e.dim for e in self.exprs}) > 1:
            raise ValueError("mixed arities")

    @property
    def in_dim(self) -> int:
        return self.exprs[0].dim if self.exprs else 0

    @property
    def out_dim(self) -> int:
        return len(self.exprs)

    def __call__(self, point: Sequence[int]) -> Tuple[Fraction, ...]:
        return tuple(e(point) for e in self.exprs)

    def eval_int(self, point: Sequence[int]) -> Tuple[int, ...]:
        return tuple(e.eval_int(point) for e in self.exprs)

    def compose(self, inner: "AffineFunction") -> "AffineFunction":
        """``self o inner``."""
        return AffineFunction([e.substitute(inner.exprs) for e in self.exprs])

    def __getitem__(self, i: int) -> AffineExpr:
        return self.exprs[i]

    def __len__(self) -> int:
        return len(self.exprs)

    def __iter__(self):
        return iter(self.exprs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineFunction):
            return NotImplemented
        return self.exprs == other.exprs

    def __hash__(self) -> int:
        return hash(self.exprs)

    def pretty(self, names: Optional[Sequence[str]] = None) -> str:
        return "(" + ", ".join(e.pretty(names) for e in self.exprs) + ")"

    def __repr__(self) -> str:
        return f"AffineFunction{self.pretty()}"


def fit_affine(
    points: Sequence[Sequence[int]], values: Sequence[int]
) -> Optional[AffineExpr]:
    """Fit one exact affine expression through ``(point, value)`` pairs.

    Returns ``None`` when no affine expression interpolates the data
    exactly.  This is the workhorse of SCEV recognition and of label
    folding: a solution is found via exact rational least squares on
    the normal system (here: direct solve of the interpolation system)
    and then *verified* against every sample, so a returned expression
    is exact by construction.
    """
    if not points:
        return None
    d = len(points[0])
    # constant column first: underdetermined systems then pin their free
    # coordinate coefficients to 0 and prefer the constant solution
    # (e.g. a single sample (7,) -> 8 fits as "8", not "(8/7) i0")
    rows = [[1] + [int(c) for c in p] for p in points]
    sol = solve_int(rows, [int(v) for v in values])
    if sol is None:
        return None
    expr = AffineExpr.from_fractions(sol[1:], sol[0])
    for p, v in zip(points, values):
        if expr(p) != v:
            return None
    return expr


def fit_affine_function(
    points: Sequence[Sequence[int]], vectors: Sequence[Sequence[int]]
) -> Optional[AffineFunction]:
    """Fit an affine function for vector labels; all-or-nothing."""
    if not vectors:
        return None
    m = len(vectors[0])
    exprs = []
    for j in range(m):
        e = fit_affine(points, [v[j] for v in vectors])
        if e is None:
            return None
        exprs.append(e)
    return AffineFunction(exprs)
