"""Small exact integer-set library (ISL substitute).

Public surface:

* :class:`Polyhedron` -- conjunction of affine constraints over Z^d.
* :class:`Space`, :class:`ISet` -- named finite unions of polyhedra.
* :class:`AffineExpr`, :class:`AffineFunction` -- exact affine forms.
* :class:`IMap` -- piecewise-affine relations (dependence relations).
* :func:`fit_affine`, :func:`fit_affine_function` -- exact fitting.
"""

from .affine import AffineExpr, AffineFunction, fit_affine, fit_affine_function
from .pmap import IMap
from .polyhedron import Polyhedron
from .pset import ISet, Space

__all__ = [
    "AffineExpr",
    "AffineFunction",
    "IMap",
    "ISet",
    "Polyhedron",
    "Space",
    "fit_affine",
    "fit_affine_function",
]
