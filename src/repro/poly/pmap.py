"""Affine relations (maps) between named integer spaces.

A :class:`IMap` pairs a domain :class:`~repro.poly.pset.ISet` with a
piecewise-constant assignment of one :class:`AffineFunction` per
domain piece.  POLY-PROF's folded dependences are exactly this shape
(Table 2 of the paper): a polyhedron over the *consumer* coordinates
plus an affine expression giving the *producer* coordinates.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from .affine import AffineExpr, AffineFunction
from .polyhedron import Polyhedron
from .pset import ISet, Space


class IMap:
    """Union of (polyhedron, affine function) pieces: domain -> range."""

    __slots__ = ("in_space", "out_space", "pieces")

    def __init__(
        self,
        in_space: Space,
        out_space: Space,
        pieces: Iterable[Tuple[Polyhedron, AffineFunction]] = (),
    ) -> None:
        self.in_space = in_space
        self.out_space = out_space
        ps: List[Tuple[Polyhedron, AffineFunction]] = []
        for dom, fn in pieces:
            if dom.dim != in_space.dim:
                raise ValueError("domain dimension mismatch")
            if fn.out_dim != out_space.dim:
                raise ValueError("range dimension mismatch")
            # an empty function (0-D range) has no expressions to carry
            # its input arity, so only check non-empty functions
            if fn.exprs and fn.in_dim != in_space.dim:
                raise ValueError("function arity mismatch")
            ps.append((dom, fn))
        self.pieces: Tuple[Tuple[Polyhedron, AffineFunction], ...] = tuple(ps)

    def domain(self) -> ISet:
        return ISet(self.in_space, [dom for dom, _ in self.pieces])

    def apply(self, point: Sequence[int]) -> Optional[Tuple[int, ...]]:
        """Image of one point (None if outside the domain)."""
        for dom, fn in self.pieces:
            if dom.contains(point):
                return fn.eval_int(point)
        return None

    def is_empty(self) -> bool:
        return all(dom.is_empty() for dom, _ in self.pieces)

    # -- dependence-analysis helpers ------------------------------------------------

    def delta_exprs(self) -> List[Tuple[Polyhedron, List[AffineExpr]]]:
        """Per piece, the componentwise difference ``in - out`` on the
        common dimensions (consumer minus producer for dependences,
        i.e. the dependence *distance* as a function of the consumer).
        Requires ``in_space.dim == out_space.dim``.
        """
        if self.in_space.dim != self.out_space.dim:
            raise ValueError("delta on heterogeneous map")
        out = []
        d = self.in_space.dim
        for dom, fn in self.pieces:
            deltas = [
                AffineExpr.var(j, d) - fn[j] for j in range(d)
            ]
            out.append((dom, deltas))
        return out

    def delta_signs(self) -> List[Tuple[str, ...]]:
        """Per piece, the sign pattern of the dependence distance along
        each common dimension: '+', '-', '0', '+0' (>=0 with 0 attained
        possible), '-0', or '*' (both signs occur).

        Signs are computed exactly from rational bounds of the delta
        expression over the piece's (nonempty) domain.
        """
        patterns = []
        for dom, deltas in self.delta_exprs():
            if dom.is_empty():
                continue
            sig = []
            for e in deltas:
                if not e.is_integral():
                    # scale away the denominator: sign is unaffected
                    e = AffineExpr(e.coeffs, e.const, 1)
                lo, hi = dom.bounds(e.as_row())
                sig.append(_sign_pattern(lo, hi))
            patterns.append(tuple(sig))
        return patterns

    def pretty(self) -> str:
        parts = []
        innames = self.in_space.names
        for dom, fn in self.pieces:
            parts.append(
                f"[{', '.join(innames)}] -> {fn.pretty(innames)}"
            )
        return "{ " + "; ".join(parts) + " }"

    def __repr__(self) -> str:
        return f"IMap({self.pretty()})"


def _sign_pattern(lo: Optional[Fraction], hi: Optional[Fraction]) -> str:
    if lo is not None and lo > 0:
        return "+"
    if hi is not None and hi < 0:
        return "-"
    if lo is not None and hi is not None and lo == hi == 0:
        return "0"
    if lo is not None and lo == 0:
        return "+0"
    if hi is not None and hi == 0:
        return "-0"
    return "*"
