"""Identity-aligned merge of per-run folded DDGs.

One :class:`RunProfile` is the sweep-relevant extract of a finished
:class:`~repro.pipeline.AnalysisResult`: every folded statement and
dependence re-keyed by the **position-independent identity**
``(func, ordinal, context)`` that :mod:`repro.incr.regions`
established (instruction uids are frontend numbering accidents; the
per-function canonical ordinal plus the interned loop context is
stable across runs and input shapes), the nest forest's per-loop
parallelism flags keyed by loop path, and the run's input bindings.

:func:`merge_profiles` unions the profiles: entities aligned by
identity, per-run payloads classified (:mod:`.classify`), polyhedral
domains unioned across runs, and sweep-aware verdicts attached
(:mod:`.verdict`).  The merge is a pure function of the profile *set*
-- profiles arrive in canonical point order, idents are sorted, and
every payload comparison is on canonical JSON -- which is what makes
the ``swp-`` artifact byte-identical across submission orders,
``--fold-jobs`` settings, and engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..folding.codec import _encode_dep, _encode_statement
from ..incr.regions import uid_to_ordinal
from ..poly.codec import decode_iset, encode_iset
from .classify import classify_payloads
from .grid import Point, axes_of

#: position-independent statement identity: (func, ordinal, context)
StmtIdent = Tuple[str, int, Tuple[Tuple[str, ...], ...]]
#: dependence identity: (src stmt, dst stmt, kind)
DepIdent = Tuple[StmtIdent, StmtIdent, str]
#: nest identity: the loop path (context entries, outermost first)
NestPath = Tuple[Tuple[str, ...], ...]


@dataclass
class RunProfile:
    """The sweep-relevant extract of one run's analysis."""

    bindings: Point
    #: canonical per-statement payloads (folding codec encoding minus
    #: the position-dependent uid/ctx_id), keyed by identity
    stmts: Dict[StmtIdent, dict]
    #: canonical per-dependence payloads (minus src/dst keys)
    deps: Dict[DepIdent, dict]
    #: per-loop analysis flags keyed by nest path
    nests: Dict[NestPath, dict]
    #: dynamic instruction count of the run
    ops: int
    #: stage-2 artifact key of the run (binds program+input+options;
    #: the ``swp-`` key derives from the sorted set of these)
    stage2_key: str


@dataclass
class MergedEntity:
    """One statement or dependence across the whole sweep."""

    classification: str
    #: scaling laws of a shape-scaling entity (``N_<axis>`` forms)
    laws: List[Dict[str, str]] = field(default_factory=list)
    #: run-aligned presence mask
    present: List[bool] = field(default_factory=list)
    #: union of the per-run polyhedral domains (encoded ISet)
    domain: Optional[dict] = None
    #: payload of the first run the entity appears in (representative;
    #: classification already proved what varies across runs)
    payload: Optional[dict] = None


@dataclass
class MergedModel:
    """The parameterized dependence model of one sweep."""

    workload: str
    points: List[Point]
    axes: List[str]
    statements: Dict[StmtIdent, MergedEntity]
    deps: Dict[DepIdent, MergedEntity]
    #: sweep-aware parallelism verdicts (:func:`.verdict.sweep_verdicts`)
    verdicts: List[dict] = field(default_factory=list)
    #: per-run stage-2 keys, point-aligned
    stage2_keys: List[str] = field(default_factory=list)

    def classification_counts(self, which: str = "deps") -> Dict[str, int]:
        entities = self.deps if which == "deps" else self.statements
        out: Dict[str, int] = {}
        for e in entities.values():
            out[e.classification] = out.get(e.classification, 0) + 1
        return dict(sorted(out.items()))


def _context_tuple(context) -> Tuple[Tuple[str, ...], ...]:
    return tuple(tuple(elem) for elem in context)


def stmt_loop_path(ident: StmtIdent) -> NestPath:
    """The loop path of a statement identity (its context minus the
    innermost entry -- mirrors :func:`repro.schedule.deps.loop_path`)."""
    return ident[2][:-1]


def profile_of(result, bindings: Point, stage2_key: str) -> RunProfile:
    """Extract the :class:`RunProfile` of one finished analysis."""
    ord_of = uid_to_ordinal(result.spec.program)
    ident_of: Dict[tuple, StmtIdent] = {}
    stmts: Dict[StmtIdent, dict] = {}
    for key, fs in result.folded.statements.items():
        func, ordinal = ord_of[key[0]]
        ident = (func, ordinal, _context_tuple(fs.stmt.context))
        payload = _encode_statement(fs)
        payload.pop("uid", None)
        payload.pop("ctx_id", None)
        ident_of[key] = ident
        stmts[ident] = payload
    deps: Dict[DepIdent, dict] = {}
    for dkey, fd in result.folded.deps.items():
        payload = _encode_dep(fd)
        payload.pop("src", None)
        payload.pop("dst", None)
        ident = (ident_of[dkey.src], ident_of[dkey.dst], dkey.kind)
        deps[ident] = payload
    nests: Dict[NestPath, dict] = {}
    for node in result.forest.walk():
        nests[_context_tuple(node.path)] = {
            "parallel": bool(node.parallel),
            "parallel_reduction": bool(node.parallel_reduction),
            "ops": int(node.ops_total),
        }
    return RunProfile(
        bindings=bindings,
        stmts=stmts,
        deps=deps,
        nests=nests,
        ops=int(result.ddg_profile.builder.instr_count),
        stage2_key=stage2_key,
    )


#: payload fields excluded from classification: pure execution tallies
#: (how *often*), not dependence structure (what depends on what, and
#: over which domain).  A dependence whose relation and domain are
#: identical across runs is input-invariant even though it naturally
#: executed more times on the bigger input.
_TALLY_FIELDS = ("count", "label_pieces")


def _classified_view(payload: Optional[dict]) -> Optional[dict]:
    if payload is None:
        return None
    return {k: v for k, v in payload.items() if k not in _TALLY_FIELDS}


def _union_domain(payloads: List[Optional[dict]]) -> Optional[dict]:
    """Union of the per-run encoded domains (run order -- canonical)."""
    merged = None
    for p in payloads:
        if p is None or p.get("domain") is None:
            continue
        dom = decode_iset(p["domain"])
        merged = dom if merged is None else merged.union(dom)
    return encode_iset(merged) if merged is not None else None


def _merge_entities(
    per_run: List[Dict],
    axis_values: Dict[str, List[int]],
) -> Dict:
    idents = sorted(set().union(*per_run)) if per_run else []
    out = {}
    for ident in idents:
        payloads = [run.get(ident) for run in per_run]
        classification, laws = classify_payloads(
            [_classified_view(p) for p in payloads], axis_values
        )
        out[ident] = MergedEntity(
            classification=classification,
            laws=laws,
            present=[p is not None for p in payloads],
            domain=_union_domain(payloads),
            payload=next(p for p in payloads if p is not None),
        )
    return out


def merge_profiles(
    workload: str, profiles: List[RunProfile]
) -> MergedModel:
    """Merge run profiles (already in canonical point order) into the
    parameterized model."""
    from .verdict import sweep_verdicts

    if not profiles:
        raise ValueError("cannot merge an empty sweep")
    points = [p.bindings for p in profiles]
    if points != sorted(points):
        raise ValueError("profiles must arrive in canonical point order")
    axes = axes_of(points)
    axis_values = {
        axis: [dict(p)[axis] for p in points] for axis in axes
    }
    statements = _merge_entities(
        [p.stmts for p in profiles], axis_values
    )
    deps = _merge_entities([p.deps for p in profiles], axis_values)
    model = MergedModel(
        workload=workload,
        points=points,
        axes=axes,
        statements=statements,
        deps=deps,
        stage2_keys=[p.stage2_key for p in profiles],
    )
    model.verdicts = sweep_verdicts(profiles, model)
    return model
