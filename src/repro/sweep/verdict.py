"""Sweep-aware parallelism verdicts.

A single-run parallelism claim (:mod:`repro.schedule.analysis` found
no loop-carried dependence at that depth) is only as good as its
input.  Across a sweep, each loop's claim gets a **confidence**:

* ``all-runs`` -- the loop was present and parallel in *every* run,
  and every statement/dependence under it is ``input-invariant``: the
  verdict holds for each profiled input, on identical dependence
  structure.  This is the strongest claim dynamic analysis can make,
  and it is **refused** whenever any run contradicts it.
* ``parameterized`` -- present and parallel in every run, but some
  constraint constants scale with a sweep axis (``shape-scaling``):
  the claim holds across the sweep *as a symbolic family* -- valid
  for the parameterized domain, pending the usual single-input caveat
  for shapes outside the swept range.
* ``single-run`` -- the claim rests on a strict subset of the runs:
  the loop (or a dependence under it) is structurally present in some
  runs only, or a dependence moves in a way no sweep axis explains
  (``input-dependent``).
* ``refused`` -- some run where the loop executed found it *not*
  parallel: no parallelism is claimed at all, whatever the other runs
  said.  (This is the tamper-test demotion path: one divergent run
  must kill the claim.)
"""

from __future__ import annotations

from typing import Dict, List

from .classify import INPUT_DEPENDENT, SHAPE_SCALING
from .merge import MergedModel, NestPath, RunProfile, stmt_loop_path

ALL_RUNS = "all-runs"
PARAMETERIZED = "parameterized"
SINGLE_RUN = "single-run"
REFUSED = "refused"


def nest_name(path: NestPath) -> str:
    """Human name of a loop path (matches the report renderer)."""
    return " / ".join(elem[-1] for elem in path)


def _confidence(
    present: List[bool], classifications: List[str]
) -> str:
    if not all(present):
        return SINGLE_RUN
    if any(c == INPUT_DEPENDENT for c in classifications):
        return SINGLE_RUN
    if any(c == SHAPE_SCALING for c in classifications):
        return PARAMETERIZED
    return ALL_RUNS


def sweep_verdicts(
    profiles: List[RunProfile], model: MergedModel
) -> List[dict]:
    """One verdict row per loop seen anywhere in the sweep.

    Rows are sorted by loop path (canonical); the feedback layer
    re-sorts by ops for human display.  ``parallel`` is the sweep-wide
    claim: True only when every run that executed the loop found it
    parallel.  ``confidence`` qualifies a True claim and is
    ``refused`` for a False one.
    """
    paths = sorted(
        {path for p in profiles for path in p.nests}
    )
    # statement/dependence classifications indexed by loop path prefix
    rows: List[dict] = []
    for path in paths:
        n = len(path)
        infos = [p.nests.get(path) for p in profiles]
        present = [i is not None for i in infos]
        executed = [i for i in infos if i is not None]
        parallel = all(i["parallel"] for i in executed)
        reduction = all(
            i["parallel"] or i["parallel_reduction"] for i in executed
        )
        relevant: List[str] = []
        for ident, entity in model.statements.items():
            if stmt_loop_path(ident)[:n] == path:
                relevant.append(entity.classification)
        for ident, entity in model.deps.items():
            src, dst = ident[0], ident[1]
            if (
                stmt_loop_path(src)[:n] == path
                and stmt_loop_path(dst)[:n] == path
            ):
                relevant.append(entity.classification)
        if not parallel:
            confidence = REFUSED
        else:
            confidence = _confidence(present, relevant)
        rows.append(
            {
                "nest": nest_name(path),
                "path": [list(elem) for elem in path],
                "depth": n,
                "runs": len(profiles),
                "runs_present": sum(present),
                "parallel": parallel,
                "parallel_reduction": reduction,
                "confidence": confidence,
                "ops": max(
                    (i["ops"] for i in executed), default=0
                ),
            }
        )
    return rows
