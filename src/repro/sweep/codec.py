"""The versioned ``swp-`` merged-model store artifact.

Key derivation: a sweep is content-addressed by the **sorted set** of
its runs' stage-2 keys.  Each stage-2 key already binds the program,
the input state, and every pipeline option that moves artifact bytes,
so two sweeps over the same workload/points/options share one ``swp-``
key regardless of submission order -- and any change to any run's
identity moves the sweep key.

Payload: deliberately **engine-free**.  Folded DDGs are bit-identical
across engines and ``--fold-jobs`` settings (that equivalence is
pinned by the parallel-fold and engine-matrix test suites), so the
merged model -- a pure function of the folded DDGs -- must serialize
identically too; the engine lives only in the surrounding feedback
document and in the (engine-bearing) stage-2 keys the ``swp-`` key
derives from.  The determinism tests byte-diff exactly this payload.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from .merge import DepIdent, MergedEntity, MergedModel, StmtIdent

#: bump on ANY change to the swp- payload layout or key derivation
SWEEP_FORMAT_VERSION = 1


def sweep_key(stage2_keys: List[str]) -> str:
    """``swp-<sha256>`` over the sorted per-run stage-2 keys."""
    raw = f"swp{SWEEP_FORMAT_VERSION}|" + "|".join(sorted(stage2_keys))
    return "swp-" + hashlib.sha256(raw.encode("utf-8")).hexdigest()


def _stmt_ref(ident: StmtIdent) -> dict:
    func, ordinal, context = ident
    return {
        "func": func,
        "ord": ordinal,
        "context": [list(elem) for elem in context],
    }


def _entity_fields(entity: MergedEntity) -> dict:
    return {
        "classification": entity.classification,
        "laws": list(entity.laws),
        "present": list(entity.present),
        "domain": entity.domain,
        "payload": entity.payload,
    }


def encode_sweep(model: MergedModel) -> dict:
    """The ``swp-`` artifact payload (engine-free, canonically
    ordered: ident-sorted entities, path-sorted verdicts)."""
    statements = []
    for ident in sorted(model.statements):
        doc = _stmt_ref(ident)
        doc.update(_entity_fields(model.statements[ident]))
        statements.append(doc)
    deps = []
    for ident in sorted(model.deps):
        src, dst, kind = ident
        doc: Dict[str, object] = {
            "src": _stmt_ref(src),
            "dst": _stmt_ref(dst),
            "kind": kind,
        }
        doc.update(_entity_fields(model.deps[ident]))
        deps.append(doc)
    return {
        "format": SWEEP_FORMAT_VERSION,
        "workload": model.workload,
        "points": [
            [[name, value] for name, value in point]
            for point in model.points
        ],
        "axes": list(model.axes),
        "statements": statements,
        "deps": deps,
        "verdicts": list(model.verdicts),
        "summary": {
            "runs": len(model.points),
            "statements": len(model.statements),
            "deps": len(model.deps),
            "dep_classifications": model.classification_counts("deps"),
            "stmt_classifications": model.classification_counts(
                "statements"
            ),
            "claims": _claim_counts(model.verdicts),
        },
    }


def _claim_counts(verdicts: List[dict]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for row in verdicts:
        out[row["confidence"]] = out.get(row["confidence"], 0) + 1
    return dict(sorted(out.items()))
