"""The sweep driver: one workload, many inputs, one merged model.

Two phases, both store-centric:

1. **Warm** (optional, ``jobs > 1`` with a store): the sweep points
   are fanned out over the suite runner's process pool
   (:func:`repro.runner.run_suite`) against the shared
   content-addressed store, so each point's stage artifacts get
   produced in parallel.  The warm phase is purely a cache filler --
   its results are discarded.
2. **Collect**: each point is analyzed inline (in canonical point
   order) -- a warm store makes these artifact decodes -- and reduced
   to a :class:`~repro.sweep.merge.RunProfile`; the profiles merge
   into the parameterized model, which is stored under its ``swp-``
   key.

Repeated shapes are warm across sweeps too: a later sweep sharing
points with an earlier one (or with plain ``repro report`` runs) hits
the same stage-2 artifacts, which is what ``bench_sweep.py`` gates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .codec import encode_sweep, sweep_key
from .grid import Point, complete_points, default_grid, point_bindings
from .merge import MergedModel, RunProfile, merge_profiles, profile_of


class SweepError(Exception):
    """A sweep point failed to analyze (the merge needs every run)."""


class _PointTask:
    """Picklable zero-arg spec factory for the warm-phase pool."""

    def __init__(self, workload: str, point: Point) -> None:
        self.workload = workload
        self.point = point
        self.__name__ = workload + "[" + ",".join(
            f"{name}={value}" for name, value in point
        ) + "]"

    def __call__(self):
        from ..workloads import all_workloads

        return all_workloads()[self.workload](**point_bindings(self.point))


@dataclass
class PointRun:
    """Bookkeeping for one analyzed sweep point."""

    point: Point
    stage2_key: str
    cache_hit: bool = False
    wall_seconds: float = 0.0
    dyn_instrs: int = 0


@dataclass
class SweepResult:
    """Everything a sweep produced."""

    workload: str
    engine: str
    points: List[Point]
    model: MergedModel
    #: the versioned ``swp-`` artifact payload (engine-free bytes-source)
    payload: dict
    #: the ``swp-`` store key of the merged model
    key: str
    runs: List[PointRun] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: True when this run freshly wrote the merged model to the store
    #: (False = no store, or the ``swp-`` artifact was already there)
    stored: bool = False


def _null_tracer():
    from ..obs import Tracer

    return Tracer(enabled=False)


def run_sweep(
    workload: str,
    points: Optional[Sequence[Mapping[str, object]]] = None,
    *,
    engine: str = "fast",
    fuel: int = 50_000_000,
    clamp: Optional[int] = None,
    crosscheck: bool = False,
    fold_jobs: int = 1,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    store=None,
    cache_dir: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
    tracer=None,
    extra_observers: Sequence = (),
) -> SweepResult:
    """Profile ``workload`` over a sweep and merge the folded DDGs.

    ``points`` are input binding objects (unbound params filled from
    the registry defaults); None sweeps the workload's declared
    default grid.  ``jobs`` bounds the warm-phase process pool (None =
    cpu count; <= 1, or no store, skips the warm phase -- without a
    shared store parallel warm runs could not hand their artifacts to
    the collect phase).  Remaining options mirror
    :func:`repro.pipeline.analyze` and apply to every point.
    """
    from ..pipeline import analyze
    from ..store.keys import keys_for_spec
    from ..workloads import all_workloads

    t0 = time.perf_counter()
    reg = all_workloads()
    if workload not in reg:
        raise SweepError(
            f"unknown workload {workload!r}; available: "
            + ", ".join(sorted(reg))
        )
    grid = (
        default_grid(workload)
        if points is None
        else complete_points(workload, points)
    )
    if tracer is None:
        tracer = _null_tracer()
    if store is None and cache_dir is not None:
        from ..store import ArtifactStore

        store = ArtifactStore(cache_dir, max_bytes=cache_max_bytes)

    if store is not None and (jobs is None or jobs > 1) and len(grid) > 1:
        from ..runner import run_suite

        with tracer.span(
            "sweep.warm", cat="sweep", workload=workload, points=len(grid)
        ):
            # hand the warm pool the open sweep.warm span as trace
            # context: each point's spans (in their fork-pool worker
            # processes) parent under it, so a distributed sweep trace
            # shows the fan-out instead of disconnected forests
            warm_ctx = tracer.current_context()
            run_suite(
                [_PointTask(workload, point) for point in grid],
                jobs=jobs,
                timeout=timeout,
                engine=engine,
                fuel=fuel,
                clamp=clamp,
                cache_dir=store.root,
                cache_max_bytes=store.max_bytes,
                fold_jobs=fold_jobs,
                trace=warm_ctx.as_dict() if warm_ctx else None,
            )

    profiles: List[RunProfile] = []
    runs: List[PointRun] = []
    for point in grid:
        spec = reg[workload](**point_bindings(point))
        keys = keys_for_spec(
            spec,
            engine=engine,
            fuel=fuel,
            max_pieces=6,
            clamp=clamp,
            track_anti_output=True,
            build_schedule_tree=True,
        )
        tp = time.perf_counter()
        with tracer.span(
            "sweep.point",
            cat="sweep",
            workload=workload,
            point=_PointTask(workload, point).__name__,
        ):
            try:
                result = analyze(
                    spec,
                    engine=engine,
                    fuel=fuel,
                    clamp=clamp,
                    crosscheck=crosscheck,
                    store=store,
                    extra_observers=extra_observers,
                    tracer=tracer,
                    fold_jobs=fold_jobs,
                )
            except Exception as exc:
                raise SweepError(
                    f"sweep point {point_bindings(point)} failed: {exc}"
                ) from exc
        profiles.append(profile_of(result, point, keys.stage2))
        runs.append(
            PointRun(
                point=point,
                stage2_key=keys.stage2,
                cache_hit=result.timings.cache_hit,
                wall_seconds=time.perf_counter() - tp,
                dyn_instrs=result.ddg_profile.builder.instr_count,
            )
        )

    with tracer.span(
        "sweep.merge", cat="sweep", workload=workload, runs=len(profiles)
    ):
        model = merge_profiles(workload, profiles)
        payload = encode_sweep(model)
    key = sweep_key(model.stage2_keys)
    stored = False
    if store is not None:
        with tracer.span("sweep.store", cat="sweep", key=key):
            if not store.contains(key):
                store.put(key, payload)
                stored = True
    return SweepResult(
        workload=workload,
        engine=engine,
        points=grid,
        model=model,
        payload=payload,
        key=key,
        runs=runs,
        wall_seconds=time.perf_counter() - t0,
        stored=stored,
    )
