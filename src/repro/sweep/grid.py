"""Sweep grids: declared input points in one canonical order.

A sweep **point** is a full set of ``param=value`` bindings for one
registry workload.  Everything downstream -- the merge, the ``swp-``
store key, the feedback documents -- consumes points in *canonical*
form: bindings as sorted ``(name, value)`` tuples, the point list
deduplicated and sorted.  That makes the merged model a pure function
of the point *set*: submitting the same grid in shuffled order (CLI,
service, router -- any front door) produces byte-identical output,
which the determinism tests pin.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

#: one canonical sweep point: sorted (param, value) bindings
Point = Tuple[Tuple[str, int], ...]


class GridError(ValueError):
    """Malformed sweep grid (unknown workload/param, bad value...)."""


def normalize_point(bindings: Mapping[str, object]) -> Point:
    """Canonical form of one binding set: sorted ``(name, int)``."""
    out = []
    for name in sorted(bindings):
        value = bindings[name]
        if isinstance(value, bool) or not isinstance(value, (int, float, str)):
            raise GridError(
                f"binding {name!r} must be an integer, got {value!r}"
            )
        try:
            out.append((str(name), int(value)))
        except (TypeError, ValueError) as exc:
            raise GridError(
                f"binding {name!r} must be an integer, got {value!r}"
            ) from exc
    return tuple(out)


def point_bindings(point: Point) -> Dict[str, int]:
    """The plain dict a workload factory consumes."""
    return dict(point)


def canonical_points(
    points: Iterable[Mapping[str, object]],
) -> List[Point]:
    """Normalize, deduplicate, and canonically order a point list.

    Order is the sorted order of the canonical tuples -- i.e. a pure
    function of the point *set*, independent of submission order.
    """
    seen = set()
    out: List[Point] = []
    for p in points:
        if not isinstance(p, Mapping):
            raise GridError(
                f"each sweep point must be a binding object, got {p!r}"
            )
        np = normalize_point(p)
        if np not in seen:
            seen.add(np)
            out.append(np)
    out.sort()
    return out


def parse_point(text: str) -> Dict[str, int]:
    """``"rows=20,cols=12"`` -> ``{"rows": 20, "cols": 12}`` (CLI)."""
    bindings: Dict[str, int] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, eq, value = part.partition("=")
        if not eq or not name.strip():
            raise GridError(
                f"bad binding {part!r}; expected name=value"
            )
        try:
            bindings[name.strip()] = int(value.strip())
        except ValueError as exc:
            raise GridError(
                f"bad binding {part!r}; value must be an integer"
            ) from exc
    if not bindings:
        raise GridError(f"empty sweep point {text!r}")
    return bindings


def default_bindings(workload: str) -> Dict[str, int]:
    """All declared params of ``workload`` at their defaults."""
    from ..workloads import params_of

    return {p.name: p.default for p in params_of(workload)}


def default_grid(workload: str) -> List[Point]:
    """The workload's declared sweep: one axis varied at a time.

    For each param with a declared ``sweep`` range, emit one point per
    sweep value with every *other* param at its default.  One-axis-at-
    a-time keeps the grid linear in the declared ranges (not their
    product) and gives the classifier clean single-axis series to fit.
    """
    from ..workloads import params_of

    params = params_of(workload)
    if not params:
        raise GridError(
            f"workload {workload!r} declares no sweep params; "
            "pass explicit points"
        )
    defaults = {p.name: p.default for p in params}
    points: List[Dict[str, int]] = []
    for p in params:
        for v in p.sweep:
            bound = dict(defaults)
            bound[p.name] = int(v)
            points.append(bound)
    if not points:
        raise GridError(
            f"workload {workload!r} declares no sweep-able ranges; "
            "pass explicit points"
        )
    return canonical_points(points)


def complete_points(
    workload: str, points: Sequence[Mapping[str, object]]
) -> List[Point]:
    """Canonical points with unbound params filled from the defaults.

    Completing *before* canonicalizing means a partially-bound point
    (``rows=28``) and its fully-spelled twin dedup onto one point, and
    every point binds every declared axis -- which the classifier's
    per-axis series fitting relies on.
    """
    defaults = default_bindings(workload)
    completed = []
    for p in points:
        if not isinstance(p, Mapping):
            raise GridError(
                f"each sweep point must be a binding object, got {p!r}"
            )
        bound = dict(defaults)
        for name, value in p.items():
            if defaults and name not in defaults:
                raise GridError(
                    f"workload {workload!r} has no param {name!r}; "
                    f"declared: {', '.join(sorted(defaults)) or '(none)'}"
                )
            bound[str(name)] = value
        completed.append(bound)
    return canonical_points(completed)


def axes_of(points: Sequence[Point]) -> List[str]:
    """The axis names whose values actually vary across ``points``."""
    values: Dict[str, set] = {}
    for point in points:
        for name, value in point:
            values.setdefault(name, set()).add(value)
    return sorted(name for name, vs in values.items() if len(vs) > 1)
