"""Dependence/statement classification across a sweep.

Each merged entity carries per-run canonical payloads (the folding
codec's encoding, made position-independent by :mod:`.merge`).  The
classifier compares them across runs:

* ``input-invariant`` -- the payload is byte-identical in every run:
  the relation/domain does not depend on the swept input at all.
* ``shape-scaling`` -- the payloads share one structural *skeleton*
  and differ only in integer leaves, and every varying leaf is an
  exact affine function ``a*axis + b`` of a single sweep axis.  These
  are the constants :mod:`repro.schedule.parameterize` rewrites into
  one symbolic parameter per axis (``N_<axis>``) -- trip counts,
  extents, bounds that track the input size.
* ``input-dependent`` -- anything else: the entity is structurally
  present in some runs only, skeletons differ, or a constant moves in
  a way no single-axis affine law explains.

Affine fits are exact rational arithmetic (:class:`fractions.Fraction`
from a two-point solve, verified against *every* run), never a
regression: a merged model must not claim a scaling law the data only
approximately follows.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

INPUT_INVARIANT = "input-invariant"
SHAPE_SCALING = "shape-scaling"
INPUT_DEPENDENT = "input-dependent"

#: placeholder an int leaf collapses to in a payload skeleton
_HOLE = "§"


def skeleton(value, leaves: List[int]):
    """Structure of a JSON payload with int leaves punched out.

    Appends the extracted leaves to ``leaves`` in deterministic walk
    order (dicts by sorted key), so two payloads with equal skeletons
    have positionally-aligned leaf lists.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        leaves.append(value)
        return _HOLE
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        # a stray section sign in real data must not collide with holes
        return "s:" + value
    if isinstance(value, (list, tuple)):
        return [skeleton(v, leaves) for v in value]
    if isinstance(value, dict):
        return {k: skeleton(value[k], leaves) for k in sorted(value)}
    raise TypeError(f"unencodable payload node: {value!r}")


def fit_affine(
    series: Sequence[int], axis_values: Sequence[int]
) -> Optional[Tuple[Fraction, Fraction]]:
    """Exact ``(scale, offset)`` with ``v = scale*a + offset`` over all
    runs, or None.  A repeated axis value with diverging ``v`` refutes
    any fit; a constant series fits trivially (scale 0)."""
    pairs = sorted(set(zip(axis_values, series)))
    by_axis: Dict[int, int] = {}
    for a, v in pairs:
        if a in by_axis and by_axis[a] != v:
            return None
        by_axis[a] = v
    distinct = sorted(by_axis.items())
    if len(distinct) == 1:
        return Fraction(0), Fraction(distinct[0][1])
    (a0, v0), (a1, v1) = distinct[0], distinct[1]
    scale = Fraction(v1 - v0, a1 - a0)
    offset = Fraction(v0) - scale * a0
    for a, v in distinct[2:]:
        if scale * a + offset != v:
            return None
    return scale, offset


def _fmt_fraction(f: Fraction) -> str:
    return str(f.numerator) if f.denominator == 1 else f"{f.numerator}/{f.denominator}"


def scaling_law(
    axis: str, scale: Fraction, offset: Fraction
) -> Dict[str, str]:
    """The symbolic form of one fitted leaf: ``scale*N_<axis>+offset``
    as exact rational strings (JSON-safe, order-stable)."""
    return {
        "param": f"N_{axis}",
        "scale": _fmt_fraction(scale),
        "offset": _fmt_fraction(offset),
    }


def classify_payloads(
    payloads: Sequence[Optional[dict]],
    axis_values: Dict[str, List[int]],
) -> Tuple[str, List[Dict[str, str]]]:
    """Classify one merged entity from its per-run payloads.

    ``payloads`` is run-aligned (None = absent in that run);
    ``axis_values`` maps each *varying* sweep axis to its run-aligned
    values.  Returns ``(classification, laws)`` where ``laws`` lists
    the distinct scaling laws of a ``shape-scaling`` entity (empty
    otherwise), sorted for determinism.
    """
    if any(p is None for p in payloads):
        return INPUT_DEPENDENT, []
    leaves_per_run: List[List[int]] = []
    skeletons = []
    for p in payloads:
        leaves: List[int] = []
        skeletons.append(skeleton(p, leaves))
        leaves_per_run.append(leaves)
    first = skeletons[0]
    if any(s != first for s in skeletons[1:]):
        return INPUT_DEPENDENT, []
    nleaves = len(leaves_per_run[0])
    laws = set()
    varying = False
    for i in range(nleaves):
        series = [run[i] for run in leaves_per_run]
        if len(set(series)) == 1:
            continue
        varying = True
        fitted = None
        for axis in sorted(axis_values):
            fit = fit_affine(series, axis_values[axis])
            if fit is not None:
                fitted = (axis,) + fit
                break
        if fitted is None:
            return INPUT_DEPENDENT, []
        axis, scale, offset = fitted
        laws.add((axis, scale, offset))
    if not varying:
        return INPUT_INVARIANT, []
    return SHAPE_SCALING, [
        scaling_law(a, s, o) for a, s, o in sorted(laws)
    ]
