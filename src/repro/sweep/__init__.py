"""Multi-input sweep profiling (ROADMAP item 4).

A single-run dynamic DDG is only valid for the input that produced it
-- the paper's central caveat.  This package runs one workload over a
declared input grid, merges the per-run folded polyhedral DDGs by the
position-independent ``(func, ordinal, context)`` identity
:mod:`repro.incr.regions` established, classifies every merged
dependence (``input-invariant`` / ``shape-scaling`` /
``input-dependent``), and attaches a *confidence* to each parallelism
verdict (``all-runs`` / ``parameterized`` / ``single-run``) -- refusing
``all-runs`` unless the claim survives every run's folded DDG.

Layering::

    grid      declared sweep points, canonical ordering, default grids
    merge     per-run RunProfile extraction + identity-aligned merge
    classify  invariant / shape-scaling / input-dependent tagging
    verdict   sweep-aware parallelism confidence per nest
    codec     the versioned ``swp-`` merged-model store artifact
    driver    run_sweep(): pool warm-up, per-point analyze, merge
    feedback  text + JSON sweep documents (CLI == service bytes)
"""

from .classify import (  # noqa: F401
    INPUT_DEPENDENT,
    INPUT_INVARIANT,
    SHAPE_SCALING,
    classify_payloads,
)
from .codec import SWEEP_FORMAT_VERSION, encode_sweep, sweep_key  # noqa: F401
from .driver import SweepError, SweepResult, run_sweep  # noqa: F401
from .feedback import render_sweep_text, sweep_document  # noqa: F401
from .grid import (  # noqa: F401
    canonical_points,
    default_grid,
    normalize_point,
    parse_point,
    point_bindings,
)
from .merge import MergedModel, RunProfile, merge_profiles, profile_of  # noqa: F401
from .verdict import (  # noqa: F401
    ALL_RUNS,
    PARAMETERIZED,
    REFUSED,
    SINGLE_RUN,
    sweep_verdicts,
)
