"""Sweep feedback documents: text for humans, JSON for machines.

The JSON document goes through the same
:func:`repro.feedback.jsonout.render_json` renderer as every other
feedback surface, and contains only sweep-deterministic fields (no
wall times, no cache flags), so ``repro sweep --format json`` and the
service's sweep-job report are byte-identical for the same workload,
points, and options -- the CI sweep job diffs exactly that.
"""

from __future__ import annotations

from typing import List

from ..feedback.jsonout import FEEDBACK_SCHEMA_VERSION
from .driver import SweepResult
from .verdict import REFUSED


def _display_verdicts(result: SweepResult) -> List[dict]:
    """Verdict rows in human priority order: hottest loops first,
    ties broken by name then depth (total order -- deterministic)."""
    return sorted(
        result.model.verdicts,
        key=lambda row: (-row["ops"], row["nest"], row["depth"]),
    )


def sweep_document(result: SweepResult) -> dict:
    """The ``sweep`` JSON feedback document."""
    return {
        "version": FEEDBACK_SCHEMA_VERSION,
        "kind": "sweep",
        "workload": result.workload,
        "engine": result.engine,
        "key": result.key,
        "points": [
            [[name, value] for name, value in point]
            for point in result.points
        ],
        "axes": list(result.model.axes),
        "summary": dict(result.payload["summary"]),
        "verdicts": _display_verdicts(result),
        "model": result.payload,
    }


def _point_label(point) -> str:
    return " ".join(f"{name}={value}" for name, value in point)


def render_sweep_text(result: SweepResult, top: int = 10) -> str:
    """The textual sweep report."""
    model = result.model
    axes = ", ".join(model.axes) if model.axes else "(none)"
    out = [
        f"=== poly-prof sweep: {result.workload} ===",
        "",
        f"{len(result.points)} point(s) over axes {axes}  "
        f"(engine {result.engine})",
        f"merged model {result.key}"
        + ("  [stored]" if result.stored else ""),
        "",
        "points:",
    ]
    for run in result.runs:
        out.append(
            f"  {_point_label(run.point)}  "
            f"{'warm' if run.cache_hit else 'cold'}  "
            f"{run.wall_seconds:.2f}s  {run.dyn_instrs} ops"
        )
    out.append("")
    for which, label in (("deps", "dependences"), ("statements", "statements")):
        counts = model.classification_counts(which)
        total = sum(counts.values())
        parts = ", ".join(f"{n} {tag}" for tag, n in counts.items())
        out.append(f"{label}: {total} merged ({parts})")
    out.append("")
    rows = _display_verdicts(result)[:top]
    name_w = max(
        [len("nest")] + [len(row["nest"]) for row in rows]
    )
    out.append(
        f"{'nest':{name_w}s} {'runs':>5s} {'parallel':>8s} "
        f"{'confidence':>13s} {'ops':>10s}"
    )
    for row in rows:
        claim = "yes" if row["parallel"] else "no"
        confidence = row["confidence"]
        if confidence == REFUSED:
            confidence = "refused"
        out.append(
            f"{row['nest']:{name_w}s} "
            f"{row['runs_present']}/{row['runs']:<3d} "
            f"{claim:>8s} {confidence:>13s} {row['ops']:>10d}"
        )
    dropped = len(model.verdicts) - len(rows)
    if dropped > 0:
        out.append(f"... {dropped} more loop(s); see --format json")
    return "\n".join(out)
