"""Rodinia ``bfs``: level-synchronous breadth-first search.

CSR graph traversal: the frontier loop's body only runs for masked
nodes (data-dependent guards), and the edge loop's bounds come from
``row_ptr`` loads -- data-dependent trip counts and indirect accesses
everywhere.  This is the paper's low-%Aff, low-parallelism benchmark
(Table 5: %Aff 21, %||ops 1, reasons B F): the structure is real
parallelism the polyhedral model cannot see because domains and
accesses are not affine.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_bfs(nnodes: int = 48, avg_degree: int = 5, seed: int = 41) -> ProgramSpec:
    pb = ProgramBuilder("bfs")
    with pb.function(
        "main",
        ["row_ptr", "col_idx", "mask", "updating", "visited", "cost",
         "nnodes"],
        src_file="bfs.cpp",
    ) as f:
        # in-program initialization of the per-node state arrays
        with f.loop(0, "nnodes", line=120) as i:
            f.store("mask", 0, index=i)
            f.store("updating", 0, index=i)
            f.store("visited", 0, index=i)
            f.store("cost", 0, index=i)
        f.store("mask", 1, index=0)
        f.store("visited", 1, index=0)
        stop = f.set(f.fresh_reg("stop"), 1)
        w = f.while_begin()
        f.while_cond(w, "eq", stop, 1)
        f.set(stop, 0)
        f.call(
            "bfs_kernel",
            ["row_ptr", "col_idx", "mask", "updating", "visited", "cost",
             "nnodes"],
        )
        # second phase: promote 'updating' to 'mask'
        with f.loop(0, "nnodes", line=155) as i:
            u = f.load("updating", index=i)
            with f.if_then("eq", u, 1):
                f.store("mask", 1, index=i)
                f.store("visited", 1, index=i)
                f.store("updating", 0, index=i)
                f.set(stop, 1)
        f.while_end(w)
        f.halt()

    with pb.function(
        "bfs_kernel",
        ["row_ptr", "col_idx", "mask", "updating", "visited", "cost",
         "nnodes"],
        src_file="bfs.cpp",
    ) as f:
        with f.loop(0, "nnodes", line=137) as tid:
            m = f.load("mask", index=tid, line=138)
            with f.if_then("eq", m, 1):
                f.store("mask", 0, index=tid)
                start = f.load("row_ptr", index=tid, line=140)
                end = f.load("row_ptr", index=f.add(tid, 1), line=140)
                my_cost = f.load("cost", index=tid)
                with f.loop(start, end, line=141) as e:
                    nb = f.load("col_idx", index=e, line=142)
                    vis = f.load("visited", index=nb, line=143)
                    with f.if_then("eq", vis, 0):
                        f.store("cost", f.add(my_cost, 1), index=nb, line=144)
                        f.store("updating", 1, index=nb, line=145)
        f.ret()

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(seed)
        # heap-shaped tree in CSR form: every node has a unique parent,
        # so no two frontier nodes ever update the same neighbour in
        # this execution -- the per-level node loop is observably
        # parallel, which is exactly what the paper's *dynamic*
        # analysis reports for bfs (%||ops 100: "the result is only
        # valid for that particular execution"); degrees still vary,
        # keeping the edge-loop bounds data-dependent
        rows: List[List[int]] = []
        next_child = 1
        for u in range(nnodes):
            deg = 1 + rng.next_int(avg_degree)
            children = []
            for _ in range(deg):
                if next_child < nnodes:
                    children.append(next_child)
                    next_child += 1
            rows.append(children)
        row_ptr_vals = [0]
        col_vals: List[int] = []
        for r in rows:
            col_vals.extend(r)
            row_ptr_vals.append(len(col_vals))
        row_ptr = mem.alloc_array(row_ptr_vals)
        col_idx = mem.alloc_array(col_vals if col_vals else [0])
        mask = mem.alloc(nnodes, init=0)
        updating = mem.alloc(nnodes, init=0)
        visited = mem.alloc(nnodes, init=0)
        cost = mem.alloc(nnodes, init=0)
        mem.store(mask, 1)      # source node 0
        mem.store(visited, 1)
        return (row_ptr, col_idx, mask, updating, visited, cost, nnodes), mem

    return ProgramSpec(
        name="bfs",
        program=program,
        make_state=make_state,
        description="Rodinia bfs: level-synchronous BFS over CSR",
        region_funcs=("bfs_kernel",),
        region_label="bfs.cpp:137",
        ld_src=3,
    )


@workload("bfs", params=(
    Param("nnodes", 48, (32, 48, 64)),
    Param("avg_degree", 5),
    Param("seed", 41),
))
def bfs_default(**sizes: int) -> ProgramSpec:
    return build_bfs(**sizes)
