"""Rodinia ``lud``: blocked LU decomposition.

The Rodinia CPU kernel factorizes in blocks, as ``lud_cpu`` does: for
each diagonal block, factorize it (Doolittle, in place), update its
perimeter row/column strips, then the interior trailing blocks -- five
loop levels in the source (``lud.c:121``).  The factorization
recurrence serializes the outer block loop (%||ops ~0 at the top
level), the interior update is a tilable 3-D band (TileD 3D), and the
triangular inner loops exercise the folder's non-rectangular domains.

Note on %Aff: the paper reports 4% because its folding did not support
the lattice-shaped domains of Rodinia's hand-linearized code; our
folder handles the blocked bounds piecewise, so the measured %Aff is
much higher (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_lud(n: int = 8, block: int = 4) -> ProgramSpec:
    pb = ProgramBuilder("lud")
    with pb.function("main", ["A", "n", "block"], src_file="lud.c") as f:
        nblocks = f.div("n", "block")
        with f.loop(0, nblocks, line=121) as ib:
            off = f.mul(ib, "block")
            f.call("lud_diagonal", ["A", "n", off, "block"])
            with f.if_then("lt", f.add(off, "block"), "n"):
                f.call("lud_perimeter", ["A", "n", off, "block"])
                f.call("lud_internal", ["A", "n", off, "block"])
        f.halt()

    def a_idx(f, row, col):
        return f.add(f.mul(row, "n"), col)

    # factorize the diagonal block in place (Doolittle, no pivoting)
    with pb.function(
        "lud_diagonal", ["A", "n", "off", "b"], src_file="lud.c"
    ) as f:
        with f.loop(0, "b", line=123) as i:
            gi = f.add("off", i)
            # U part of row i: A[i][j] -= sum_{k<i} A[i][k] * A[k][j]
            with f.loop(i, "b", line=124) as j:
                gj = f.add("off", j)
                ij = a_idx(f, gi, gj)
                acc = f.set(f.fresh_reg("acc"), 0.0)
                with f.loop(0, i, line=125) as k:
                    gk = f.add("off", k)
                    aik = f.load("A", index=a_idx(f, gi, gk))
                    akj = f.load("A", index=a_idx(f, gk, gj))
                    f.fadd(acc, f.fmul(aik, akj), into=acc)
                f.store("A", f.fsub(f.load("A", index=ij), acc), index=ij)
            # L part of column i: A[j][i] = (A[j][i] - sum) / A[i][i]
            diag = f.load("A", index=a_idx(f, gi, gi))
            with f.loop(f.add(i, 1), "b", line=128) as j:
                gj = f.add("off", j)
                ji = a_idx(f, gj, gi)
                acc = f.set(f.fresh_reg("acc"), 0.0)
                with f.loop(0, i, line=129) as k:
                    gk = f.add("off", k)
                    ajk = f.load("A", index=a_idx(f, gj, gk))
                    aki = f.load("A", index=a_idx(f, gk, gi))
                    f.fadd(acc, f.fmul(ajk, aki), into=acc)
                v = f.fdiv(f.fsub(f.load("A", index=ji), acc), diag)
                f.store("A", v, index=ji)
        f.ret()

    # update the perimeter strips right of / below the diagonal block
    with pb.function(
        "lud_perimeter", ["A", "n", "off", "b"], src_file="lud.c"
    ) as f:
        start = f.add("off", "b")
        # row strip (U): A[off+i][col] -= sum_{k<i} L[i][k] * A[k][col]
        with f.loop(0, "b", line=140) as i:
            gi = f.add("off", i)
            with f.loop(start, "n", line=141) as col:
                ic = a_idx(f, gi, col)
                acc = f.set(f.fresh_reg("acc"), 0.0)
                with f.loop(0, i, line=142) as k:
                    gk = f.add("off", k)
                    lik = f.load("A", index=a_idx(f, gi, gk))
                    akc = f.load("A", index=a_idx(f, gk, col))
                    f.fadd(acc, f.fmul(lik, akc), into=acc)
                f.store("A", f.fsub(f.load("A", index=ic), acc), index=ic)
        # column strip (L): A[row][off+i] = (A[row][off+i] - sum)/diag
        with f.loop(0, "b", line=145) as i:
            gi = f.add("off", i)
            diag = f.load("A", index=a_idx(f, gi, gi))
            with f.loop(start, "n", line=146) as row:
                ri = a_idx(f, row, gi)
                acc = f.set(f.fresh_reg("acc"), 0.0)
                with f.loop(0, i, line=147) as k:
                    gk = f.add("off", k)
                    ark = f.load("A", index=a_idx(f, row, gk))
                    aki = f.load("A", index=a_idx(f, gk, gi))
                    f.fadd(acc, f.fmul(ark, aki), into=acc)
                v = f.fdiv(f.fsub(f.load("A", index=ri), acc), diag)
                f.store("A", v, index=ri)
        f.ret()

    # trailing update: A[row][col] -= sum_k L[row][k] * U[k][col]
    with pb.function(
        "lud_internal", ["A", "n", "off", "b"], src_file="lud.c"
    ) as f:
        start = f.add("off", "b")
        with f.loop(start, "n", line=150) as row:
            with f.loop(start, "n", line=151) as col:
                rc = a_idx(f, row, col)
                acc = f.set(f.fresh_reg("acc"), 0.0)
                with f.loop(0, "b", line=152) as k:
                    gk = f.add("off", k)
                    l = f.load("A", index=a_idx(f, row, gk))
                    u = f.load("A", index=a_idx(f, gk, col))
                    f.fadd(acc, f.fmul(l, u), into=acc)
                f.store("A", f.fsub(f.load("A", index=rc), acc), index=rc)
        f.ret()

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(31)
        # diagonally dominant matrix keeps the factorization tame
        vals = []
        for i in range(n):
            for j in range(n):
                vals.append(4.0 * n if i == j else rng.next_float())
        a = mem.alloc_array(vals)
        return (a, n, block), mem

    return ProgramSpec(
        name="lud",
        program=program,
        make_state=make_state,
        description="Rodinia lud: blocked LU decomposition",
        region_funcs=("lud_diagonal", "lud_perimeter", "lud_internal"),
        region_label="lud.c:121",
        ld_src=5,
    )


@workload("lud", params=(
    Param("n", 8, (8, 12, 16)),
    Param("block", 4),
))
def lud_default(**sizes: int) -> ProgramSpec:
    return build_lud(**sizes)
