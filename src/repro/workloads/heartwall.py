"""Rodinia ``heartwall``: ultrasound heart-wall tracking.

Per video frame, per tracked sample point, a template-matching
correlation slides a small template over a search window -- the
deepest nest of the suite (paper: 7-D source, 6-D binary, 5-D tilable
band).  The Rodinia code hand-linearizes the 2-D windows with
division/modulo index recovery, keeping almost everything outside the
exactly-affine fold (Table 5: %Aff 1) despite massive parallelism.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_heartwall(
    frames: int = 2, npoints: int = 2, tmpl: int = 3, win: int = 5
) -> ProgramSpec:
    pb = ProgramBuilder("heartwall")
    with pb.function(
        "main",
        ["video", "templates", "corr", "best", "frames", "npoints",
         "tmpl", "win", "fsize"],
        src_file="main.c",
    ) as f:
        with f.loop(0, "frames", line=536) as fr:
            f.call(
                "track_frame",
                ["video", "templates", "corr", "best", fr, "npoints",
                 "tmpl", "win", "fsize"],
            )
        f.halt()

    with pb.function(
        "track_frame",
        ["video", "templates", "corr", "best", "fr", "npoints",
         "tmpl", "win", "fsize"],
        src_file="main.c",
    ) as f:
        frame_base = f.mul("fr", "fsize")
        tarea = f.mul("tmpl", "tmpl")
        warea = f.mul("win", "win")
        with f.loop(0, "npoints", line=540) as p:
            # slide the template over the window (linearized positions)
            with f.loop(0, warea, line=545) as wpos:
                wy = f.div(wpos, "win")          # hand-linearized:
                wx = f.mod(wpos, "win")          # div/mod recovery
                acc = f.set(f.fresh_reg("acc"), 0.0)
                with f.loop(0, tarea, line=548) as tpos:
                    ty = f.div(tpos, "tmpl")
                    tx = f.mod(tpos, "tmpl")
                    pix = f.load(
                        "video",
                        index=f.add(
                            frame_base,
                            f.add(f.mul(f.add(wy, ty), "win"), f.add(wx, tx)),
                        ),
                        line=550,
                    )
                    tv = f.load(
                        "templates",
                        index=f.add(f.mul(p, tarea), tpos),
                        line=551,
                    )
                    f.fadd(acc, f.fmul(pix, tv), into=acc)
                f.store(
                    "corr", acc, index=f.add(f.mul(p, warea), wpos), line=553
                )
            # argmax over window positions
            bestv = f.set(f.fresh_reg("bestv"), -1e30)
            besti = f.set(f.fresh_reg("besti"), 0)
            with f.loop(0, warea, line=556) as wpos:
                c = f.load("corr", index=f.add(f.mul(p, warea), wpos))
                with f.if_then("gt", c, bestv):
                    f.set(bestv, c)
                    f.set(besti, wpos)
            f.store("best", besti, index=p, line=560)
        f.ret()

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(71)
        fsize = (win + tmpl) * (win + tmpl)
        video = mem.alloc_array(rng.floats(frames * fsize))
        templates = mem.alloc_array(rng.floats(npoints * tmpl * tmpl))
        corr = mem.alloc(npoints * win * win, init=0.0)
        best = mem.alloc(npoints, init=0)
        return (video, templates, corr, best, frames, npoints,
                tmpl, win, fsize), mem

    return ProgramSpec(
        name="heartwall",
        program=program,
        make_state=make_state,
        description="Rodinia heartwall: template-matching tracking",
        region_funcs=("track_frame",),
        region_label="main.c:536",
        ld_src=7,   # frame/point/wy/wx/ty/tx (+channel) in the source
    )


@workload("heartwall", params=(
    Param("frames", 2),
    Param("npoints", 2, (2, 3, 4)),
    Param("tmpl", 3),
    Param("win", 5),
))
def heartwall_default(**sizes: int) -> ProgramSpec:
    return build_heartwall(**sizes)
