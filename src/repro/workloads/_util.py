"""Shared helpers for the workload suite.

Workloads are deterministic: all pseudo-random data comes from a tiny
explicit LCG seeded per workload, so every profile run folds to the
same polyhedral DDG.

Every registered workload may declare :class:`Param` specs -- its
sweep-able input sizes with defaults and suggested sweep values.  The
registered factory then accepts the params as keyword bindings
(``reg["pathfinder"](rows=28)``); calling it with **no** bindings
builds the byte-identical default the registry always built, so every
existing artifact key and cached profile stays valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..pipeline import ProgramSpec


class Lcg:
    """Deterministic 32-bit LCG for workload data."""

    def __init__(self, seed: int = 1) -> None:
        self.state = seed & 0x7FFFFFFF or 1

    def next_int(self, bound: int) -> int:
        self.state = (1103515245 * self.state + 12345) & 0x7FFFFFFF
        return self.state % bound

    def next_float(self) -> float:
        return self.next_int(1_000_000) / 1_000_000.0

    def floats(self, n: int) -> List[float]:
        return [self.next_float() for _ in range(n)]

    def ints(self, n: int, bound: int) -> List[int]:
        return [self.next_int(bound) for _ in range(n)]


@dataclass(frozen=True)
class Param:
    """One declarative sweep-able workload input.

    ``default`` mirrors the builder's own keyword default (asserted by
    the registry tests); ``sweep`` lists the suggested grid values a
    default ``repro sweep`` uses -- small enough that a full sweep
    stays test-sized.  An empty ``sweep`` marks a param that can be
    bound explicitly but is not swept by default.
    """

    name: str
    default: int
    sweep: Tuple[int, ...] = ()


#: name -> factory(**bindings) -> ProgramSpec
_REGISTRY: Dict[str, Callable[..., ProgramSpec]] = {}

#: name -> declared Param specs (may be empty)
_PARAMS: Dict[str, Tuple[Param, ...]] = {}


def workload(name: str, params: Tuple[Param, ...] = ()):
    """Decorator registering a workload factory under a name.

    With ``params`` the decorated function must accept the declared
    names as keyword arguments (defaulting to the registry defaults);
    the registered factory validates bindings against the declaration
    so a typo'd sweep axis fails loudly instead of building the
    default shape.
    """

    params = tuple(params)
    allowed = frozenset(p.name for p in params)

    def deco(fn: Callable[..., ProgramSpec]):
        def factory(**bindings) -> ProgramSpec:
            if bindings:
                unknown = sorted(set(bindings) - allowed)
                if unknown:
                    raise TypeError(
                        f"workload {name!r} has no param(s) "
                        f"{', '.join(unknown)}; declared: "
                        f"{', '.join(p.name for p in params) or '(none)'}"
                    )
                bindings = {k: int(v) for k, v in bindings.items()}
            return fn(**bindings)

        factory.__name__ = getattr(fn, "__name__", name)
        factory.__doc__ = fn.__doc__
        _REGISTRY[name] = factory
        _PARAMS[name] = params
        return fn

    return deco


def registry() -> Dict[str, Callable[..., ProgramSpec]]:
    """All registered workload factories (import side effects matter:
    use :func:`repro.workloads.all_workloads` which imports them)."""
    return dict(_REGISTRY)


def params_of(name: str) -> Tuple[Param, ...]:
    """The declared sweep params of one registered workload."""
    return _PARAMS.get(name, ())


def all_params() -> Dict[str, Tuple[Param, ...]]:
    """Declared params of every registered workload."""
    return dict(_PARAMS)
