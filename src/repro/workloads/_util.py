"""Shared helpers for the workload suite.

Workloads are deterministic: all pseudo-random data comes from a tiny
explicit LCG seeded per workload, so every profile run folds to the
same polyhedral DDG.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..pipeline import ProgramSpec


class Lcg:
    """Deterministic 32-bit LCG for workload data."""

    def __init__(self, seed: int = 1) -> None:
        self.state = seed & 0x7FFFFFFF or 1

    def next_int(self, bound: int) -> int:
        self.state = (1103515245 * self.state + 12345) & 0x7FFFFFFF
        return self.state % bound

    def next_float(self) -> float:
        return self.next_int(1_000_000) / 1_000_000.0

    def floats(self, n: int) -> List[float]:
        return [self.next_float() for _ in range(n)]

    def ints(self, n: int, bound: int) -> List[int]:
        return [self.next_int(bound) for _ in range(n)]


#: name -> factory() -> ProgramSpec
_REGISTRY: Dict[str, Callable[[], ProgramSpec]] = {}


def workload(name: str):
    """Decorator registering a workload factory under a name."""

    def deco(fn: Callable[[], ProgramSpec]):
        _REGISTRY[name] = fn
        return fn

    return deco


def registry() -> Dict[str, Callable[[], ProgramSpec]]:
    """All registered workload factories (import side effects matter:
    use :func:`repro.workloads.all_workloads` which imports them)."""
    return dict(_REGISTRY)
