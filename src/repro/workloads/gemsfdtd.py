"""SPEC GemsFDTD update kernels (paper case study II, Table 4).

``updateH_homo`` / ``updateE_homo``: homogeneous-material 3-D
finite-difference time-domain field updates -- six Jacobi-style
stencils per field.  We reproduce the two hot kernels (one field
component each, the others are isomorphic) with a leading time loop:

::

    do t
      do k, j, i                                      ! update.F90:106
        Hx(k,j,i) += Cb * (Ey(k+1,j,i) - Ey(k,j,i) - Ez(k,j+1,i) + Ez(k,j,i))
      do k, j, i                                      ! update.F90:240
        Ex(k,j,i) += Db * (Hz(k,j+1,i) - Hz(k,j,i) - Hy(k+1,j,i) + Hy(k,j,i))

All loops are fully parallel and the 3-D bands fully permutable, so
the suggested transformation is tiling every dimension + parallel
outer (Table 4); the achieved speedup comes from locality and
wavefront threads, reproduced here with the cache cost model.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def _emit_update(pb: ProgramBuilder, name: str, line: int, n: str = "n") -> None:
    """One homogeneous field update: F += c*(A[+1 in k] - A - B[+1 in j] + B)."""
    with pb.function(name, ["F", "A", "B", "n", "plane", "row"],
                     src_file="update.F90") as f:
        with f.loop(0, "n", line=line) as k:
            with f.loop(0, "n", line=line + 1) as j:
                with f.loop(0, "n", line=line + 2) as i:
                    base = f.add(
                        f.add(f.mul(k, "plane"), f.mul(j, "row")), i
                    )
                    basek1 = f.add(base, "plane")
                    basej1 = f.add(base, "row")
                    a1 = f.load("A", index=basek1, line=line + 2)
                    a0 = f.load("A", index=base, line=line + 2)
                    b1 = f.load("B", index=basej1, line=line + 2)
                    b0 = f.load("B", index=base, line=line + 2)
                    diff = f.fadd(f.fsub(f.fsub(a1, a0), b1), b0)
                    cur = f.load("F", index=base, line=line + 2)
                    f.store(
                        "F",
                        f.fadd(cur, f.fmul(0.5, diff)),
                        index=base,
                        line=line + 2,
                    )
        f.ret()


def build_gemsfdtd(n: int = 6, timesteps: int = 2) -> ProgramSpec:
    pb = ProgramBuilder("gemsfdtd")
    with pb.function(
        "main", ["Hx", "Ex", "Ey", "Hz", "n", "plane", "row", "T"],
        src_file="update.F90",
    ) as f:
        with f.loop(0, "T") as t:
            f.call("updateH_homo", ["Hx", "Ey", "Ex", "n", "plane", "row"])
            f.call("updateE_homo", ["Ex", "Hz", "Hx", "n", "plane", "row"])
        f.halt()
    _emit_update(pb, "updateH_homo", line=106)
    _emit_update(pb, "updateE_homo", line=240)
    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(7)
        size = (n + 2) * (n + 2) * (n + 2)
        plane = (n + 2) * (n + 2)
        row = n + 2
        fields = [mem.alloc_array(rng.floats(size)) for _ in range(4)]
        return (fields[0], fields[1], fields[2], fields[3],
                n, plane, row, timesteps), mem

    return ProgramSpec(
        name="gemsfdtd",
        program=program,
        make_state=make_state,
        description="SPEC GemsFDTD homogeneous update kernels (Table 4)",
        region_funcs=("updateH_homo", "updateE_homo"),
        region_label="update.F90:106",
        ld_src=3,
    )


@workload("gemsfdtd", params=(
    Param("n", 6, (5, 6, 7)),
    Param("timesteps", 2),
))
def gemsfdtd_default(**sizes: int) -> ProgramSpec:
    return build_gemsfdtd(**sizes)
