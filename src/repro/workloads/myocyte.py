"""Rodinia ``myocyte``: cardiac myocyte ODE integration.

A time loop drives an embedded Runge-Kutta-style solver whose stages
call the model evaluation: a sweep over the state equations mixing
long straight-line arithmetic with ``exp`` calls.  The region is one
big sequential component dominated by the equation sweep; the solver
control (step acceptance tests on computed error) is the paper's
reason C/B, the shared state/parameter arrays its reason A.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_myocyte(neq: int = 12, steps: int = 4) -> ProgramSpec:
    pb = ProgramBuilder("myocyte")
    with pb.function(
        "main", ["y", "dy", "ytmp", "params", "neq", "steps"],
        src_file="main.c",
    ) as f:
        with f.loop(0, "steps", line=283) as t:
            f.call("solver_step", ["y", "dy", "ytmp", "params", "neq"])
        f.halt()

    with pb.function(
        "solver_step", ["y", "dy", "ytmp", "params", "neq"],
        src_file="main.c",
    ) as f:
        # stage 1: dy = model(y)
        f.call("model_eval", ["y", "dy", "params", "neq"])
        # stage 2: ytmp = y + h/2 * dy ; dy2 = model(ytmp)
        with f.loop(0, "neq", line=300) as i:
            v = f.fadd(
                f.load("y", index=i), f.fmul(0.005, f.load("dy", index=i))
            )
            f.store("ytmp", v, index=i)
        f.call("model_eval", ["ytmp", "dy", "params", "neq"])
        # error-controlled acceptance: data-dependent step rejection
        err = f.set(f.fresh_reg("err"), 0.0)
        with f.loop(0, "neq", line=310) as i:
            f.fadd(err, f.fabs(f.load("dy", index=i)), into=err)
        with f.if_then("lt", err, 1e6):
            with f.loop(0, "neq", line=312) as i:
                v = f.fadd(
                    f.load("y", index=i),
                    f.fmul(0.01, f.load("dy", index=i)),
                )
                f.store("y", v, index=i)
        f.ret()

    with pb.function(
        "model_eval", ["y", "dy", "params", "neq"], src_file="main.c"
    ) as f:
        # gating-variable style equations: dy[i] = (inf(y) - y) / tau
        with f.loop(0, "neq", line=320) as i:
            yi = f.load("y", index=i, line=321)
            p = f.load("params", index=i, line=321)
            e = f.fexp(f.fneg(f.fmul(yi, p)))
            inf = f.fdiv(1.0, f.fadd(1.0, e))
            tau = f.fadd(0.5, f.fmul(0.1, p))
            f.store("dy", f.fdiv(f.fsub(inf, yi), tau), index=i, line=323)
        f.ret()

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(53)
        y = mem.alloc_array(rng.floats(neq))
        dy = mem.alloc(neq, init=0.0)
        ytmp = mem.alloc(neq, init=0.0)
        params = mem.alloc_array([0.5 + x for x in rng.floats(neq)])
        return (y, dy, ytmp, params, neq, steps), mem

    return ProgramSpec(
        name="myocyte",
        program=program,
        make_state=make_state,
        description="Rodinia myocyte: ODE solver with embedded stages",
        region_funcs=("solver_step", "model_eval"),
        region_label="main.c:283",
        ld_src=4,
    )


@workload("myocyte", params=(
    Param("neq", 12, (8, 12, 16)),
    Param("steps", 4),
))
def myocyte_default(**sizes: int) -> ProgramSpec:
    return build_myocyte(**sizes)
