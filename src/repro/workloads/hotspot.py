"""Rodinia ``hotspot``: thermal simulation on a 2-D grid.

Table 5 signature: **%Aff ~0** -- the Rodinia CPU code processes the
grid through *hand-linearized* loops whose row extraction uses integer
division/modulo, which the folding stage does not recognize as affine
(the paper calls this out explicitly for heartwall/hotspot/lud); the
loops are nevertheless 100% parallel and the (r, c) band is tilable.

Statically the bounds/addresses built from ``div``/``mod`` are opaque
(reason B), matching Polly's failure.

Structure: a time loop around a single linearized sweep::

    for t:                          # hotspot_openmp.cpp:318
      for idx in 0 .. rows*cols:
        r = idx / cols; c = idx % cols
        result[idx] = temp[idx] + k*(neighbours - 4*temp[idx]) + power
      swap-less update: temp[idx] = result[idx]   (second sweep)
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_hotspot(rows: int = 10, cols: int = 10, steps: int = 2) -> ProgramSpec:
    pb = ProgramBuilder("hotspot")
    with pb.function(
        "main", ["temp", "power", "result", "rows", "cols", "steps"],
        src_file="hotspot_openmp.cpp",
    ) as f:
        total = f.mul("rows", "cols")
        with f.loop(0, "steps", line=317) as t:
            f.call(
                "single_iteration",
                ["temp", "power", "result", "rows", "cols", total],
            )
            with f.loop(0, total, line=330) as idx:
                f.store("temp", f.load("result", index=idx), index=idx)
        f.halt()

    with pb.function(
        "single_iteration",
        ["temp", "power", "result", "rows", "cols", "total"],
        src_file="hotspot_openmp.cpp",
    ) as f:
        with f.loop(0, "total", line=318) as idx:
            # hand-linearized row/col recovery (div/mod: non-affine)
            r = f.div(idx, "cols")
            c = f.mod(idx, "cols")
            center = f.load("temp", index=idx, line=320)
            acc = f.set(f.fresh_reg("acc"), 0.0)
            # clamped neighbours: the boundary tests use the computed
            # r/c (statically opaque), the accesses use idx +- cols/1
            with f.if_then("gt", r, 0):
                up = f.load("temp", index=f.sub(idx, "cols"), line=321)
                f.fadd(acc, f.fsub(up, center), into=acc)
            with f.if_then("lt", r, f.sub("rows", 1)):
                dn = f.load("temp", index=f.add(idx, "cols"), line=322)
                f.fadd(acc, f.fsub(dn, center), into=acc)
            with f.if_then("gt", c, 0):
                lf = f.load("temp", index=f.sub(idx, 1), line=323)
                f.fadd(acc, f.fsub(lf, center), into=acc)
            with f.if_then("lt", c, f.sub("cols", 1)):
                rt = f.load("temp", index=f.add(idx, 1), line=324)
                f.fadd(acc, f.fsub(rt, center), into=acc)
            p = f.load("power", index=idx, line=326)
            new = f.fadd(center, f.fadd(f.fmul(0.25, acc), p))
            f.store("result", new, index=idx, line=327)
        f.ret()

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(11)
        n = rows * cols
        temp = mem.alloc_array([300.0 + x for x in rng.floats(n)])
        power = mem.alloc_array([0.01 * x for x in rng.floats(n)])
        result = mem.alloc(n, init=0.0)
        return (temp, power, result, rows, cols, steps), mem

    return ProgramSpec(
        name="hotspot",
        program=program,
        make_state=make_state,
        description="Rodinia hotspot: linearized 2-D thermal stencil",
        region_funcs=("single_iteration",),
        region_label="*_openmp.cpp:318",
        ld_src=4,   # the source nests t/chunk/r/c before linearization
    )


@workload("hotspot", params=(
    Param("rows", 10, (8, 10, 12)),
    Param("cols", 10, (8, 10, 12)),
    Param("steps", 2),
))
def hotspot_default(**sizes: int) -> ProgramSpec:
    return build_hotspot(**sizes)
