"""Rodinia ``particlefilter``: sequential Monte Carlo tracking.

Each frame: propagate particles, compute likelihoods against the
frame (indirect pixel accesses), normalize weights, then systematic
resampling through ``findIndex`` -- a search loop whose result feeds a
data-dependent gather.  The many small per-frame sweeps give the large
component count of Table 5 (C=22 collapsing to 2 after fusion);
resampling and the search give reasons C, F and the 27% %Aff.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_particlefilter(
    nparticles: int = 14, npixels: int = 17, frames: int = 2
) -> ProgramSpec:
    pb = ProgramBuilder("particlefilter")
    with pb.function(
        "main",
        ["x", "w", "cdf", "xnew", "frame_px", "seeds", "np", "npx", "frames"],
        src_file="ex_particle_seq.c",
    ) as f:
        with f.loop(0, "frames", line=590) as fr:
            f.call(
                "pf_step",
                ["x", "w", "cdf", "xnew", "frame_px", "seeds", "np", "npx"],
            )
        f.halt()

    with pb.function(
        "pf_step",
        ["x", "w", "cdf", "xnew", "frame_px", "seeds", "np", "npx"],
        src_file="ex_particle_seq.c",
    ) as f:
        # 1. propagate with a cheap LCG noise (integer, deterministic)
        with f.loop(0, "np", line=593) as i:
            s = f.load("seeds", index=i)
            s2 = f.mod(f.add(f.mul(s, 1103515245), 12345), 2147483647)
            f.store("seeds", s2, index=i)
            noise = f.fmul(0.001, f.itof(f.mod(s2, 100)))
            f.store("x", f.fadd(f.load("x", index=i), noise), index=i)
        # 2. likelihood: average intensity at particle-dependent pixels
        with f.loop(0, "np", line=600) as i:
            xi = f.load("x", index=i)
            px = f.mod(f.ftoi(xi), "npx")       # data-dependent pixel
            acc = f.set(f.fresh_reg("acc"), 0.0)
            with f.loop(0, 3, line=603) as k:
                p = f.load(
                    "frame_px", index=f.mod(f.add(px, k), "npx"), line=604
                )
                f.fadd(acc, p, into=acc)
            f.store("w", f.fmul(f.load("w", index=i), acc), index=i)
        # 3. normalize
        total = f.set(f.fresh_reg("total"), 0.0)
        with f.loop(0, "np", line=610) as i:
            f.fadd(total, f.load("w", index=i), into=total)
        with f.loop(0, "np", line=612) as i:
            f.store("w", f.fdiv(f.load("w", index=i), total), index=i)
        # 4. cumulative distribution
        run = f.set(f.fresh_reg("run"), 0.0)
        with f.loop(0, "np", line=616) as i:
            f.fadd(run, f.load("w", index=i), into=run)
            f.store("cdf", run, index=i)
        # 5. systematic resampling via findIndex (search with early out)
        with f.loop(0, "np", line=620) as i:
            u = f.fmul(f.fadd(f.itof(i), 0.5), f.fdiv(1.0, f.itof("np")))
            j = f.call("find_index", ["cdf", "np", u], want_result=True)
            f.store("xnew", f.load("x", index=j), index=i, line=623)
        with f.loop(0, "np", line=625) as i:
            f.store("x", f.load("xnew", index=i), index=i)
            f.store("w", f.fdiv(1.0, f.itof("np")), index=i)
        f.ret()

    with pb.function("find_index", ["cdf", "np", "u"], src_file="ex_particle_seq.c") as f:
        found = f.set(f.fresh_reg("found"), 0)
        done = f.set(f.fresh_reg("done"), 0)
        with f.loop(0, "np", line=575) as i:
            c = f.load("cdf", index=i)
            with f.if_then("eq", done, 0):
                with f.if_then("ge", c, "u"):
                    f.set(found, i)
                    f.set(done, 1)
        f.ret(found)

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(67)
        x = mem.alloc_array([float(rng.next_int(npixels)) for _ in range(nparticles)])
        w = mem.alloc_array([1.0 / nparticles] * nparticles)
        cdf = mem.alloc(nparticles, init=0.0)
        xnew = mem.alloc(nparticles, init=0.0)
        frame_px = mem.alloc_array([0.2 + x for x in rng.floats(npixels)])
        seeds = mem.alloc_array([rng.next_int(10000) + 1 for _ in range(nparticles)])
        return (x, w, cdf, xnew, frame_px, seeds, nparticles, npixels, frames), mem

    return ProgramSpec(
        name="particlefilter",
        program=program,
        make_state=make_state,
        description="Rodinia particlefilter: SMC tracking step",
        region_funcs=("pf_step", "find_index"),
        region_label="*_seq.c:593",
        ld_src=3,
    )


@workload("particlefilter", params=(
    Param("nparticles", 14, (10, 14, 18)),
    Param("npixels", 17),
    Param("frames", 2),
))
def particlefilter_default(**sizes: int) -> ProgramSpec:
    return build_particlefilter(**sizes)
