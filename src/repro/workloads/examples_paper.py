"""The paper's own running examples, as mini-ISA programs.

* :func:`build_fig3_example1` / :func:`build_fig3_example2` -- the
  interprocedural-nest and recursion skeletons of Fig. 3;
* :func:`layerforward_kernel` -- the pseudo-assembler of Fig. 6, the
  first kernel of backprop (``bpnn_layerforward``), whose dependence
  stream and folded output are the paper's Tables 1 and 2.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec


def build_fig3_example1(outer_trips: int = 2, inner_trips: int = 2) -> ProgramSpec:
    """Fig. 3a: main -> A; A's loop calls B; B contains a loop."""
    pb = ProgramBuilder("fig3_ex1")
    with pb.function("main", []) as f:
        f.call("A", [])
        f.halt()
    with pb.function("A", []) as f:
        with f.loop(0, outer_trips) as i:
            f.call("B", [])
        f.ret()
    with pb.function("B", []) as f:
        with f.loop(0, inner_trips) as j:
            f.add(j, 1)
        f.ret()
    program = pb.build()
    return ProgramSpec(
        name="fig3_ex1",
        program=program,
        make_state=lambda: ((), Memory()),
        description="paper Fig. 3 Example 1: loop nest spread across a call",
    )


def build_fig3_example2(depth: int = 3) -> ProgramSpec:
    """Fig. 3f: main calls D (calls C) then B; B recurses, calling C."""
    pb = ProgramBuilder("fig3_ex2")
    with pb.function("main", []) as f:
        f.call("D", [])
        f.call("B", [0])
        f.halt()
    with pb.function("D", []) as f:
        f.call("C", [])
        f.ret()
    with pb.function("C", []) as f:
        f.add(1, 1)
        f.ret()
    with pb.function("B", ["n"]) as f:
        f.call("C", [])
        with f.if_then("lt", "n", depth - 1):
            f.call("B", [f.add("n", 1)])
        f.ret()
    program = pb.build()
    return ProgramSpec(
        name="fig3_ex2",
        program=program,
        make_state=lambda: ((), Memory()),
        description="paper Fig. 3 Example 2: recursion folded to one loop",
    )


def layerforward_kernel(n1: int = 41, n2: int = 15) -> ProgramSpec:
    """Fig. 6: the first kernel of backprop, in pseudo-assembler.

    ::

        for (j = 1; j <= n2)
          sum = 0.0
          for (k = 0; k <= n1)
            tmp1 = load(&conn + k)     // I1: row pointer of conn[k]
            tmp2 = load(tmp1 + j)      // I2: conn[k][j]
            tmp3 = load(&l1 + k)       // I3: l1[k]
            sum = sum + tmp2 * tmp3    // I4
            k = k + 1                  // I5
          tmp4 = call squash(sum)      // I6
          store(&l2 + j, tmp4)         // I7
          j = j + 1                    // I8

    The defaults reproduce Table 2's bounds exactly: ``j`` runs
    ``1..n2`` (15 iterations, canonical ``0 <= cj < 15``) and ``k``
    runs ``0..n1`` (42 iterations, ``0 <= ck < 42``).

    ``conn`` is an array of *row pointers* (pointer indirection: the
    exact feature that defeats static analysis, paper Table 5 reason
    code F), ``l1`` the input layer, ``l2`` the output layer.
    """
    pb = ProgramBuilder("layerforward")
    with pb.function(
        "main", ["conn", "l1", "l2", "n1", "n2"], src_file="backprop.c"
    ) as f:
        f.call("bpnn_layerforward", ["conn", "l1", "l2", "n1", "n2"])
        f.halt()
    with pb.function(
        "bpnn_layerforward",
        ["conn", "l1", "l2", "n1", "n2"],
        src_file="backprop.c",
    ) as f:
        with f.loop(1, "n2", rel="le", line=253) as j:
            sum_ = f.set(f.fresh_reg("sum"), 0.0)
            with f.loop(0, "n1", rel="le", line=254) as k:
                tmp1 = f.load("conn", index=k, line=254)       # I1
                tmp2 = f.load(tmp1, index=j, line=254)         # I2
                tmp3 = f.load("l1", index=k, line=254)         # I3
                prod = f.fmul(tmp2, tmp3)
                f.fadd(sum_, prod, into=sum_)                  # I4
            tmp4 = f.call("squash", [sum_], want_result=True, line=256)  # I6
            f.store("l2", tmp4, index=j, line=256)             # I7
        f.ret()
    with pb.function("squash", ["x"], src_file="backprop.c") as f:
        # sigmoid: 1 / (1 + exp(-x))
        e = f.fexp(f.fneg("x"))
        f.ret(f.fdiv(1.0, f.fadd(1.0, e)))
    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        # row-pointer matrix conn[(n1+1)][(n2+2)]
        rows = [
            mem.alloc_array(
                [math.sin(0.3 * k + 0.7 * j) for j in range(n2 + 2)]
            )
            for k in range(n1 + 1)
        ]
        conn = mem.alloc_array(rows)
        l1 = mem.alloc_array([math.cos(0.2 * k) for k in range(n1 + 1)])
        l2 = mem.alloc(n2 + 2, init=0.0)
        return (conn, l1, l2, n1, n2), mem

    return ProgramSpec(
        name="layerforward",
        program=program,
        make_state=make_state,
        description="paper Fig. 6 kernel (Tables 1-2)",
    )
