"""Rodinia ``pathfinder``: dynamic programming over a grid.

Each row's cost depends on the three nearest cells of the previous
row -- a wavefront DP.  The Rodinia code double-buffers ``src``/``dst``
and *swaps the base pointers* every row (Polly reason P: base pointer
not loop invariant; plus B from the clamped neighbour bounds).
Dynamically the swap makes the buffer accesses alternate between two
bases, which is not affine in the row index -- hence Table 5's %Aff of
67 (the ``wall`` reads stay affine).  The (t, j) band is tilable after
skewing (skew Y), giving wavefront parallelism, but the skewed inner
dimension is stride-hostile (%simdops 0).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_pathfinder(rows: int = 20, cols: int = 12) -> ProgramSpec:
    pb = ProgramBuilder("pathfinder")
    with pb.function(
        "main", ["wall", "buf_a", "buf_b", "rows", "cols"],
        src_file="pathfinder.cpp",
    ) as f:
        # in-program data initialization (the paper instruments the
        # full execution, so init sweeps are part of the profile)
        total = f.mul("rows", "cols")
        with f.loop(0, total, line=80) as i:
            f.store("wall", f.fmul(0.37, f.itof(i)), index=i, line=81)
        src = f.set(f.fresh_reg("src"), "buf_a")
        dst = f.set(f.fresh_reg("dst"), "buf_b")
        # first row initializes the DP
        with f.loop(0, "cols", line=97) as j:
            f.store(src, f.load("wall", index=j), index=j)
        with f.loop(1, "rows", line=99) as t:
            with f.loop(0, "cols", line=100) as j:
                best = f.set(f.fresh_reg("best"), f.load(src, index=j, line=101))
                with f.if_then("gt", j, 0):
                    left = f.load(src, index=f.sub(j, 1), line=102)
                    f.fmin(best, left, into=best)
                with f.if_then("lt", j, f.sub("cols", 1)):
                    right = f.load(src, index=f.add(j, 1), line=103)
                    f.fmin(best, right, into=best)
                w = f.load("wall", index=f.add(f.mul(t, "cols"), j), line=105)
                f.store(dst, f.fadd(best, w), index=j, line=105)
            # pointer swap: src/dst bases alternate every row
            tmp = f.set(f.fresh_reg("tmp"), src)
            f.set(src, dst)
            f.set(dst, tmp)
        f.halt()

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(23)
        wall = mem.alloc_array(rng.floats(rows * cols))
        a = mem.alloc(cols, init=0.0)
        b = mem.alloc(cols, init=0.0)
        return (wall, a, b, rows, cols), mem

    return ProgramSpec(
        name="pathfinder",
        program=program,
        make_state=make_state,
        description="Rodinia pathfinder: wavefront DP with pointer swap",
        region_funcs=("main",),
        region_label="pathfinder.cpp:99",
        fusion_heuristic="M",
        ld_src=2,
    )


@workload("pathfinder", params=(
    Param("rows", 20, (12, 20, 28)),
    Param("cols", 12, (8, 12, 16)),
))
def pathfinder_default(**sizes: int) -> ProgramSpec:
    return build_pathfinder(**sizes)
