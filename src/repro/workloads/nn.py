"""Rodinia ``nn``: nearest neighbours of a target among records.

A single 1-D scan computing Euclidean distances plus a running argmin
whose update executes only when a new minimum appears -- a
data-dependent domain with holes, which keeps the hot loop outside the
exactly-affine fold (Table 5: %Aff 1, reasons R F, 1-D region, no
exploitable parallelism reported by the paper beyond the distance
computation itself).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_nn(nrecords: int = 48) -> ProgramSpec:
    pb = ProgramBuilder("nn")
    with pb.function(
        "main", ["recs", "dist", "n", "tlat", "tlng"],
        src_file="nn_openmp.c",
    ) as f:
        f.call("find_distances", ["recs", "dist", "n", "tlat", "tlng"])
        best = f.set(f.fresh_reg("best"), 1e30)
        besti = f.set(f.fresh_reg("besti"), -1)
        with f.loop(0, "n", line=125) as i:
            d = f.load("dist", index=i)
            with f.if_then("lt", d, best):
                f.set(best, d)
                f.set(besti, i)
        f.ret(besti)

    with pb.function(
        "find_distances", ["recs", "dist", "n", "tlat", "tlng"],
        src_file="nn_openmp.c",
    ) as f:
        with f.loop(0, "n", line=119) as i:
            # records are structs behind a pointer array (the real code
            # parses hurricane records into heap structs): pointer
            # indirection (F) plus a non-leaf helper call (R) statically
            rec = f.load("recs", index=i, line=120)
            d = f.call(
                "euclid", [rec, "tlat", "tlng"], want_result=True, line=121
            )
            f.store("dist", d, index=i, line=121)
        f.ret()

    with pb.function("euclid", ["rec", "tlat", "tlng"],
                     src_file="nn_openmp.c") as f:
        la = f.load("rec", offset=0)
        lo = f.load("rec", offset=1)
        dla = f.fsub(la, "tlat")
        dlo = f.fsub(lo, "tlng")
        f.ret(f.fsqrt(f.fadd(f.fmul(dla, dla), f.fmul(dlo, dlo))))

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(43)
        recs = mem.alloc_array(
            [
                mem.alloc_array([90.0 * rng.next_float(),
                                 180.0 * rng.next_float()])
                for _ in range(nrecords)
            ]
        )
        dist = mem.alloc(nrecords, init=0.0)
        return (recs, dist, nrecords, 45.0, 90.0), mem

    return ProgramSpec(
        name="nn",
        program=program,
        make_state=make_state,
        description="Rodinia nn: nearest neighbour scan",
        region_funcs=("find_distances", "euclid"),
        region_label="nn_openmp.c:119",
        ld_src=1,
    )


@workload("nn", params=(
    Param("nrecords", 48, (32, 48, 64)),
))
def nn_default(**sizes: int) -> ProgramSpec:
    return build_nn(**sizes)
