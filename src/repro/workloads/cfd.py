"""Rodinia ``cfd`` (euler3d_cpu): unstructured-grid Euler solver.

Per time step: a per-cell step factor, then the flux computation --
for every cell, accumulate contributions from its (fixed number of)
neighbours found through the ``elements_surrounding_elements``
indirection table, then a per-cell time integration.

The source writes the neighbour accumulation as a loop of 4 (ld-src
5D); compilers fully unroll it (the paper's ld-bin 4D for cfd), which
we mirror by emitting the four neighbour bodies straight-line.  The
indirection table makes the neighbour loads non-affine statically
(Polly reason F) but the bulk of the arithmetic is affine (%Aff 98).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload

NNB = 4  # neighbours per element (tetrahedral grid)


def build_cfd(ncells: int = 16, steps: int = 2) -> ProgramSpec:
    pb = ProgramBuilder("cfd")
    with pb.function(
        "main",
        ["vars", "fluxes", "step_factors", "ese", "normals", "n", "steps"],
        src_file="euler3d_cpu.cpp",
    ) as f:
        with f.loop(0, "steps", line=470) as t:
            f.call("compute_step_factor", ["vars", "step_factors", "n"])
            f.call("compute_flux", ["vars", "fluxes", "ese", "normals", "n"])
            f.call("time_step", ["vars", "fluxes", "step_factors", "n"])
        f.halt()

    with pb.function(
        "compute_step_factor", ["vars", "step_factors", "n"],
        src_file="euler3d_cpu.cpp",
    ) as f:
        with f.loop(0, "n", line=475) as i:
            density = f.load("vars", index=i, line=476)
            speed = f.fsqrt(f.fabs(density))
            f.store(
                "step_factors", f.fdiv(0.5, f.fadd(speed, 0.01)), index=i,
                line=477,
            )
        f.ret()

    with pb.function(
        "compute_flux", ["vars", "fluxes", "ese", "normals", "n"],
        src_file="euler3d_cpu.cpp",
    ) as f:
        with f.loop(0, "n", line=480) as i:
            mine = f.load("vars", index=i, line=481)
            acc = f.set(f.fresh_reg("acc"), 0.0)
            # the source loops over 4 neighbours; the binary is unrolled
            for nb in range(NNB):
                idx = f.load("ese", index=f.add(f.mul(i, NNB), nb), line=483)
                other = f.load("vars", index=idx, line=484)      # indirect
                normal = f.load(
                    "normals", index=f.add(f.mul(i, NNB), nb), line=485
                )
                f.fadd(acc, f.fmul(normal, f.fsub(other, mine)), into=acc)
            f.store("fluxes", acc, index=i, line=488)
        f.ret()

    with pb.function(
        "time_step", ["vars", "fluxes", "step_factors", "n"],
        src_file="euler3d_cpu.cpp",
    ) as f:
        with f.loop(0, "n", line=492) as i:
            v = f.load("vars", index=i)
            fl = f.load("fluxes", index=i)
            sf = f.load("step_factors", index=i)
            f.store("vars", f.fadd(v, f.fmul(sf, fl)), index=i, line=494)
        f.ret()

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(59)
        vars_ = mem.alloc_array([1.0 + x for x in rng.floats(ncells)])
        fluxes = mem.alloc(ncells, init=0.0)
        sf = mem.alloc(ncells, init=0.0)
        ese = mem.alloc_array(
            [rng.next_int(ncells) for _ in range(ncells * NNB)]
        )
        normals = mem.alloc_array(
            [x - 0.5 for x in rng.floats(ncells * NNB)]
        )
        return (vars_, fluxes, sf, ese, normals, ncells, steps), mem

    return ProgramSpec(
        name="cfd",
        program=program,
        make_state=make_state,
        description="Rodinia cfd: unstructured Euler solver step",
        region_funcs=("compute_step_factor", "compute_flux", "time_step"),
        region_label="*3d_cpu.cpp:480",
        ld_src=5,   # source: steps/kernels/cells/neighbours(+fields)
    )


@workload("cfd", params=(
    Param("ncells", 16, (12, 16, 20)),
    Param("steps", 2),
))
def cfd_default(**sizes: int) -> ProgramSpec:
    return build_cfd(**sizes)
