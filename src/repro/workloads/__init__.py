"""The workload suite: all 19 Rodinia 3.1 CPU benchmarks (paper
Table 5), the GemsFDTD kernels (Table 4), the paper's running
examples (Figs. 3/6, Tables 1-2), and the PolyBench-style affine
kernels (``pb_*`` plus the ``mm`` tracing demo) -- re-implemented in
the mini-ISA at profiler-friendly scale (see DESIGN.md for the
substitution argument).
"""

from typing import Callable, Dict

from ..pipeline import ProgramSpec
from . import (  # noqa: F401  (imports register the workloads)
    backprop,
    bfs,
    btree,
    cfd,
    examples_paper,
    gemsfdtd,
    heartwall,
    hotspot,
    hotspot3d,
    kmeans,
    lavamd,
    leukocyte,
    lud,
    myocyte,
    nn,
    nw,
    particlefilter,
    pathfinder,
    polybench,
    srad,
    streamcluster,
)
from ._util import Param, all_params, params_of, registry  # noqa: F401

#: the Rodinia 3.1 (CPU) benchmark order of the paper's Table 5
RODINIA_ORDER = (
    "backprop",
    "bfs",
    "b+tree",
    "cfd",
    "heartwall",
    "hotspot",
    "hotspot3D",
    "kmeans",
    "lavaMD",
    "leukocyte",
    "lud",
    "myocyte",
    "nn",
    "nw",
    "particlefilter",
    "pathfinder",
    "srad_v1",
    "srad_v2",
    "streamcluster",
)


def all_workloads() -> Dict[str, Callable[[], ProgramSpec]]:
    """All registered workload factories, by name."""
    return registry()


def rodinia_workloads() -> Dict[str, Callable[[], ProgramSpec]]:
    """The 19 Rodinia benchmarks in the paper's table order."""
    reg = registry()
    return {name: reg[name] for name in RODINIA_ORDER}
