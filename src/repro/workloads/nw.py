"""Rodinia ``nw``: Needleman-Wunsch sequence alignment.

The score matrix is a 2-D dynamic program::

    score[i][j] = max(score[i-1][j-1] + ref[i][j],
                      score[i-1][j]   - penalty,
                      score[i][j-1]   - penalty)

Dependence distances (1,1), (1,0), (0,1): no loop is parallel as
written, but the band is fully permutable, so tiling + skewed
wavefront execution applies (Table 5: skew Y, TileD 2D, and 100%
post-transformation %||ops).  Statically the region is
interprocedural (the max is a helper call) with indirect reference
scores (reasons R, F).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_nw(n: int = 10, penalty: float = 1.0) -> ProgramSpec:
    pb = ProgramBuilder("nw")
    with pb.function(
        "main", ["score", "ref", "n", "row"],
        src_file="needle.cpp",
    ) as f:
        with f.loop(1, "n", line=308) as i:
            with f.loop(1, "n", line=309) as j:
                k = f.add(f.mul(i, "row"), j)
                diag = f.load("score", index=f.sub(f.sub(k, "row"), 1), line=311)
                up = f.load("score", index=f.sub(k, "row"), line=312)
                left = f.load("score", index=f.sub(k, 1), line=313)
                r = f.load("ref", index=k, line=314)
                m = f.call(
                    "maximum",
                    [f.fadd(diag, r), f.fsub(up, penalty), f.fsub(left, penalty)],
                    want_result=True,
                    line=315,
                )
                f.store("score", m, index=k, line=315)
        f.halt()

    with pb.function("maximum", ["a", "b", "c"], src_file="needle.cpp") as f:
        f.ret(f.fmax(f.fmax("a", "b"), "c"))

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(29)
        size = (n + 1) * (n + 1)
        score = mem.alloc_array(
            [-(i % (n + 1)) * 1.0 if i < n + 1 or i % (n + 1) == 0 else 0.0
             for i in range(size)]
        )
        ref = mem.alloc_array([x * 10 - 5 for x in rng.floats(size)])
        return (score, ref, n + 1, n + 1), mem

    return ProgramSpec(
        name="nw",
        program=program,
        make_state=make_state,
        description="Rodinia nw: Needleman-Wunsch wavefront DP",
        region_funcs=("main", "maximum"),
        region_label="needle.cpp:308",
        ld_src=4,   # the source is tiled by hand (4 loop levels)
    )


@workload("nw", params=(
    Param("n", 10, (8, 10, 12)),
))
def nw_default(**sizes: int) -> ProgramSpec:
    return build_nw(**sizes)
