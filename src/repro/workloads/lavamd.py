"""Rodinia ``lavaMD``: particle interactions within neighbour boxes.

For every box, for every neighbour in its *neighbour list* (an
indirection table), all particle pairs interact through an exponential
kernel.  The neighbour-list indirection puts the inner loops' data in
non-affine territory (Table 5: %Aff 0, reasons B F) even though the
loop structure itself is a clean 4-D nest with outer parallelism.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_lavamd(nboxes: int = 8, nper: int = 3, nnb: int = 4) -> ProgramSpec:
    pb = ProgramBuilder("lavaMD")
    with pb.function(
        "main", ["pos", "charge", "force", "nblist", "nboxes", "nper", "nnb"],
        src_file="kernel_cpu.c",
    ) as f:
        f.call(
            "kernel_cpu",
            ["pos", "charge", "force", "nblist", "nboxes", "nper", "nnb"],
        )
        f.halt()

    with pb.function(
        "kernel_cpu",
        ["pos", "charge", "force", "nblist", "nboxes", "nper", "nnb"],
        src_file="kernel_cpu.c",
    ) as f:
        with f.loop(0, "nboxes", line=123) as b:
            home_base = f.mul(b, "nper")
            with f.loop(0, "nnb", line=126) as k:
                nb = f.load("nblist", index=f.add(f.mul(b, "nnb"), k), line=127)
                nb_base = f.mul(nb, "nper")           # data-dependent base
                with f.loop(0, "nper", line=129) as i:
                    xi = f.load("pos", index=f.add(home_base, i), line=130)
                    acc = f.set(f.fresh_reg("acc"), 0.0)
                    with f.loop(0, "nper", line=132) as j:
                        xj = f.load("pos", index=f.add(nb_base, j), line=133)
                        qj = f.load("charge", index=f.add(nb_base, j), line=133)
                        r2 = f.fmul(f.fsub(xi, xj), f.fsub(xi, xj))
                        u = f.fexp(f.fneg(r2))
                        f.fadd(acc, f.fmul(qj, u), into=acc)
                    fi = f.add(home_base, i)
                    cur = f.load("force", index=fi, line=137)
                    f.store("force", f.fadd(cur, acc), index=fi, line=137)
        f.ret()

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(61)
        n = nboxes * nper
        pos = mem.alloc_array(rng.floats(n))
        charge = mem.alloc_array(rng.floats(n))
        force = mem.alloc(n, init=0.0)
        nblist: List[int] = []
        for b in range(nboxes):
            nbs = [b] + [rng.next_int(nboxes) for _ in range(nnb - 1)]
            nblist.extend(nbs[:nnb])
        nbl = mem.alloc_array(nblist)
        return (pos, charge, force, nbl, nboxes, nper, nnb), mem

    return ProgramSpec(
        name="lavaMD",
        program=program,
        make_state=make_state,
        description="Rodinia lavaMD: boxed particle interactions",
        region_funcs=("kernel_cpu",),
        region_label="kernel_cpu.c:123",
        ld_src=4,
    )


@workload("lavaMD", params=(
    Param("nboxes", 8, (6, 8, 10)),
    Param("nper", 3),
    Param("nnb", 4),
))
def lavamd_default(**sizes: int) -> ProgramSpec:
    return build_lavamd(**sizes)
