"""Rodinia ``streamcluster``: online k-median clustering.

The ``pgain`` kernel evaluates, for a candidate center, the cost delta
of opening it: for every point, a distance over all dimensions against
its current center (loaded indirectly), plus data-dependent
reassignment bookkeeping.  The paper's run *exhausted memory in the
polyhedral scheduler* -- Table 5 shows no transformation columns for
streamcluster.  We model that resource wall with the spec's
``scheduler_stmt_budget``: the benchmark harness treats a region whose
folded statement count exceeds the budget as "scheduler out of
memory" and prints dashes, as the paper does.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_streamcluster(
    npoints: int = 10, ndims: int = 4, ncandidates: int = 3
) -> ProgramSpec:
    pb = ProgramBuilder("streamcluster")
    with pb.function(
        "main",
        ["coords", "assign", "cost", "gains", "np", "nd", "ncand"],
        src_file="streamcluster_omp.cpp",
    ) as f:
        with f.loop(0, "ncand", line=1269) as cand:
            g = f.call(
                "pgain", ["coords", "assign", "cost", cand, "np", "nd"],
                want_result=True,
            )
            f.store("gains", g, index=cand)
        f.halt()

    with pb.function(
        "pgain", ["coords", "assign", "cost", "cand", "np", "nd"],
        src_file="streamcluster_omp.cpp",
    ) as f:
        gain = f.set(f.fresh_reg("gain"), 0.0)
        with f.loop(0, "np", line=1272) as i:
            # distance of point i to the candidate center
            d = f.set(f.fresh_reg("d"), 0.0)
            with f.loop(0, "nd", line=1275) as k:
                xi = f.load("coords", index=f.add(f.mul(i, "nd"), k), line=1276)
                xc = f.load(
                    "coords", index=f.add(f.mul("cand", "nd"), k), line=1276
                )
                dd = f.fsub(xi, xc)
                f.fadd(d, f.fmul(dd, dd), into=d)
            # compare against the current assignment cost (indirect)
            cur_center = f.load("assign", index=i, line=1280)
            cur = f.set(f.fresh_reg("cur"), 0.0)
            with f.loop(0, "nd", line=1282) as k:
                xi = f.load("coords", index=f.add(f.mul(i, "nd"), k))
                xc = f.load(
                    "coords", index=f.add(f.mul(cur_center, "nd"), k)
                )
                dd = f.fsub(xi, xc)
                f.fadd(cur, f.fmul(dd, dd), into=cur)
            with f.if_then("lt", d, cur):
                f.fadd(gain, f.fsub(cur, d), into=gain)
                f.store("assign", "cand", index=i, line=1288)
        f.ret(gain)

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(79)
        coords = mem.alloc_array(rng.floats(npoints * ndims))
        # points arrive pre-clustered (as after a few pgain rounds):
        # runs of consecutive points share a center
        assign = mem.alloc_array(
            [min(3 * (i // max(npoints // 3, 1)), npoints - 1)
             for i in range(npoints)]
        )
        cost = mem.alloc(npoints, init=0.0)
        gains = mem.alloc(ncandidates, init=0.0)
        return (coords, assign, cost, gains, npoints, ndims, ncandidates), mem

    return ProgramSpec(
        name="streamcluster",
        program=program,
        make_state=make_state,
        description="Rodinia streamcluster: pgain candidate evaluation",
        region_funcs=("pgain",),
        region_label="*_omp.cpp:1269",
        ld_src=6,
        scheduler_stmt_budget=10,   # emulates the paper's scheduler OOM
    )


@workload("streamcluster", params=(
    Param("npoints", 10, (8, 10, 12)),
    Param("ndims", 4),
    Param("ncandidates", 3),
))
def streamcluster_default(**sizes: int) -> ProgramSpec:
    return build_streamcluster(**sizes)
