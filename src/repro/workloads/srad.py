"""Rodinia ``srad`` (v1 and v2): speckle-reducing anisotropic diffusion.

Per iteration: a first 2-D sweep computes directional derivatives and
the diffusion coefficient, a second sweep applies the update.  The
Rodinia code clamps boundary neighbours through *precomputed index
arrays* (``iN[i] = max(i-1, 0)`` etc.) -- a pointer/array indirection
that is non-affine statically (Polly reasons R, F) but folds to
piecewise-affine accesses dynamically; hence Table 5's %Aff of 99/98
with reasons RF.

v1 (main.c:241) and v2 (srad.cpp:114) differ in how the image is
linearized and in the update's neighbour set; both are 3-D (iter, i,
j) regions with a tilable 2-D spatial band and fully parallel sweeps.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def _emit_srad_iter(pb: ProgramBuilder, use_index_arrays: bool) -> None:
    """One diffusion iteration: derivative sweep + update sweep."""
    with pb.function(
        "srad_iter",
        ["img", "c", "dN", "dS", "dW", "dE", "iN", "iS", "jW", "jE",
         "rows", "cols", "q0"],
        src_file="main.c" if use_index_arrays else "srad.cpp",
    ) as f:
        base_line = 241 if use_index_arrays else 114
        with f.loop(0, "rows", line=base_line) as i:
            with f.loop(0, "cols", line=base_line + 1) as j:
                k = f.add(f.mul(i, "cols"), j)
                jc = f.load("img", index=k, line=base_line + 2)
                if use_index_arrays:
                    # v1: clamped neighbours through index arrays
                    in_ = f.load("iN", index=i)
                    is_ = f.load("iS", index=i)
                    jw = f.load("jW", index=j)
                    je = f.load("jE", index=j)
                    n = f.load("img", index=f.add(f.mul(in_, "cols"), j))
                    s = f.load("img", index=f.add(f.mul(is_, "cols"), j))
                    w = f.load("img", index=f.add(f.mul(i, "cols"), jw))
                    e = f.load("img", index=f.add(f.mul(i, "cols"), je))
                else:
                    # v2: interior-only direct neighbours (boundary
                    # handled by clamped loop bounds in real code; we
                    # read the same cell at the borders)
                    n = f.load("img", index=k)
                    s = f.load("img", index=k)
                    w = f.load("img", index=k)
                    e = f.load("img", index=k)
                dn = f.fsub(n, jc)
                ds = f.fsub(s, jc)
                dw = f.fsub(w, jc)
                de = f.fsub(e, jc)
                f.store("dN", dn, index=k)
                f.store("dS", ds, index=k)
                f.store("dW", dw, index=k)
                f.store("dE", de, index=k)
                g2 = f.fadd(
                    f.fadd(f.fmul(dn, dn), f.fmul(ds, ds)),
                    f.fadd(f.fmul(dw, dw), f.fmul(de, de)),
                )
                num = f.fdiv(g2, f.fadd(f.fmul(jc, jc), 0.0001))
                den = f.fadd(1.0, f.fmul(0.25, num))
                cval = f.fdiv(1.0, f.fadd(1.0, f.fdiv(f.fsub(num, "q0"), den)))
                f.store("c", cval, index=k)
        with f.loop(0, "rows", line=base_line + 20) as i:
            with f.loop(0, "cols", line=base_line + 21) as j:
                k = f.add(f.mul(i, "cols"), j)
                cc = f.load("c", index=k)
                dsum = f.fadd(
                    f.fadd(f.load("dN", index=k), f.load("dS", index=k)),
                    f.fadd(f.load("dW", index=k), f.load("dE", index=k)),
                )
                old = f.load("img", index=k)
                f.store(
                    "img",
                    f.fadd(old, f.fmul(0.125, f.fmul(cc, dsum))),
                    index=k,
                )
        f.ret()


def _build(version: str, rows: int, cols: int, iters: int) -> ProgramSpec:
    pb = ProgramBuilder(f"srad_{version}")
    with pb.function(
        "main",
        ["img", "c", "dN", "dS", "dW", "dE", "iN", "iS", "jW", "jE",
         "rows", "cols", "iters"],
        src_file="main.c" if version == "v1" else "srad.cpp",
    ) as f:
        with f.loop(0, "iters") as it:
            f.call(
                "srad_iter",
                ["img", "c", "dN", "dS", "dW", "dE", "iN", "iS", "jW",
                 "jE", "rows", "cols", 0.05],
            )
        f.halt()
    _emit_srad_iter(pb, use_index_arrays=(version == "v1"))
    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(17 if version == "v1" else 19)
        npix = rows * cols
        img = mem.alloc_array([1.0 + x for x in rng.floats(npix)])
        c = mem.alloc(npix, init=0.0)
        bufs = [mem.alloc(npix, init=0.0) for _ in range(4)]
        iN = mem.alloc_array([max(i - 1, 0) for i in range(rows)])
        iS = mem.alloc_array([min(i + 1, rows - 1) for i in range(rows)])
        jW = mem.alloc_array([max(j - 1, 0) for j in range(cols)])
        jE = mem.alloc_array([min(j + 1, cols - 1) for j in range(cols)])
        return (img, c, *bufs, iN, iS, jW, jE, rows, cols, iters), mem

    return ProgramSpec(
        name=f"srad_{version}",
        program=program,
        make_state=make_state,
        description=f"Rodinia srad {version}: anisotropic diffusion",
        region_funcs=("srad_iter",),
        region_label="main.c:241" if version == "v1" else "srad.cpp:114",
        ld_src=3,
    )


def build_srad_v1(rows: int = 8, cols: int = 8, iters: int = 2) -> ProgramSpec:
    return _build("v1", rows, cols, iters)


def build_srad_v2(rows: int = 8, cols: int = 8, iters: int = 2) -> ProgramSpec:
    return _build("v2", rows, cols, iters)


@workload("srad_v1", params=(
    Param("rows", 8, (6, 8, 10)),
    Param("cols", 8, (6, 8, 10)),
    Param("iters", 2),
))
def srad_v1_default(**sizes: int) -> ProgramSpec:
    return build_srad_v1(**sizes)


@workload("srad_v2", params=(
    Param("rows", 8, (6, 8, 10)),
    Param("cols", 8, (6, 8, 10)),
    Param("iters", 2),
))
def srad_v2_default(**sizes: int) -> ProgramSpec:
    return build_srad_v2(**sizes)
