"""Rodinia ``kmeans``: iterative clustering.

Per iteration: every point computes its distance to every cluster
over all features (a fully affine 3-D core, hence %Aff 97) and joins
the nearest cluster -- the membership update writes through a
*data-dependent index* (``new_centers[closest][f] += ...``), which is
non-affine and the source of Polly's R/F/A failures on the real code.
The convergence test makes the outer iteration loop's trip count
data-dependent (bounded here for determinism).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_kmeans(
    npoints: int = 12, nclusters: int = 3, nfeatures: int = 4, iters: int = 2
) -> ProgramSpec:
    pb = ProgramBuilder("kmeans")
    with pb.function(
        "main",
        ["feat", "clusters", "membership", "newc", "newcount",
         "np", "nc", "nf", "iters"],
        src_file="kmeans_clustering.c",
    ) as f:
        with f.loop(0, "iters", line=158) as it:
            f.call(
                "assign_points",
                ["feat", "clusters", "membership", "newc", "newcount",
                 "np", "nc", "nf"],
            )
            f.call(
                "update_centers", ["clusters", "newc", "newcount", "nc", "nf"]
            )
        f.halt()

    with pb.function(
        "assign_points",
        ["feat", "clusters", "membership", "newc", "newcount",
         "np", "nc", "nf"],
        src_file="kmeans_clustering.c",
    ) as f:
        with f.loop(0, "np", line=160) as i:
            best = f.set(f.fresh_reg("best"), 1e30)
            besti = f.set(f.fresh_reg("besti"), 0)
            with f.loop(0, "nc", line=162) as c:
                dist = f.set(f.fresh_reg("dist"), 0.0)
                with f.loop(0, "nf", line=164) as ft:
                    x = f.load("feat", index=f.add(f.mul(i, "nf"), ft), line=165)
                    y = f.load(
                        "clusters", index=f.add(f.mul(c, "nf"), ft), line=165
                    )
                    d = f.fsub(x, y)
                    f.fadd(dist, f.fmul(d, d), into=dist)
                with f.if_then("lt", dist, best):
                    f.set(best, dist)
                    f.set(besti, c)
            f.store("membership", besti, index=i, line=170)
            # data-dependent accumulation into the winning cluster
            cnt = f.load("newcount", index=besti, line=171)
            f.store("newcount", f.add(cnt, 1), index=besti, line=171)
            with f.loop(0, "nf", line=172) as ft:
                x = f.load("feat", index=f.add(f.mul(i, "nf"), ft))
                idx = f.add(f.mul(besti, "nf"), ft)
                cur = f.load("newc", index=idx)
                f.store("newc", f.fadd(cur, x), index=idx, line=173)
        f.ret()

    with pb.function(
        "update_centers", ["clusters", "newc", "newcount", "nc", "nf"],
        src_file="kmeans_clustering.c",
    ) as f:
        with f.loop(0, "nc", line=180) as c:
            cnt = f.load("newcount", index=c)
            with f.if_then("gt", cnt, 0):
                fcnt = f.itof(cnt)
                with f.loop(0, "nf", line=182) as ft:
                    idx = f.add(f.mul(c, "nf"), ft)
                    s = f.load("newc", index=idx)
                    f.store("clusters", f.fdiv(s, fcnt), index=idx)
                    f.store("newc", 0.0, index=idx)
            f.store("newcount", 0, index=c)
        f.ret()

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(37)
        feat = mem.alloc_array(rng.floats(npoints * nfeatures))
        clusters = mem.alloc_array(rng.floats(nclusters * nfeatures))
        membership = mem.alloc(npoints, init=0)
        newc = mem.alloc(nclusters * nfeatures, init=0.0)
        newcount = mem.alloc(nclusters, init=0)
        return (feat, clusters, membership, newc, newcount,
                npoints, nclusters, nfeatures, iters), mem

    return ProgramSpec(
        name="kmeans",
        program=program,
        make_state=make_state,
        description="Rodinia kmeans: iterative clustering",
        region_funcs=("assign_points", "update_centers"),
        region_label="*_clustering.c:160",
        ld_src=4,
    )


@workload("kmeans", params=(
    Param("npoints", 12, (8, 12, 16)),
    Param("nclusters", 3),
    Param("nfeatures", 4),
    Param("iters", 2),
))
def kmeans_default(**sizes: int) -> ProgramSpec:
    return build_kmeans(**sizes)
