"""Rodinia ``backprop``: back-propagation training of a 3-layer MLP.

The paper's running example (case study I, Fig. 6/7, Tables 1-3).
Faithful scaled-down re-implementation of the Rodinia CPU version:

* weight matrices are **arrays of row pointers** (``conn[k][j]`` goes
  through a loaded pointer), the indirection that defeats static
  modeling (Polly reason F/A) but folds dynamically;
* ``bpnn_layerforward`` is called twice (input->hidden with the large
  input layer, hidden->output with the tiny one) -- the paper's
  feedback specializes only the hot call;
* ``squash`` (the sigmoid) is a function call inside the 2-D nest,
  making the region interprocedural;
* the training step runs 6 kernels in sequence (2x layerforward,
  output_error, hidden_error, 2x adjust_weights), giving the multi-
  component structure of Table 5 (C=6).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def _emit_layerforward(pb: ProgramBuilder) -> None:
    """for j in 1..n2: l2[j] = squash(sum_k conn[k][j] * l1[k])."""
    with pb.function(
        "bpnn_layerforward", ["l1", "l2", "conn", "n1", "n2"],
        src_file="backprop.c",
    ) as f:
        with f.loop(1, "n2", rel="le", line=253) as j:
            sum_ = f.set(f.fresh_reg("sum"), 0.0)
            with f.loop(0, "n1", rel="le", line=254) as k:
                row = f.load("conn", index=k, line=254)
                w = f.load(row, index=j, line=254)
                x = f.load("l1", index=k, line=254)
                f.fadd(sum_, f.fmul(w, x), into=sum_)
            out = f.call("squash", [sum_], want_result=True, line=256)
            f.store("l2", out, index=j, line=256)
        f.ret()


def _emit_adjust_weights(pb: ProgramBuilder) -> None:
    """w[k][j] += eta*delta[j]*ly[k] + momentum*oldw[k][j]."""
    with pb.function(
        "bpnn_adjust_weights", ["delta", "ndelta", "ly", "nly", "w", "oldw"],
        src_file="backprop.c",
    ) as f:
        with f.loop(1, "ndelta", rel="le", line=320) as j:
            with f.loop(0, "nly", rel="le", line=322) as k:
                wrow = f.load("w", index=k, line=322)
                orow = f.load("oldw", index=k, line=322)
                dj = f.load("delta", index=j, line=323)
                lyk = f.load("ly", index=k, line=323)
                old = f.load(orow, index=j, line=324)
                upd = f.fadd(
                    f.fmul(f.fmul(0.3, dj), lyk), f.fmul(0.3, old)
                )
                cur = f.load(wrow, index=j, line=325)
                f.store(wrow, f.fadd(cur, upd), index=j, line=325)
                f.store(orow, upd, index=j, line=326)
        f.ret()


def _emit_output_error(pb: ProgramBuilder) -> None:
    """delta[j] = o*(1-o)*(t-o) over output units; returns error sum."""
    with pb.function(
        "bpnn_output_error", ["delta", "target", "output", "nj"],
        src_file="backprop.c",
    ) as f:
        err = f.set(f.fresh_reg("err"), 0.0)
        with f.loop(1, "nj", rel="le", line=270) as j:
            o = f.load("output", index=j)
            t = f.load("target", index=j)
            d = f.fmul(f.fmul(o, f.fsub(1.0, o)), f.fsub(t, o))
            f.store("delta", d, index=j)
            f.fadd(err, f.fabs(d), into=err)
        f.ret(err)


def _emit_hidden_error(pb: ProgramBuilder) -> None:
    """delta_h[j] = h*(1-h) * sum_k delta_o[k]*who[j][k]."""
    with pb.function(
        "bpnn_hidden_error",
        ["delta_h", "nh", "delta_o", "no", "who", "hidden"],
        src_file="backprop.c",
    ) as f:
        err = f.set(f.fresh_reg("err"), 0.0)
        with f.loop(1, "nh", rel="le", line=285) as j:
            h = f.load("hidden", index=j)
            sum_ = f.set(f.fresh_reg("sum"), 0.0)
            with f.loop(1, "no", rel="le", line=287) as k:
                do = f.load("delta_o", index=k)
                row = f.load("who", index=j)
                w = f.load(row, index=k)
                f.fadd(sum_, f.fmul(do, w), into=sum_)
            d = f.fmul(f.fmul(h, f.fsub(1.0, h)), sum_)
            f.store("delta_h", d, index=j)
            f.fadd(err, f.fabs(d), into=err)
        f.ret(err)


def build_backprop(n_in: int = 12, n_hidden: int = 8, n_out: int = 6) -> ProgramSpec:
    """The full backprop training step (one epoch, one pattern)."""
    pb = ProgramBuilder("backprop")
    with pb.function(
        "main",
        [
            "input_units", "hidden_units", "output_units",
            "input_weights", "hidden_weights",
            "input_prev", "hidden_prev",
            "hidden_delta", "output_delta", "target",
            "n_in", "n_hid", "n_out",
        ],
        src_file="facetrain.c",
    ) as f:
        f.at_line(25)
        f.call(
            "bpnn_layerforward",
            ["input_units", "hidden_units", "input_weights", "n_in", "n_hid"],
        )
        f.call(
            "bpnn_layerforward",
            ["hidden_units", "output_units", "hidden_weights", "n_hid", "n_out"],
        )
        f.call(
            "bpnn_output_error",
            ["output_delta", "target", "output_units", "n_out"],
        )
        f.call(
            "bpnn_hidden_error",
            ["hidden_delta", "n_hid", "output_delta", "n_out",
             "hidden_weights", "hidden_units"],
        )
        f.call(
            "bpnn_adjust_weights",
            ["output_delta", "n_out", "hidden_units", "n_hid",
             "hidden_weights", "hidden_prev"],
        )
        f.call(
            "bpnn_adjust_weights",
            ["hidden_delta", "n_hid", "input_units", "n_in",
             "input_weights", "input_prev"],
        )
        f.halt()

    _emit_layerforward(pb)
    _emit_adjust_weights(pb)
    _emit_output_error(pb)
    _emit_hidden_error(pb)
    with pb.function("squash", ["x"], src_file="backprop.c") as f:
        e = f.fexp(f.fneg("x"))
        f.ret(f.fdiv(1.0, f.fadd(1.0, e)))

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(42)

        def rowptr_matrix(rows: int, cols: int) -> int:
            ptrs = [mem.alloc_array(rng.floats(cols)) for _ in range(rows)]
            return mem.alloc_array(ptrs)

        input_units = mem.alloc_array(rng.floats(n_in + 2))
        hidden_units = mem.alloc(n_hidden + 2, init=0.0)
        output_units = mem.alloc(n_out + 2, init=0.0)
        input_weights = rowptr_matrix(n_in + 1, n_hidden + 2)
        hidden_weights = rowptr_matrix(n_hidden + 1, n_out + 2)
        input_prev = rowptr_matrix(n_in + 1, n_hidden + 2)
        hidden_prev = rowptr_matrix(n_hidden + 1, n_out + 2)
        hidden_delta = mem.alloc(n_hidden + 2, init=0.0)
        output_delta = mem.alloc(n_out + 2, init=0.0)
        target = mem.alloc_array(rng.floats(n_out + 2))
        return (
            input_units, hidden_units, output_units,
            input_weights, hidden_weights,
            input_prev, hidden_prev,
            hidden_delta, output_delta, target,
            n_in, n_hidden, n_out,
        ), mem

    return ProgramSpec(
        name="backprop",
        program=program,
        make_state=make_state,
        description="Rodinia backprop: MLP training step",
        region_funcs=("bpnn_layerforward", "bpnn_adjust_weights",
                      "bpnn_output_error", "bpnn_hidden_error"),
        region_label="facetrain.c:25",
        fusion_heuristic="S",
        ld_src=2,
    )


@workload("backprop", params=(
    Param("n_in", 12, (8, 12, 16)),
    Param("n_hidden", 8, (6, 8, 10)),
    Param("n_out", 6),
))
def backprop_default(**sizes: int) -> ProgramSpec:
    return build_backprop(**sizes)
