"""Rodinia ``b+tree``: bulk point queries against a B+ tree.

Array-backed order-``k`` tree; each query descends from the root
through child pointers loaded from the current node (pointer chasing:
the base of the next access is produced by a load -- statically
Polly's B/F, dynamically a data-dependent access stream).  The scan
over a node's keys is a small counted loop, so roughly half the
dynamic work folds affinely (Table 5: %Aff 49).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload

ORDER = 4  # keys per node


def build_btree(nkeys: int = 32, nqueries: int = 12) -> ProgramSpec:
    pb = ProgramBuilder("b+tree")
    with pb.function(
        "main", ["root", "queries", "answers", "nq"], src_file="main.c"
    ) as f:
        with f.loop(0, "nq", line=2345) as q:
            key = f.load("queries", index=q, line=2346)
            v = f.call("kernel_query", ["root", key], want_result=True, line=2347)
            f.store("answers", v, index=q, line=2348)
        f.halt()

    # node layout: [is_leaf, nkeys, key0..key{ORDER-1}, val_or_child0..]
    with pb.function("kernel_query", ["node", "key"], src_file="main.c") as f:
        cur = f.set(f.fresh_reg("cur"), "node")
        w = f.while_begin()
        leaf = f.load(cur, offset=0)
        f.while_cond(w, "eq", leaf, 0)
        # find the child slot: count keys smaller than the query
        n = f.load(cur, offset=1)
        slot = f.set(f.fresh_reg("slot"), 0)
        with f.loop(0, n, line=2352) as i:
            k = f.load(cur, index=i, offset=2)
            with f.if_then("le", k, "key"):
                f.set(slot, f.add(slot, 1))
        child = f.load(cur, index=slot, offset=2 + ORDER)
        f.set(cur, child)            # pointer chase
        f.while_end(w)
        # leaf: linear scan for the key
        n = f.load(cur, offset=1)
        found = f.set(f.fresh_reg("found"), -1)
        with f.loop(0, n, line=2360) as i:
            k = f.load(cur, index=i, offset=2)
            with f.if_then("eq", k, "key"):
                f.set(found, f.load(cur, index=i, offset=2 + ORDER))
        f.ret(found)

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(47)
        keys = sorted(set(rng.ints(nkeys, 1000)))

        def make_leaf(ks: List[int]) -> int:
            node = [0] * (2 + 2 * ORDER)
            node[0] = 1
            node[1] = len(ks)
            for i, k in enumerate(ks):
                node[2 + i] = k
                node[2 + ORDER + i] = k * 10  # the stored value
            return mem.alloc_array(node)

        # build leaves then one level of internal nodes (two levels
        # suffice for pointer chasing at this scale)
        leaves = [make_leaf(keys[i:i + ORDER]) for i in range(0, len(keys), ORDER)]

        def make_internal(children: List[int], seps: List[int]) -> int:
            node = [0] * (2 + 2 * ORDER)
            node[0] = 0
            node[1] = len(seps)
            for i, s in enumerate(seps):
                node[2 + i] = s
            for i, c in enumerate(children):
                node[2 + ORDER + i] = c
            return mem.alloc_array(node)

        internals = []
        for i in range(0, len(leaves), ORDER):
            group = leaves[i:i + ORDER]
            seps = [
                mem.load(c + 2) for c in group[1:]
            ]  # first key of each following child
            internals.append(make_internal(group, seps))
        if len(internals) == 1:
            root = internals[0]
        else:
            seps = [mem.load(c + 2 + ORDER) for c in internals[1:]]
            # separator: first key under each following subtree
            seps = []
            for c in internals[1:]:
                first_leaf = mem.load(c + 2 + ORDER)
                seps.append(mem.load(first_leaf + 2))
            root = make_internal(internals, seps)
        queries = mem.alloc_array(
            [keys[rng.next_int(len(keys))] for _ in range(nqueries)]
        )
        answers = mem.alloc(nqueries, init=0)
        return (root, queries, answers, nqueries), mem

    return ProgramSpec(
        name="b+tree",
        program=program,
        make_state=make_state,
        description="Rodinia b+tree: point queries via pointer chasing",
        region_funcs=("kernel_query",),
        region_label="main.c:2345",
        ld_src=3,
    )


@workload("b+tree", params=(
    Param("nkeys", 32, (24, 32, 40)),
    Param("nqueries", 12, (8, 12, 16)),
))
def btree_default(**sizes: int) -> ProgramSpec:
    return build_btree(**sizes)
