"""Rodinia ``leukocyte``: white-blood-cell detection and tracking.

The detection stage evaluates the GICOV score along ellipse contours:
frames -> cells -> sample angles -> gradient stencil, with contour
coordinates read from precomputed tables (indirection), early
rejection of low-variance cells (break), helper calls, and
re-based image windows per cell -- the full house of static failure
reasons (Table 5 lists R C B F A P for leukocyte) around a core that
is about one-third affine (%Aff 39).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_leukocyte(
    frames: int = 2, ncells: int = 6, nangles: int = 10, imgsize: int = 12
) -> ProgramSpec:
    pb = ProgramBuilder("leukocyte")
    with pb.function(
        "main",
        ["img", "smooth", "xcoords", "ycoords", "centers", "gicov",
         "frames", "ncells", "nangles", "row"],
        src_file="detect_main.c",
    ) as f:
        with f.loop(0, "frames", line=51) as fr:
            f.call(
                "detect_cells",
                ["img", "smooth", "xcoords", "ycoords", "centers",
                 "gicov", "ncells", "nangles", "row"],
            )
        f.halt()

    with pb.function(
        "detect_cells",
        ["img", "smooth", "xcoords", "ycoords", "centers", "gicov",
         "ncells", "nangles", "row"],
        src_file="detect_main.c",
    ) as f:
        # regular image preprocessing (the real code dilates/smooths
        # the gradient images before scoring): out-of-place, so the
        # sweep is fully parallel -- an affine warm region
        area = f.mul("row", "row")
        with f.loop(1, f.sub(area, 1), line=53) as p:
            a = f.load("img", index=f.sub(p, 1))
            b = f.load("img", index=p)
            cc = f.load("img", index=f.add(p, 1))
            sm = f.fmul(0.3333, f.fadd(f.fadd(a, b), cc))
            f.store("smooth", sm, index=p)
        with f.loop(0, "ncells", line=55) as c:
            # per-cell window base: a loaded *offset* into the smoothed
            # image (not provably loop-invariant statically)
            off_c = f.load("centers", index=c, line=56)
            base = f.add("smooth", off_c)
            mean = f.set(f.fresh_reg("mean"), 0.0)
            var = f.set(f.fresh_reg("var"), 0.0)
            with f.loop(0, "nangles", line=58) as a:
                # contour coordinates through indirection tables
                dx = f.load("xcoords", index=a, line=59)
                dy = f.load("ycoords", index=a, line=59)
                off = f.add(f.mul(dy, "row"), dx)
                g = f.call(
                    "gradient_at", ["img", f.add(base, off), "row"],
                    want_result=True, line=61,
                )
                f.fadd(mean, g, into=mean)
                f.fadd(var, f.fmul(g, g), into=var)
            m = f.fdiv(mean, f.itof("nangles"))
            v = f.fsub(f.fdiv(var, f.itof("nangles")), f.fmul(m, m))
            # early rejection: low-variance cells are skipped (break)
            with f.if_then("gt", v, 1e-6):
                f.store("gicov", f.fdiv(f.fmul(m, m), v), index=c, line=68)
        f.ret()

    with pb.function("gradient_at", ["img", "pos", "row"],
                     src_file="avilib.c") as f:
        a = f.load("img", index=f.add("pos", 1))
        b = f.load("img", index=f.sub("pos", 1))
        c = f.load("img", index=f.add("pos", "row"))
        d = f.load("img", index=f.sub("pos", "row"))
        f.ret(f.fadd(f.fsub(a, b), f.fsub(c, d)))

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(73)
        img = mem.alloc_array(rng.floats(imgsize * imgsize))
        smooth = mem.alloc(imgsize * imgsize, init=0.0)
        xs = [int(2 * math.cos(2 * math.pi * a / nangles)) for a in range(nangles)]
        ys = [int(2 * math.sin(2 * math.pi * a / nangles)) for a in range(nangles)]
        xcoords = mem.alloc_array(xs)
        ycoords = mem.alloc_array(ys)
        centers = mem.alloc_array(
            [(3 + rng.next_int(imgsize - 6)) * imgsize + 3 +
             rng.next_int(imgsize - 6) for _ in range(ncells)]
        )
        gicov = mem.alloc(ncells, init=0.0)
        return (img, smooth, xcoords, ycoords, centers, gicov, frames,
                ncells, nangles, imgsize), mem

    return ProgramSpec(
        name="leukocyte",
        program=program,
        make_state=make_state,
        description="Rodinia leukocyte: GICOV cell detection",
        region_funcs=("detect_cells", "gradient_at"),
        region_label="detect_main.c:51",
        ld_src=4,
    )


@workload("leukocyte", params=(
    Param("frames", 2),
    Param("ncells", 6, (4, 6, 8)),
    Param("nangles", 10),
    Param("imgsize", 12),
))
def leukocyte_default(**sizes: int) -> ProgramSpec:
    return build_leukocyte(**sizes)
