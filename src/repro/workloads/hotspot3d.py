"""Rodinia ``hotspot3D``: thermal simulation on a 3-D grid.

Unlike 2-D hotspot, the 3-D version keeps proper nested loops, so it
is almost fully affine (Table 5: %Aff 99), fully parallel in space,
and the spatial (z, y, x) band is tilable (TileD 3D); the time
dimension does not join the band (double-buffered stencils carry
(1, *, *, *) dependences).  Statically, Polly fails on the boundary
clamping and the power coefficients (reasons B, F).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..isa import Memory, ProgramBuilder
from ..pipeline import ProgramSpec
from ._util import Lcg, Param, workload


def build_hotspot3d(n: int = 5, steps: int = 2) -> ProgramSpec:
    pb = ProgramBuilder("hotspot3D")
    with pb.function(
        "main", ["tin", "tout", "power", "n", "plane", "row", "steps", "amb"],
        src_file="3D.c",
    ) as f:
        with f.loop(0, "steps", line=258) as t:
            f.call(
                "compute_tran_temp",
                ["tin", "tout", "power", "n", "plane", "row", "amb"],
            )
            # 3-D copy-back, as in the Rodinia code (triple loop)
            with f.loop(0, "n", line=275) as z:
                with f.loop(0, "n", line=276) as y:
                    with f.loop(0, "n", line=277) as x:
                        idx = f.add(
                            f.add(f.mul(z, "plane"), f.mul(y, "row")), x
                        )
                        f.store("tin", f.load("tout", index=idx), index=idx)
        f.halt()

    with pb.function(
        "compute_tran_temp",
        ["tin", "tout", "power", "n", "plane", "row", "amb"],
        src_file="3D.c",
    ) as f:
        with f.loop(1, f.sub("n", 1), line=261) as z:
            with f.loop(1, f.sub("n", 1), line=262) as y:
                with f.loop(1, f.sub("n", 1), line=263) as x:
                    base = f.add(
                        f.add(f.mul(z, "plane"), f.mul(y, "row")), x
                    )
                    c = f.load("tin", index=base, line=265)
                    e = f.load("tin", index=f.add(base, 1), line=265)
                    w = f.load("tin", index=f.sub(base, 1), line=265)
                    no = f.load("tin", index=f.sub(base, "row"), line=266)
                    s = f.load("tin", index=f.add(base, "row"), line=266)
                    a = f.load("tin", index=f.sub(base, "plane"), line=267)
                    b = f.load("tin", index=f.add(base, "plane"), line=267)
                    p = f.load("power", index=base, line=268)
                    lap = f.fadd(
                        f.fadd(f.fadd(e, w), f.fadd(no, s)), f.fadd(a, b)
                    )
                    new = f.fadd(
                        c,
                        f.fadd(
                            f.fmul(0.1, f.fsub(lap, f.fmul(6.0, c))),
                            f.fadd(p, f.fmul(0.01, f.fsub("amb", c))),
                        ),
                    )
                    f.store("tout", new, index=base, line=270)
        f.ret()

    program = pb.build()

    def make_state() -> Tuple[Sequence, Memory]:
        mem = Memory()
        rng = Lcg(13)
        size = n * n * n
        tin = mem.alloc_array([320.0 + x for x in rng.floats(size)])
        tout = mem.alloc(size, init=0.0)
        power = mem.alloc_array([0.005 * x for x in rng.floats(size)])
        return (tin, tout, power, n, n * n, n, steps, 300.0), mem

    return ProgramSpec(
        name="hotspot3D",
        program=program,
        make_state=make_state,
        description="Rodinia hotspot3D: double-buffered 3-D stencil",
        region_funcs=("compute_tran_temp",),
        region_label="3D.c:261",
        ld_src=4,
    )


@workload("hotspot3D", params=(
    Param("n", 5, (4, 5, 6)),
    Param("steps", 2),
))
def hotspot3d_default(**sizes: int) -> ProgramSpec:
    return build_hotspot3d(**sizes)
