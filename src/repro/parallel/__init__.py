"""Parallel sharded folding: multi-core stage 2.

Folding dominates stage-2 wall time and is embarrassingly parallel at
stream granularity: every statement stream and every dependence stream
folds independently of all others (see INTERNALS.md §10 for the full
determinism argument).  This package partitions the stage-2 point
stream by statement/dependence key, folds the shards in worker
processes, and merges the per-shard folded unions into one
:class:`~repro.folding.folder.FoldedDDG` that is bit-identical to the
serial reference -- same codec bytes, same ``ddg-`` cache artifacts.

Identity is stated for the streams the engines actually produce for
runs that reach ``finalize()``: the fast engine delivers only whole
per-block batches, the reference engine only per-point calls.  The one
stream shape outside the contract is a *prefix* batch -- partial
delivery from a faulting block -- which the serial fast sink folds
into the shared group folder (visible to non-prefix members) while a
sharded fold would not; it cannot matter, because a faulted run
re-raises before finalize and never yields a folded DDG.
"""

from .shard import (
    ShardRouter,
    apply_chunk,
    merge_shards,
    shard_of_dep,
    shard_of_stmt,
)
from .workers import ParallelFoldError, ParallelFoldManager

__all__ = [
    "ParallelFoldError",
    "ParallelFoldManager",
    "ShardRouter",
    "apply_chunk",
    "merge_shards",
    "shard_of_dep",
    "shard_of_stmt",
]
