"""Worker processes for sharded folding.

One process per shard, fed routed event chunks over a pipe *while the
instrumented execution is still running* -- folding (76-94% of stage-2
wall on the bench set) overlaps with event production instead of
trailing it, which is what makes the speedup exceed the fold fraction
alone.  Each worker owns a private folding sink (fast or reference,
matching the engine), folds its streams to a per-shard
:class:`~repro.folding.folder.FoldedDDG`, and ships it back; the
manager merges in recorded serial order (:func:`~.shard.merge_shards`).

Workers report ``perf_counter`` timestamps; on Linux that clock is
``CLOCK_MONOTONIC``, shared across processes, so the manager can
synthesize per-shard :class:`~repro.obs.Span`\\ s directly comparable
with the main process's span tree (``repro trace --flame`` shows the
fan-out).  On platforms without a shared epoch the spans would merely
be misaligned, never wrong about duration.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Callable, List, Optional

from ..ddg.graph import DepKey, StmtKey
from ..folding.folder import FoldedDDG
from ..obs import Span
from .shard import DEFAULT_FLUSH_POINTS, ShardRouter, apply_chunk, merge_shards

#: hard sanity cap on worker processes per analysis
MAX_FOLD_JOBS = 64


class ParallelFoldError(RuntimeError):
    """A fold worker died or reported an exception."""


def _shard_worker(conn, shard_id: int, engine: str, max_pieces: int,
                  clamp: Optional[int]) -> None:
    """Process body: fold one shard's event stream to a FoldedDDG."""
    from ..folding import FastFoldingSink, FoldingSink

    sink_cls = FastFoldingSink if engine == "fast" else FoldingSink
    sink = sink_cls(max_pieces=max_pieces, clamp=clamp)
    t0 = time.perf_counter()
    busy = 0.0
    chunks = 0
    points = 0
    try:
        while True:
            msg, payload = conn.recv()
            if msg == "chunk":
                b = time.perf_counter()
                points += apply_chunk(sink, payload)
                busy += time.perf_counter() - b
                chunks += 1
            elif msg == "finalize":
                b = time.perf_counter()
                folded = sink.finalize()
                busy += time.perf_counter() - b
                conn.send(
                    (
                        "ok",
                        {
                            "folded": folded,
                            "clamped_points": sink.clamped_points,
                            "chunks": chunks,
                            "points": points,
                            "busy_seconds": busy,
                            "t0": t0,
                            "t1": time.perf_counter(),
                        },
                    )
                )
                return
            else:  # pragma: no cover - protocol guard
                raise ValueError(f"unknown worker message {msg!r}")
    except EOFError:  # pragma: no cover - manager died / aborted run
        pass
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class ParallelFoldManager:
    """Owns the worker pool and the router for one analysis.

    Usage (what ``pipeline.analyze`` does on a stage-2 cache miss with
    ``fold_jobs > 1``)::

        manager = ParallelFoldManager(jobs, engine=engine, ...)
        try:
            profile_ddg(spec, control, sink=manager.router, ...)
            folded = manager.finalize()
        finally:
            manager.close()

    ``finalize`` flushes the router, asks every worker for its folded
    shard, merges, and records per-shard statistics
    (``shard_stats``/``clamped_points``); :meth:`attach_spans` then
    hangs one synthesized span per shard under the stage span.
    """

    def __init__(
        self,
        jobs: int,
        engine: str = "fast",
        max_pieces: int = 6,
        clamp: Optional[int] = None,
        flush_points: int = DEFAULT_FLUSH_POINTS,
        stmt_route: Optional[Callable[[StmtKey, int], int]] = None,
        dep_route: Optional[Callable[[DepKey, int], int]] = None,
        mp_context=None,
    ) -> None:
        jobs = max(1, min(int(jobs), MAX_FOLD_JOBS))
        self.jobs = jobs
        self.engine = engine
        ctx = mp_context if mp_context is not None else multiprocessing.get_context()
        self._conns = []
        self._procs = []
        self._closed = False
        self.shard_stats: List[dict] = []
        self.clamped_points = 0
        try:
            for shard in range(jobs):
                parent, child = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(child, shard, engine, max_pieces, clamp),
                    name=f"repro-fold-{shard}",
                    daemon=True,
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise
        self.router = ShardRouter(
            jobs,
            self._emit,
            flush_points=flush_points,
            stmt_route=stmt_route,
            dep_route=dep_route,
        )

    def _emit(self, shard: int, chunk: list) -> None:
        try:
            self._conns[shard].send(("chunk", chunk))
        except (BrokenPipeError, OSError) as exc:
            raise ParallelFoldError(
                f"fold worker {shard} died (exitcode "
                f"{self._procs[shard].exitcode}): {exc}"
            ) from exc

    def finalize(self) -> FoldedDDG:
        """Flush, collect every shard's folded union, merge."""
        router = self.router
        router.flush()
        for shard, conn in enumerate(self._conns):
            try:
                conn.send(("finalize", None))
            except (BrokenPipeError, OSError) as exc:
                raise ParallelFoldError(
                    f"fold worker {shard} died before finalize "
                    f"(exitcode {self._procs[shard].exitcode})"
                ) from exc
        replies = []
        for shard, conn in enumerate(self._conns):
            try:
                msg, payload = conn.recv()
            except (EOFError, OSError) as exc:
                raise ParallelFoldError(
                    f"fold worker {shard} died during finalize "
                    f"(exitcode {self._procs[shard].exitcode})"
                ) from exc
            if msg != "ok":
                raise ParallelFoldError(
                    f"fold worker {shard} failed:\n{payload}"
                )
            replies.append(payload)
        for proc in self._procs:
            proc.join(timeout=30)
        self.shard_stats = [
            {
                "shard": shard,
                "events": router.events_routed[shard],
                "chunks": r["chunks"],
                "points": r["points"],
                "statements": len(r["folded"].statements),
                "deps": len(r["folded"].deps),
                "busy_seconds": r["busy_seconds"],
                "t0": r["t0"],
                "t1": r["t1"],
            }
            for shard, r in enumerate(replies)
        ]
        self.clamped_points = sum(r["clamped_points"] for r in replies)
        return merge_shards(
            [r["folded"] for r in replies],
            router.stmt_shard,
            router.stmt_order,
            router.dep_shard,
            router.dep_order,
        )

    def shard_busy_seconds(self) -> List[float]:
        """Per-shard fold seconds (busy time, not lifetime).  These
        overlap each other and the instrumented execution, so they are
        deliberately *not* part of any parts-sum-to-total stage
        accounting."""
        return [s["busy_seconds"] for s in self.shard_stats]

    def attach_spans(self, parent_span) -> None:
        """Synthesize one ``fold.shard`` span per worker under
        ``parent_span`` (a no-op on a disabled tracer's null span)."""
        children = getattr(parent_span, "children", None)
        if children is None or not self.shard_stats:
            return
        for stat in self.shard_stats:
            span = Span(
                "fold.shard",
                cat="fold",
                t0=stat["t0"],
                tid=f"fold-shard-{stat['shard']}",
                args={
                    "shard": stat["shard"],
                    "engine": self.engine,
                    "busy_seconds": round(stat["busy_seconds"], 6),
                },
            )
            span.t1 = stat["t1"]
            span.counters = {
                "events": stat["events"],
                "chunks": stat["chunks"],
                "points": stat["points"],
                "statements": stat["statements"],
                "deps": stat["deps"],
            }
            children.append(span)

    def close(self) -> None:
        """Tear down pipes and processes; idempotent, safe mid-error."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc.is_alive():
                proc.join(timeout=5)

    def __enter__(self) -> "ParallelFoldManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
