"""Stream sharding: deterministic routing + order-preserving merge.

The folding sinks key their state per statement (``StmtKey``) and per
dependence (``DepKey``); a stream's folded result depends only on that
stream's own point sequence.  Sharding therefore reduces to a routing
layer: send *every* event of one stream to one shard, preserve the
per-stream event order, and the per-shard sinks reproduce exactly the
streams the serial sink would have folded.

Two invariants make the merged result bit-identical to the serial
reference (and therefore byte-identical through the codec):

* **whole-stream routing** -- a statement's declaration and all of its
  points go to ``shard_of_stmt(key)``; a dependence's points go to
  ``shard_of_dep(key)``.  Batched ``instr_points``/``dep_points``
  calls are split into per-shard sub-batches, which preserves each
  stream's point order because each shard's buffer is FIFO.  Routing
  at statement granularity (never at block granularity) keeps the fast
  sink's shared-group folders exact: all statements of one executed
  block that land in the same shard still receive identical coordinate
  batches, so the shard-local sharing mirrors the serial sharing
  restricted to that shard's members.
* **order-recording merge** -- the codec serializes statements and
  dependences in dict insertion order, so the router records the
  serial declaration order (statements) and first-appearance order
  (dependences) while routing, and :func:`merge_shards` rebuilds the
  merged dicts in exactly that order.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ddg.graph import DDGSink, DepKey, Statement, StmtKey
from ..folding.folder import FoldedDDG

#: default points buffered per shard before a chunk is shipped; large
#: enough to amortize pickling, small enough to keep workers busy
#: while the instrumented execution is still producing
DEFAULT_FLUSH_POINTS = 8192


def shard_of_stmt(key: StmtKey, nshards: int) -> int:
    """Deterministic statement-key -> shard assignment (crc32, stable
    across processes and runs -- unlike ``hash()``, which is salted)."""
    return zlib.crc32(repr(key).encode("ascii")) % nshards


def shard_of_dep(dep: DepKey, nshards: int) -> int:
    """Deterministic dependence-key -> shard assignment."""
    return zlib.crc32(repr((dep.src, dep.dst, dep.kind)).encode("ascii")) % nshards


class ShardRouter(DDGSink):
    """A :class:`~repro.ddg.graph.DDGSink` that partitions the event
    stream across ``nshards`` FIFO buffers and ships full chunks via
    ``emit(shard, chunk)``.

    ``stmt_route``/``dep_route`` override the default crc32 assignment
    (the determinism tests use adversarial routes: everything on one
    shard, one statement per shard, dependences split away from their
    endpoint statements).  Any total function of the key is sound.
    """

    def __init__(
        self,
        nshards: int,
        emit: Callable[[int, list], None],
        flush_points: int = DEFAULT_FLUSH_POINTS,
        stmt_route: Optional[Callable[[StmtKey, int], int]] = None,
        dep_route: Optional[Callable[[DepKey, int], int]] = None,
    ) -> None:
        if nshards < 1:
            raise ValueError("nshards must be >= 1")
        self.nshards = nshards
        self._emit = emit
        self._flush_points = flush_points
        self._stmt_route = stmt_route or shard_of_stmt
        self._dep_route = dep_route or shard_of_dep

        #: serial declaration order of statements / first-appearance
        #: order of dependences, recorded for the merge
        self.stmt_order: List[StmtKey] = []
        self.dep_order: List[DepKey] = []
        self.stmt_shard: Dict[StmtKey, int] = {}
        self.dep_shard: Dict[DepKey, int] = {}

        self._buffers: List[list] = [[] for _ in range(nshards)]
        self._pending: List[int] = [0] * nshards
        #: batch-split plans per statement-key group: an int when the
        #: whole group lives on one shard, else [(shard, idxs), ...]
        self._gkey_plans: Dict[Tuple[StmtKey, ...], object] = {}
        #: events shipped per shard (observability)
        self.events_routed: List[int] = [0] * nshards

    # -- internal helpers -------------------------------------------------------

    def _push(self, shard: int, event: tuple, points: int) -> None:
        buf = self._buffers[shard]
        buf.append(event)
        self.events_routed[shard] += 1
        pending = self._pending[shard] + points
        if pending >= self._flush_points:
            self._emit(shard, buf)
            self._buffers[shard] = []
            self._pending[shard] = 0
        else:
            self._pending[shard] = pending

    def flush(self) -> None:
        """Ship every non-empty buffer (end of the event stream)."""
        for shard, buf in enumerate(self._buffers):
            if buf:
                self._emit(shard, buf)
                self._buffers[shard] = []
                self._pending[shard] = 0

    # -- DDGSink interface ------------------------------------------------------

    def declare_statement(self, stmt: Statement) -> None:
        key = stmt.key
        if key in self.stmt_shard:
            return
        shard = self._stmt_route(key, self.nshards)
        self.stmt_shard[key] = shard
        self.stmt_order.append(key)
        self._push(shard, ("S", stmt), 0)

    def instr_point(self, key, coords, label) -> None:
        self._push(self.stmt_shard[key], ("P", key, coords, label), 1)

    def dep_point(self, dep, dst_coords, src_coords) -> None:
        shard = self.dep_shard.get(dep)
        if shard is None:
            shard = self._dep_route(dep, self.nshards)
            self.dep_shard[dep] = shard
            self.dep_order.append(dep)
        self._push(shard, ("Q", dep, dst_coords, src_coords), 1)

    def instr_points(self, coords, items) -> None:
        gkey = tuple(k for k, _ in items)
        plan = self._gkey_plans.get(gkey)
        if plan is None:
            by_shard: Dict[int, List[int]] = {}
            stmt_shard = self.stmt_shard
            for i, key in enumerate(gkey):
                by_shard.setdefault(stmt_shard[key], []).append(i)
            if len(by_shard) == 1:
                plan = next(iter(by_shard))
            else:
                plan = sorted(by_shard.items())
            self._gkey_plans[gkey] = plan
        if type(plan) is int:
            self._push(plan, ("I", coords, items), len(items))
            return
        for shard, idxs in plan:
            sub = [items[i] for i in idxs]
            self._push(shard, ("I", coords, sub), len(sub))

    def dep_points(self, dst_coords, items) -> None:
        dep_shard = self.dep_shard
        by_shard: Dict[int, list] = {}
        for item in items:
            dep = item[0]
            shard = dep_shard.get(dep)
            if shard is None:
                shard = self._dep_route(dep, self.nshards)
                dep_shard[dep] = shard
                self.dep_order.append(dep)
            sub = by_shard.get(shard)
            if sub is None:
                by_shard[shard] = [item]
            else:
                sub.append(item)
        for shard, sub in by_shard.items():
            self._push(shard, ("D", dst_coords, sub), len(sub))


def apply_chunk(sink: DDGSink, chunk: Sequence[tuple]) -> int:
    """Replay one routed chunk into a folding sink; returns the number
    of points applied.  Inverse of the router's event encoding."""
    points = 0
    declare = sink.declare_statement
    instr_points = sink.instr_points
    dep_points = sink.dep_points
    instr_point = sink.instr_point
    dep_point = sink.dep_point
    for event in chunk:
        tag = event[0]
        if tag == "I":
            _, coords, items = event
            instr_points(coords, items)
            points += len(items)
        elif tag == "D":
            _, dst_coords, items = event
            dep_points(dst_coords, items)
            points += len(items)
        elif tag == "S":
            declare(event[1])
        elif tag == "P":
            _, key, coords, label = event
            instr_point(key, coords, label)
            points += 1
        elif tag == "Q":
            _, dep, dst_coords, src_coords = event
            dep_point(dep, dst_coords, src_coords)
            points += 1
        else:  # pragma: no cover - protocol guard
            raise ValueError(f"unknown shard event tag {tag!r}")
    return points


def merge_shards(
    shard_ddgs: Sequence[FoldedDDG],
    stmt_shard: Dict[StmtKey, int],
    stmt_order: Sequence[StmtKey],
    dep_shard: Dict[DepKey, int],
    dep_order: Sequence[DepKey],
) -> FoldedDDG:
    """Merge per-shard folded unions into one :class:`FoldedDDG`.

    Streams are disjoint across shards, so the merge is a union of the
    routed keys, rebuilt through :func:`~repro.folding.canonical_ddg`
    -- the same key-sorted normalization the serial fold applies --
    which is what makes the merged result *byte*-identical through the
    codec (it serializes in insertion order), not merely
    value-identical.  SCEV flags were already computed per shard
    (recognition is a pure per-statement predicate, see
    ``run_scev_recognition``).
    """
    from ..folding.folder import canonical_ddg

    statements = {}
    for key in stmt_order:
        statements[key] = shard_ddgs[stmt_shard[key]].statements[key]
    deps = {}
    for dep in dep_order:
        deps[dep] = shard_ddgs[dep_shard[dep]].deps[dep]
    total_stmts = sum(len(d.statements) for d in shard_ddgs)
    total_deps = sum(len(d.deps) for d in shard_ddgs)
    if total_stmts != len(statements) or total_deps != len(deps):
        raise ValueError(
            "shard merge mismatch: "
            f"{total_stmts} sharded vs {len(statements)} routed statements, "
            f"{total_deps} sharded vs {len(deps)} routed deps"
        )
    return canonical_ddg(statements, deps)
