"""The static program differ: align two program versions by fingerprint.

Functions are aligned by *name* and classified by their canonical local
fingerprints (rename/renumber-invariant, see
:func:`repro.isa.fingerprint.function_fingerprint`):

* **unchanged** -- same local fingerprint.  Covers pure uid
  re-numbering and reordering of other functions: the region's cached
  analysis artifacts are reusable verbatim (modulo uid remapping).
* **modified** -- present on both sides with different fingerprints;
  the per-block fingerprints narrow the change down to specific basic
  blocks for diagnostics.
* **added** / **removed** -- present on one side only.  A
  removed+added pair with identical local fingerprints is additionally
  flagged as a **rename** (reported as such; sliced as added+removed,
  since loop/context identifiers embed the function name).

Purely static -- no execution, no baseline program, just the baseline
*manifest* -- and linear in program size: milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.program import Program
from .manifest import build_manifest

_STATUSES = ("unchanged", "modified", "added", "removed")


@dataclass
class FunctionStatus:
    """One function's classification across the two versions."""

    name: str
    status: str  # unchanged | modified | added | removed
    #: blocks whose fingerprints changed / appeared / disappeared
    #: (modified functions only; block names of the *new* side, plus
    #: removed baseline block names)
    blocks_changed: List[str] = field(default_factory=list)
    #: rename pairing (added side names its baseline twin & vice versa)
    renamed_from: Optional[str] = None
    renamed_to: Optional[str] = None
    #: transitive hash still equal? (False means something reachable
    #: from here changed even if the body did not)
    subtree_clean: bool = True

    def as_dict(self) -> dict:
        out = {"name": self.name, "status": self.status}
        if self.blocks_changed:
            out["blocks_changed"] = list(self.blocks_changed)
        if self.renamed_from:
            out["renamed_from"] = self.renamed_from
        if self.renamed_to:
            out["renamed_to"] = self.renamed_to
        out["subtree_clean"] = self.subtree_clean
        return out


@dataclass
class ProgramDiff:
    """The full alignment of a submitted program vs a baseline manifest."""

    baseline_digest: str
    program_digest: str
    #: every function of either side, keyed by name
    functions: Dict[str, FunctionStatus]

    @property
    def all_unchanged(self) -> bool:
        return all(
            st.status == "unchanged" for st in self.functions.values()
        )

    @property
    def changed(self) -> List[str]:
        """Names whose analysis is definitely stale (the slice seed)."""
        return sorted(
            name
            for name, st in self.functions.items()
            if st.status != "unchanged"
        )

    def summary(self) -> Dict[str, int]:
        out = {s: 0 for s in _STATUSES}
        renamed = 0
        for st in self.functions.values():
            out[st.status] += 1
            if st.status == "added" and st.renamed_from:
                renamed += 1
        out["renamed"] = renamed
        return out


def _blocks_changed(base_blocks: dict, new_blocks: Dict[str, str]) -> List[str]:
    out = []
    for bname in sorted(set(base_blocks) | set(new_blocks)):
        if base_blocks.get(bname) != new_blocks.get(bname):
            out.append(bname)
    return out


def diff_manifests(base: dict, new: dict) -> ProgramDiff:
    """Align ``new`` (manifest of the submitted program) against the
    ``base`` manifest, purely by fingerprint."""
    base_fns: dict = base["functions"]
    new_fns: dict = new["functions"]
    functions: Dict[str, FunctionStatus] = {}
    for name in sorted(set(base_fns) | set(new_fns)):
        b = base_fns.get(name)
        n = new_fns.get(name)
        if b is None:
            functions[name] = FunctionStatus(name=name, status="added")
        elif n is None:
            functions[name] = FunctionStatus(name=name, status="removed")
        elif b["local"] == n["local"]:
            functions[name] = FunctionStatus(
                name=name,
                status="unchanged",
                subtree_clean=b["transitive"] == n["transitive"],
            )
        else:
            functions[name] = FunctionStatus(
                name=name,
                status="modified",
                blocks_changed=_blocks_changed(b["blocks"], n["blocks"]),
                subtree_clean=False,
            )
    # rename detection: greedy pairing of removed/added twins with
    # identical canonical bodies (report-only; the slicer re-analyzes
    # both sides because loop ids embed the function name)
    removed_by_fp: Dict[str, List[str]] = {}
    for name, st in functions.items():
        if st.status == "removed":
            removed_by_fp.setdefault(
                base_fns[name]["local"], []
            ).append(name)
    for name in sorted(functions):
        st = functions[name]
        if st.status != "added":
            continue
        twins = removed_by_fp.get(new_fns[name]["local"])
        if twins:
            old = twins.pop(0)
            st.renamed_from = old
            functions[old].renamed_to = name
    return ProgramDiff(
        baseline_digest=base["digest"],
        program_digest=new["digest"],
        functions=functions,
    )


def diff_programs(base_program: Program, new_program: Program) -> ProgramDiff:
    """Convenience: manifest both sides, then diff."""
    return diff_manifests(
        build_manifest(base_program), build_manifest(new_program)
    )


#: schema version of the ``repro diff`` JSON document
DIFF_SCHEMA_VERSION = 1


def diff_document(
    diff: ProgramDiff,
    frontier=None,
    baseline_name: str = "",
    program_name: str = "",
) -> dict:
    """The machine-readable ``repro diff`` output document."""
    doc = {
        "version": DIFF_SCHEMA_VERSION,
        "kind": "diff",
        "baseline": {
            "name": baseline_name,
            "digest": diff.baseline_digest,
        },
        "program": {"name": program_name, "digest": diff.program_digest},
        "summary": diff.summary(),
        "functions": {
            name: st.as_dict() for name, st in sorted(diff.functions.items())
        },
    }
    if frontier is not None:
        doc["frontier"] = frontier.as_dict()
    return doc
