"""Grounded may-alias access roots for the frontier slicer.

:mod:`repro.staticpoly` already derives, per function, which *parameter
roots* every memory access is based on (``_Affine.roots``).  Those
roots are function-local names; to decide whether two *different*
functions may touch the same array, each root is grounded
interprocedurally to a set of **origin tokens**:

* ``arg:<i>``   -- the i-th program argument (an array base pointer the
  workload state passed to ``main``);
* ``lit:<k>``   -- a compile-time-constant absolute address;
* ``?anon``     -- statically untrackable (loaded pointers, iv-derived
  bases, float contamination).  ``?anon`` conflicts with everything.

The grounding is a monotone fixpoint over call sites: a callee
parameter's origins accumulate the origins of every argument expression
ever passed in that position.  Two functions *may conflict* when a
write-side token set of one intersects a read- or write-side token set
of the other (R-W, W-R, or W-W overlap) -- the over-approximation the
slicer uses to pull memory-coupled regions into the frontier.  It is
deliberately conservative, never proven-tight: the dynamic sentinel
checks in :class:`~repro.ddg.builder.DDGBuilder` catch any execution
that crosses the sliced boundary anyway and force a cold fallback.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from ..isa.program import Program
from ..staticpoly.analyzer import UNKNOWN, _FunctionAnalysis

#: the universal token: statically untrackable base address
ANON = "?anon"


def _call_sites(program: Program):
    """Yield (caller_name, Call terminator) over the whole program."""
    from ..isa.instructions import Call

    for fname, fn in program.functions.items():
        for bb in fn.blocks.values():
            if isinstance(bb.terminator, Call):
                yield fname, bb.terminator


class AccessRoots:
    """Grounded per-function memory access tokens for one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._fa: Dict[str, _FunctionAnalysis] = {
            name: _FunctionAnalysis(program, fn)
            for name, fn in program.functions.items()
        }
        #: function -> param name -> grounded origin tokens
        self.param_origins: Dict[str, Dict[str, Set[str]]] = {
            name: {p: set() for p in fn.params}
            for name, fn in program.functions.items()
        }
        self._ground_params()
        self.reads: Dict[str, FrozenSet[str]] = {}
        self.writes: Dict[str, FrozenSet[str]] = {}
        for name in program.functions:
            r, w = self._access_tokens(name)
            self.reads[name] = r
            self.writes[name] = w

    # -- parameter grounding -----------------------------------------------------

    def _value_tokens(self, func: str, value) -> Set[str]:
        """Origin tokens of one abstract argument value in ``func``."""
        if value is UNKNOWN:
            return {ANON}
        if value.roots:
            out: Set[str] = set()
            origins = self.param_origins[func]
            for root in value.roots:
                out |= origins.get(root, {ANON})
            return out
        if value.is_const():
            return {f"lit:{value.const}"}
        return {ANON}  # iv-derived base: could point anywhere

    def _ground_params(self) -> None:
        main = self.program.main
        if main in self.param_origins:
            for i, p in enumerate(self.program.functions[main].params):
                self.param_origins[main][p].add(f"arg:{i}")
        sites = list(_call_sites(self.program))
        changed = True
        while changed:
            changed = False
            for caller, call in sites:
                callee_params = self.param_origins.get(call.callee)
                if callee_params is None:
                    continue
                fa = self._fa[caller]
                params = self.program.functions[call.callee].params
                for p, arg in zip(params, call.args):
                    toks = self._value_tokens(caller, fa.value_of(arg))
                    dest = callee_params[p]
                    if not toks <= dest:
                        dest |= toks
                        changed = True

    # -- per-function access token sets ------------------------------------------

    def _access_tokens(
        self, func: str
    ) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        fa = self._fa[func]
        origins = self.param_origins[func]
        reads: Set[str] = set()
        writes: Set[str] = set()
        for bb in self.program.functions[func].blocks.values():
            for ins in bb.instrs:
                if not ins.is_mem:
                    continue
                base = fa.value_of(ins.srcs[0])
                if base is UNKNOWN:
                    toks: Set[str] = {ANON}
                elif base.roots:
                    toks = set()
                    for root in base.roots:
                        toks |= origins.get(root, {ANON})
                elif base.is_const():
                    toks = {f"lit:{base.const}"}
                else:
                    toks = {ANON}
                if ins.is_store:
                    writes |= toks
                else:
                    reads |= toks
        return frozenset(reads), frozenset(writes)


def tokens_conflict(a: FrozenSet[str], b: FrozenSet[str]) -> bool:
    """May the address sets behind two token sets overlap?"""
    if not a or not b:
        return False
    if ANON in a or ANON in b:
        return True
    return not a.isdisjoint(b)


def may_conflict(
    reads_a: FrozenSet[str],
    writes_a: FrozenSet[str],
    reads_b: FrozenSet[str],
    writes_b: FrozenSet[str],
) -> bool:
    """True when the two access profiles may race on some array:
    a write on either side overlapping anything the other touches."""
    return (
        tokens_conflict(writes_a, reads_b)
        or tokens_conflict(writes_a, writes_b)
        or tokens_conflict(reads_a, writes_b)
    )
