"""The dependence-frontier slicer: close the changed set statically.

Given a program diff, compute every region (function) whose cached
analysis could be invalidated by the change, over three static
dependence channels:

* **callee closure** -- an affected function's dynamic contexts, loop
  trip counts, and argument values flow *down* into everything it can
  call, so all (transitive) callees of an affected function are
  affected.  For changed/removed functions the baseline call edges
  (from the manifest) are unioned in: edges the edit *deleted* still
  invalidate the old callees' domains.
* **used return values** -- a caller of an affected function is
  affected only if some call site binds the result to a register that
  the static def-use chains (:mod:`repro.dataflow.analyses`) show is
  actually read; an ignored return value cannot flow back up.
* **may-aliased arrays** -- a function whose grounded access tokens
  (:mod:`.alias`) write-conflict with an affected function's accesses
  shares state with it; baseline tokens are unioned with fresh ones so
  accesses the edit removed still count.

The result is an explicit re-analysis frontier with machine-readable
reasons per region.  The closure is deliberately an over-approximation
-- soundness is guarded twice more downstream: the stitcher refuses
unexpected overlaps/contexts, and the tiered DDG builder detects any
dynamic dependence crossing the sliced boundary and forces a cold
fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from ..dataflow.analyses import DefSite, build_def_use_chains
from ..isa.fingerprint import static_callees
from ..isa.instructions import Call
from ..isa.program import Program
from .alias import AccessRoots, may_conflict
from .diff import ProgramDiff


@dataclass(frozen=True)
class FrontierReason:
    """Why one region is on the re-analysis frontier."""

    rule: str            # modified | added | removed | callee-of-changed |
                         # caller-uses-result | may-alias | artifact-miss
    via: Optional[str] = None   # the already-affected function that pulled us in
    detail: str = ""

    def as_dict(self) -> dict:
        out = {"rule": self.rule}
        if self.via:
            out["via"] = self.via
        if self.detail:
            out["detail"] = self.detail
        return out


@dataclass
class Frontier:
    """The sliced re-analysis frontier of one (diff, program) pair."""

    #: functions of the *new* program that must be re-instrumented
    funcs: Set[str] = field(default_factory=set)
    #: every affected name (includes removed baseline functions)
    affected: Set[str] = field(default_factory=set)
    #: per-region machine-readable reasons (first reason = discovery)
    reasons: Dict[str, List[FrontierReason]] = field(default_factory=dict)

    def add(self, name: str, reason: FrontierReason) -> bool:
        """Record a reason; True when ``name`` is newly affected."""
        self.reasons.setdefault(name, []).append(reason)
        if name in self.affected:
            return False
        self.affected.add(name)
        return True

    def as_dict(self) -> dict:
        return {
            "funcs": sorted(self.funcs),
            "reasons": {
                name: [r.as_dict() for r in rs]
                for name, rs in sorted(self.reasons.items())
                if name in self.affected
            },
        }


def _call_result_used(program: Program, caller: str, callee: str) -> bool:
    """Does any call site ``caller -> callee`` bind a result register
    that is actually read (terminator reads included)?"""
    fn = program.functions[caller]
    chains = build_def_use_chains(fn)
    for bb in fn.blocks.values():
        t = bb.terminator
        if not isinstance(t, Call) or t.callee != callee:
            continue
        if t.dest is None:
            continue
        if chains.uses_of.get(DefSite("call", t.dest, bb.name)):
            return True
    return False


def compute_frontier(
    program: Program,
    diff: ProgramDiff,
    base_manifest: dict,
    access_roots: Optional[AccessRoots] = None,
) -> Frontier:
    """Transitive closure of the changed set over the static
    dependence channels.  ``program`` is the *new* (submitted) side;
    removed baseline functions participate through the manifest only.
    """
    base_fns: dict = base_manifest["functions"]
    roots = access_roots if access_roots is not None else AccessRoots(program)
    universe = sorted(set(program.functions) | set(base_fns))

    # union call edges: fresh static edges plus baseline edges (covers
    # edges the edit deleted and edges out of removed functions)
    callees: Dict[str, Set[str]] = {name: set() for name in universe}
    callers: Dict[str, Set[str]] = {name: set() for name in universe}
    for name in universe:
        cs: Set[str] = set()
        if name in program.functions:
            cs |= static_callees(program.functions[name])
        if name in base_fns:
            cs |= set(base_fns[name]["callees"])
        for c in cs:
            if c in callees:
                callees[name].add(c)
                callers[c].add(name)

    # union access tokens: fresh grounded tokens plus baseline tokens
    reads: Dict[str, FrozenSet[str]] = {}
    writes: Dict[str, FrozenSet[str]] = {}
    for name in universe:
        r: Set[str] = set()
        w: Set[str] = set()
        if name in program.functions:
            r |= roots.reads[name]
            w |= roots.writes[name]
        if name in base_fns:
            r |= set(base_fns[name]["reads"])
            w |= set(base_fns[name]["writes"])
        reads[name] = frozenset(r)
        writes[name] = frozenset(w)

    frontier = Frontier()
    work: List[str] = []
    for name in diff.changed:
        st = diff.functions[name]
        if frontier.add(name, FrontierReason(rule=st.status)):
            work.append(name)

    while work:
        g = work.pop()
        # (a) everything g can call inherits g's contexts/arguments
        for c in sorted(callees[g]):
            if c not in frontier.affected and frontier.add(
                c, FrontierReason(rule="callee-of-changed", via=g)
            ):
                work.append(c)
        # (b) callers that consume g's return value
        for h in sorted(callers[g]):
            if h in frontier.affected or h not in program.functions:
                continue
            if g in program.functions and _call_result_used(program, h, g):
                if frontier.add(
                    h, FrontierReason(rule="caller-uses-result", via=g)
                ):
                    work.append(h)
        # (c) regions sharing a may-aliased array with g
        for f in universe:
            if f in frontier.affected or f == g:
                continue
            if may_conflict(reads[f], writes[f], reads[g], writes[g]):
                shared = sorted(
                    (writes[f] | reads[f]) & (writes[g] | reads[g])
                )
                if frontier.add(
                    f,
                    FrontierReason(
                        rule="may-alias",
                        via=g,
                        detail=",".join(shared[:4]),
                    ),
                ):
                    work.append(f)

    frontier.funcs = {
        name for name in frontier.affected if name in program.functions
    }
    return frontier
