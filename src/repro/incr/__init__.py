"""Incremental re-analysis: fingerprints, diffing, frontier slicing.

The store (:mod:`repro.store`) keys artifacts on the whole-program
fingerprint, so a one-line edit to a large program is a full cold miss.
This package extends the warm path from "identical program" to
"similar program" with three static passes:

1. **Manifest** (:mod:`.manifest`): per-function canonical
   fingerprints + call-graph-aware transitive hashes + may-alias
   access roots, persisted as a versioned ``man-`` artifact.
2. **Differ** (:mod:`.diff`): align functions and basic blocks of a
   submitted program against a baseline manifest by fingerprint --
   unchanged / modified / added / removed (+ rename detection), purely
   static, milliseconds.
3. **Slicer** (:mod:`.slice`): close the changed set over the static
   dependence channels (call edges, used return values, may-aliased
   arrays) into an explicit re-analysis *frontier* with
   machine-readable reasons per region.

The pipeline (:func:`repro.pipeline.analyze` with ``baseline=``) then
re-instruments only the frontier, reuses per-function ``rgn-``
artifacts for everything else, and stitches (:mod:`.stitch`) a folded
DDG that is byte-identical to a cold full analysis.
"""

from .diff import FunctionStatus, ProgramDiff, diff_document, diff_manifests
from .edit import (
    append_sink_instr,
    edited_spec,
    renumber_uids,
    renumbered_spec,
)
from .manifest import MANIFEST_FORMAT_VERSION, build_manifest
from .plan import IncrementalInfo, IncrementalPlan, plan_incremental
from .regions import REGION_FORMAT_VERSION, encode_regions
from .slice import Frontier, FrontierReason, compute_frontier
from .stitch import IncrementalMismatch, stitch_folded

__all__ = [
    "FunctionStatus",
    "Frontier",
    "FrontierReason",
    "IncrementalInfo",
    "IncrementalMismatch",
    "IncrementalPlan",
    "MANIFEST_FORMAT_VERSION",
    "REGION_FORMAT_VERSION",
    "append_sink_instr",
    "build_manifest",
    "compute_frontier",
    "diff_document",
    "diff_manifests",
    "edited_spec",
    "encode_regions",
    "plan_incremental",
    "renumber_uids",
    "renumbered_spec",
    "stitch_folded",
]
