"""Plan one incremental analysis: diff, slice, load reusable regions.

:func:`plan_incremental` runs entirely statically (plus store reads)
before any execution, and decides between three modes:

* ``identical`` -- the diff is all-unchanged (uid renumbering,
  function reordering): the baseline execution is bit-identical, so
  *nothing* runs; baseline stage-1/stage-2 metadata and every region
  artifact are reused verbatim.
* ``incremental`` -- a proper subset of functions is on the frontier:
  stage 2 re-executes with the DDG builder emitting only frontier
  functions, and the rest is stitched from ``rgn-`` artifacts.
* ``cold`` -- nothing reusable (manifest missing, frontier covers the
  whole program, baseline is this very program, ...): the ordinary
  pipeline runs; ``reason`` says why.

The plan also carries :class:`IncrementalInfo`, the machine-readable
account (mode, diff summary, frontier reasons, regions reused) that
surfaces on :class:`~repro.pipeline.AnalysisResult`, the CLI's stderr
summary, and the service job document -- deliberately *not* in the
report/metrics documents, which stay byte-identical to a cold run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..store import ArtifactKeys, derive_keys
from .alias import AccessRoots
from .diff import ProgramDiff, diff_manifests
from .manifest import build_manifest, manifest_ok
from .regions import region_ok
from .slice import Frontier, FrontierReason, compute_frontier


@dataclass
class IncrementalInfo:
    """What the incremental machinery did for one analyze() call."""

    baseline: str
    mode: str                    # identical | incremental | cold
    reason: Optional[str] = None  # why cold / why a fallback happened
    summary: Dict[str, int] = field(default_factory=dict)
    #: frontier function -> machine-readable reasons
    frontier: Dict[str, List[dict]] = field(default_factory=dict)
    funcs_total: int = 0
    regions_reused: int = 0

    def as_dict(self) -> dict:
        out = {
            "baseline": self.baseline,
            "mode": self.mode,
            "summary": dict(self.summary),
            "frontier": {k: list(v) for k, v in sorted(self.frontier.items())},
            "funcs_total": self.funcs_total,
            "regions_reused": self.regions_reused,
        }
        if self.reason:
            out["reason"] = self.reason
        return out


@dataclass
class IncrementalPlan:
    """Everything analyze() needs to run one incremental call."""

    mode: str                             # identical | incremental | cold
    info: IncrementalInfo
    new_manifest: Optional[dict] = None
    diff: Optional[ProgramDiff] = None
    frontier: Optional[Frontier] = None
    #: functions the DDG builder fully instruments (incremental mode)
    emit_funcs: Optional[Set[str]] = None
    #: loaded, validated region payloads to stitch (non-frontier funcs)
    regions: Dict[str, dict] = field(default_factory=dict)
    base_keys: Optional[ArtifactKeys] = None


def _cold(
    baseline: str, reason: str, new_manifest: Optional[dict] = None
) -> IncrementalPlan:
    return IncrementalPlan(
        mode="cold",
        info=IncrementalInfo(baseline=baseline, mode="cold", reason=reason),
        new_manifest=new_manifest,
    )


def plan_incremental(
    spec,
    keys: ArtifactKeys,
    baseline: str,
    store,
    tracer,
    *,
    engine: str,
    fuel: int,
    max_pieces: int,
    clamp: Optional[int],
    track_anti_output: bool,
    build_schedule_tree: bool,
) -> IncrementalPlan:
    """Static planning pass: manifest, diff, slice, region loads."""
    from ..store import manifest_key

    program = spec.program
    new_manifest = build_manifest(program)
    if baseline == keys.program_digest:
        # same program: the ordinary ddg- warm path already serves it
        return _cold(baseline, "baseline-equals-program", new_manifest)

    base_manifest = store.get(manifest_key(baseline))
    if not manifest_ok(base_manifest):
        return _cold(baseline, "baseline-manifest-miss", new_manifest)
    if base_manifest["digest"] != baseline:
        return _cold(baseline, "baseline-manifest-corrupt", new_manifest)

    base_keys = derive_keys(
        baseline,
        keys.state_digest,
        engine=engine,
        fuel=fuel,
        max_pieces=max_pieces,
        clamp=clamp,
        track_anti_output=track_anti_output,
        build_schedule_tree=build_schedule_tree,
    )

    with tracer.span("incr.diff", cat="incr") as sp:
        diff = diff_manifests(base_manifest, new_manifest)
        sp.count("changed", len(diff.changed))

    with tracer.span("incr.slice", cat="incr") as sp:
        roots = AccessRoots(program)
        frontier = compute_frontier(program, diff, base_manifest, roots)
        sp.count("frontier", len(frontier.funcs))
        sp.count("affected", len(frontier.affected))

    emit_funcs = set(frontier.funcs)
    reuse_funcs = [f for f in program.functions if f not in emit_funcs]

    # load region artifacts for every reusable function; misses join
    # the frontier (their data must be recomputed anyway)
    regions: Dict[str, dict] = {}
    with tracer.span("incr.load", cat="incr") as sp:
        for func in reuse_funcs:
            payload = store.get(base_keys.region(func))
            if region_ok(payload):
                regions[func] = payload
            else:
                emit_funcs.add(func)
                frontier.funcs.add(func)
                frontier.add(
                    func, FrontierReason(rule="artifact-miss")
                )
        sp.count("regions", len(regions))

    info = IncrementalInfo(
        baseline=baseline,
        mode="incremental",
        summary=diff.summary(),
        frontier={
            name: [r.as_dict() for r in frontier.reasons.get(name, [])]
            for name in sorted(frontier.funcs)
        },
        funcs_total=len(program.functions),
        regions_reused=len(regions),
    )
    plan = IncrementalPlan(
        mode="incremental",
        info=info,
        new_manifest=new_manifest,
        diff=diff,
        frontier=frontier,
        emit_funcs=emit_funcs,
        regions=regions,
        base_keys=base_keys,
    )

    if not emit_funcs and diff.all_unchanged:
        # no execution needed at all *if* the baseline stage-2 metadata
        # is also available; otherwise run stage 2 with nothing emitted
        if store.contains(base_keys.stage2):
            plan.mode = "identical"
            info.mode = "identical"
        else:
            info.reason = "baseline-stage2-meta-miss"
    elif len(regions) == 0:
        plan.mode = "cold"
        info.mode = "cold"
        info.reason = (
            "frontier-covers-program"
            if len(emit_funcs) >= len(program.functions)
            else "no-reusable-regions"
        )
    return plan
