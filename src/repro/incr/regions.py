"""Per-function folded-DDG region artifacts (the ``rgn-`` store level).

A full stage-2 artifact is one monolithic folded DDG; region artifacts
carve the same data per function so an incremental run can reuse the
untouched functions' slices.  Identities are stored
*position-independently*: statements carry their function-local
ordinal (canonical traversal order, see
:func:`repro.isa.fingerprint.function_uid_ordinals`) and their interned
context tuple; dependence endpoints carry ``(func, ordinal, context)``
references.  Re-mapping onto a re-numbered program is then pure
bookkeeping (:mod:`.stitch`), with no dependence on how the baseline
frontend happened to number instructions.

Dependences are owned by their *destination* statement's function --
the side whose execution discovers the dependence -- so stitching a
frontier's fresh deps with reused regions never double-counts.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..folding.codec import (
    _decode_dep,
    _decode_statement,
    _encode_dep,
    _encode_statement,
)
from ..folding.folder import FoldedDDG
from ..isa.fingerprint import function_uid_ordinals
from ..isa.program import Program

#: bump on any change to the region payload layout
REGION_FORMAT_VERSION = 1

# re-exported for the stitcher (shared single point of codec truth)
decode_statement = _decode_statement
decode_dep = _decode_dep


def uid_to_ordinal(program: Program) -> Dict[int, Tuple[str, int]]:
    """Global uid -> (function, local ordinal) over a whole program."""
    out: Dict[int, Tuple[str, int]] = {}
    for fname, fn in program.functions.items():
        for uid, o in function_uid_ordinals(fn).items():
            out[uid] = (fname, o)
    return out


def _endpoint_ref(
    key, folded: FoldedDDG, ord_of: Dict[int, Tuple[str, int]]
) -> dict:
    func, o = ord_of[key[0]]
    stmt = folded.statements[key].stmt
    return {
        "func": func,
        "ord": o,
        "context": [list(elem) for elem in stmt.context],
    }


def encode_regions(program: Program, folded: FoldedDDG) -> Dict[str, dict]:
    """Carve one folded DDG into per-function region payloads.

    ``folded`` must be canonically ordered (every finalize path is), so
    the per-region statement/dep lists are deterministic for a given
    folded set.
    """
    ord_of = uid_to_ordinal(program)
    regions: Dict[str, dict] = {
        fname: {
            "format": REGION_FORMAT_VERSION,
            "func": fname,
            "statements": [],
            "deps": [],
        }
        for fname in program.functions
    }
    for key, fs in folded.statements.items():
        func, o = ord_of[key[0]]
        entry = _encode_statement(fs)
        entry["ord"] = o
        regions[func]["statements"].append(entry)
    for dkey, fd in folded.deps.items():
        dfunc, _ = ord_of[dkey.dst[0]]
        entry = _encode_dep(fd)
        entry["src_ref"] = _endpoint_ref(dkey.src, folded, ord_of)
        entry["dst_ref"] = _endpoint_ref(dkey.dst, folded, ord_of)
        regions[dfunc]["deps"].append(entry)
    return regions


def region_ok(payload: object) -> bool:
    """Structural sanity of a (possibly store-loaded) region payload."""
    return (
        isinstance(payload, dict)
        and payload.get("format") == REGION_FORMAT_VERSION
        and isinstance(payload.get("statements"), list)
        and isinstance(payload.get("deps"), list)
    )
