"""Stitch fresh frontier folds with reused region artifacts.

The incremental stage 2 produces a *partial* folded DDG covering only
the frontier functions; everything else is decoded from baseline
``rgn-`` artifacts and re-mapped onto the submitted program:

* a statement's global uid is recovered from its function-local
  ordinal (rename/renumber-invariant);
* its context id is re-interned through the *live run's* context
  table, so reused and fresh statements share one id space (on the
  no-execution fast path the baseline ids are taken verbatim -- an
  all-unchanged diff implies a bit-identical execution and therefore a
  bit-identical interning sequence).

Every inconsistency -- a context the live run never observed, an
ordinal past the function's end, a key landing on both sides -- raises
:class:`IncrementalMismatch`, which the pipeline answers with a cold
re-fold.  The stitched result passes through
:func:`repro.folding.canonical_ddg`, making it byte-identical (through
the codec and every report) to a cold full analysis of the same
program.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ddg.graph import DepKey, StmtKey
from ..folding.folder import FoldedDDG, canonical_ddg
from ..isa.fingerprint import function_ordered_uids
from ..isa.instructions import Instr
from ..isa.program import Program
from .regions import REGION_FORMAT_VERSION, decode_dep, decode_statement


class IncrementalMismatch(RuntimeError):
    """Reused baseline artifacts are inconsistent with the live run;
    the caller must fall back to a cold analysis."""


def stitch_folded(
    program: Program,
    fresh: Optional[FoldedDDG],
    regions: Dict[str, dict],
    ctx_ids: Optional[Dict[Tuple, int]],
) -> FoldedDDG:
    """Merge the frontier's fresh fold with reused region payloads.

    ``ctx_ids`` is the live run's context-interning table
    (``DDGBuilder.context_ids``); ``None`` selects the verbatim-id
    fast path for all-unchanged diffs where no execution happened.
    """
    uid_of: Dict[Tuple[str, int], int] = {}
    for fname, fn in program.functions.items():
        for o, uid in enumerate(function_ordered_uids(fn)):
            uid_of[(fname, o)] = uid
    instr_of: Dict[int, Instr] = {
        ins.uid: ins for _fn, _bb, ins in program.all_instrs()
    }

    def resolve(func: str, ord_: int, context, stored_cid: int) -> StmtKey:
        uid = uid_of.get((func, int(ord_)))
        if uid is None:
            raise IncrementalMismatch(
                f"region {func!r}: ordinal {ord_} not in program"
            )
        if ctx_ids is None:
            return (uid, int(stored_cid))
        ctx = tuple(tuple(elem) for elem in context)
        cid = ctx_ids.get(ctx)
        if cid is None:
            raise IncrementalMismatch(
                f"region {func!r}: context never observed by this run"
            )
        return (uid, cid)

    statements = dict(fresh.statements) if fresh is not None else {}
    deps = dict(fresh.deps) if fresh is not None else {}

    for func, payload in regions.items():
        if payload.get("format") != REGION_FORMAT_VERSION:
            raise IncrementalMismatch(
                f"region {func!r}: format {payload.get('format')!r}"
            )
        for item in payload["statements"]:
            key = resolve(func, item["ord"], item["context"], item["ctx_id"])
            if key in statements:
                raise IncrementalMismatch(
                    f"region {func!r}: statement {key} already folded fresh"
                )
            data = dict(item)
            data["uid"], data["ctx_id"] = key
            data["func"] = func
            statements[key] = decode_statement(data, instr_of)
        for item in payload["deps"]:
            sref = item["src_ref"]
            dref = item["dst_ref"]
            src = resolve(
                sref["func"], sref["ord"], sref["context"], item["src"][1]
            )
            dst = resolve(
                dref["func"], dref["ord"], dref["context"], item["dst"][1]
            )
            data = dict(item)
            data["src"] = list(src)
            data["dst"] = list(dst)
            fd = decode_dep(data)
            if fd.key in deps:
                raise IncrementalMismatch(
                    f"region {func!r}: dep {fd.key} already folded fresh"
                )
            deps[fd.key] = fd
    stitched = canonical_ddg(statements, deps)

    # reused dep endpoints must reference statements the stitched DDG
    # actually contains -- a dangling source means the slice was wrong
    for dkey in stitched.deps:
        if dkey.src not in stitched.statements:
            raise IncrementalMismatch(
                f"dep {dkey} references a statement outside the stitch"
            )
    return stitched
