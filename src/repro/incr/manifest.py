"""The versioned program manifest: static facts the differ/slicer need.

One manifest per program digest (``man-`` store level), written as a
side effect of any stored analysis.  It captures, per function:

* the canonical local fingerprint (rename/renumber-invariant) and the
  per-basic-block fingerprints (:mod:`repro.isa.fingerprint`);
* the call-graph-aware transitive hash (an edit anywhere below a
  function changes its transitive hash);
* the static callee set and instruction count;
* the grounded may-alias access tokens (:mod:`.alias`).

A later submission of an *edited* program diffs against the baseline
manifest alone -- the baseline program itself is never needed, which
is what lets the service take just a ``baseline_fingerprint`` string.
"""

from __future__ import annotations

from ..isa.fingerprint import (
    block_fingerprints,
    fingerprint_program,
    function_fingerprints,
    static_callees,
    transitive_fingerprints,
)
from ..isa.program import Program
from .alias import AccessRoots

#: bump on any change to the manifest payload layout
MANIFEST_FORMAT_VERSION = 1


def build_manifest(program: Program) -> dict:
    """Compute the full static manifest of one program."""
    local = function_fingerprints(program)
    trans = transitive_fingerprints(program, local)
    roots = AccessRoots(program)
    functions = {}
    for name in sorted(program.functions):
        fn = program.functions[name]
        functions[name] = {
            "local": local[name],
            "transitive": trans[name],
            "params": list(fn.params),
            "entry": fn.entry,
            "instrs": sum(len(bb.instrs) for bb in fn.blocks.values()),
            "callees": sorted(static_callees(fn)),
            "blocks": block_fingerprints(fn),
            "reads": sorted(roots.reads[name]),
            "writes": sorted(roots.writes[name]),
        }
    return {
        "format": MANIFEST_FORMAT_VERSION,
        "program": program.name,
        "main": program.main,
        "digest": fingerprint_program(program),
        "functions": functions,
    }


def manifest_ok(manifest: object) -> bool:
    """Structural sanity of a (possibly store-loaded) manifest."""
    return (
        isinstance(manifest, dict)
        and manifest.get("format") == MANIFEST_FORMAT_VERSION
        and isinstance(manifest.get("functions"), dict)
        and isinstance(manifest.get("digest"), str)
    )
