"""Tiny semantics-preserving program edits for tests, CI, and benches.

The incremental path is exercised end-to-end by editing *one function*
of a real workload and re-analyzing against the baseline.  The edit
appended here -- a ``const`` into a dead ``%sink``-prefixed register at
the end of the target function's entry block -- is the smallest change
that is still an honest body edit: the function's fingerprint, its
statement set, and its folded domains all change, while the program's
observable behavior (and thus every *other* function's analysis) does
not.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from ..isa.instructions import Instr
from ..isa.program import BasicBlock, Function, Program


def append_sink_instr(
    program: Program,
    func: str,
    reg: str = "%sink_incr",
    value: int = 7,
) -> Program:
    """A copy of ``program`` with one dead ``const`` appended to the
    entry block of ``func``.  Fresh uid (max+1), so every other
    function keeps its uids -- the minimal realistic one-function edit.
    """
    fn = program.functions[func]
    next_uid = max(ins.uid for _f, _b, ins in program.all_instrs()) + 1
    entry = fn.blocks[fn.entry]
    extra = Instr(
        uid=next_uid,
        opcode="const",
        dest=reg,
        srcs=(value,),
        offset=len(entry.instrs),
    )
    blocks: Dict[str, BasicBlock] = dict(fn.blocks)
    blocks[fn.entry] = BasicBlock(
        name=entry.name,
        instrs=list(entry.instrs) + [extra],
        terminator=entry.terminator,
    )
    functions = dict(program.functions)
    functions[func] = Function(
        name=fn.name,
        params=tuple(fn.params),
        entry=fn.entry,
        blocks=blocks,
        src_loop_depth=fn.src_loop_depth,
        src_file=fn.src_file,
    )
    edited = Program(
        functions=functions, main=program.main, name=program.name
    )
    edited.validate()
    return edited


def edited_spec(spec, func: str, **kwargs):
    """A copy of a :class:`~repro.pipeline.ProgramSpec` whose program
    has the one-function sink edit applied (same state factory)."""
    return replace(
        spec, program=append_sink_instr(spec.program, func, **kwargs)
    )


def renumber_uids(program: Program, offset: int = 1000) -> Program:
    """A copy of ``program`` with every instruction uid shifted by
    ``offset`` -- the canonical "recompiled after a formatting-only
    change" twin.  Every function's canonical fingerprint is unchanged
    (uids are not semantic), so a baseline diff classifies the whole
    program as unchanged and the incremental path never executes it.

    A *fresh* :class:`Program` is built rather than mutating in place:
    programs are immutable once validated (the VM caches its
    compilation on the object), so an in-place renumber would silently
    execute the stale original.
    """
    functions: Dict[str, Function] = {}
    for fname, fn in program.functions.items():
        blocks: Dict[str, BasicBlock] = {}
        for bname, bb in fn.blocks.items():
            blocks[bname] = BasicBlock(
                name=bb.name,
                instrs=[
                    replace(ins, uid=ins.uid + offset) for ins in bb.instrs
                ],
                terminator=bb.terminator,
            )
        functions[fname] = Function(
            name=fn.name,
            params=tuple(fn.params),
            entry=fn.entry,
            blocks=blocks,
            src_loop_depth=fn.src_loop_depth,
            src_file=fn.src_file,
        )
    renum = Program(
        functions=functions, main=program.main, name=program.name
    )
    renum.validate()
    return renum


def renumbered_spec(spec, offset: int = 1000):
    """A copy of a spec whose program is uid-renumbered (same state
    factory) -- the no-semantic-change incremental scenario."""
    return replace(spec, program=renumber_uids(spec.program, offset))
