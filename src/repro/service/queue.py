"""Bounded job queue with explicit backpressure.

Unlike :class:`queue.Queue`, rejection is an *exception the front door
turns into HTTP 429*, not a blocking put: a daemon serving heavy
traffic must shed load at the edge, immediately, with a Retry-After
hint -- never stall accept threads while work piles up.  The queue
also supports the two drain-time operations shutdown needs: snapshot
rejection of everything still pending, and a position query so queued
clients can see where they stand.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import List, Optional

from .jobs import Job


class QueueFull(Exception):
    """Raised by :meth:`BoundedJobQueue.put` when at capacity."""

    def __init__(self, depth: int) -> None:
        super().__init__(f"job queue full ({depth} queued)")
        self.depth = depth


class BoundedJobQueue:
    """FIFO of pending jobs, capped at ``maxsize``."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("queue depth must be >= 1")
        self.maxsize = maxsize
        self._items: "deque[Job]" = deque()
        self._cond = threading.Condition()

    def put(self, job: Job) -> int:
        """Enqueue; returns the 0-based queue position.  Raises
        :class:`QueueFull` instead of blocking when at capacity."""
        with self._cond:
            if len(self._items) >= self.maxsize:
                raise QueueFull(len(self._items))
            self._items.append(job)
            position = len(self._items) - 1
            self._cond.notify()
            return position

    def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Dequeue the oldest job, or None after ``timeout`` seconds."""
        with self._cond:
            if not self._items:
                self._cond.wait(timeout)
            if not self._items:
                return None
            return self._items.popleft()

    def remove(self, job: Job) -> bool:
        """Drop one specific job (cancellation of a queued job)."""
        with self._cond:
            try:
                self._items.remove(job)
                return True
            except ValueError:
                return False

    def drain(self) -> List[Job]:
        """Empty the queue, returning everything that was pending."""
        with self._cond:
            pending = list(self._items)
            self._items.clear()
            self._cond.notify_all()
            return pending

    def position(self, job: Job) -> Optional[int]:
        with self._cond:
            for i, item in enumerate(self._items):
                if item is job:
                    return i
            return None

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)
