"""Job execution: one worker turning a queued job into artifacts.

Runs the ordinary :func:`repro.pipeline.analyze` against the shared
:class:`~repro.store.ArtifactStore` and renders the exact response
bytes (report / metrics JSON documents, flame-graph SVG) the HTTP layer
will serve -- through the same :mod:`repro.feedback.jsonout` renderer
the CLI uses, which is what makes service responses byte-identical to
CLI output.

Timeouts and cancellation are **cooperative**: worker threads cannot
use the suite runner's ``SIGALRM`` deadline (signals only fire on the
main thread), so a passive :class:`DeadlineObserver` rides along both
profiled executions via ``analyze(extra_observers=...)`` and aborts
the run by raising.  The check costs one comparison per executed basic
block (fast engine) or one per 4096 instructions (reference engine) --
noise against instrumentation itself.  A warm cache hit never executes
and therefore never times out, which is the desired behavior: the
answer is already there.
"""

from __future__ import annotations

import json
import threading
import time
import traceback
from typing import Optional

from ..feedback.jsonout import metrics_document, render_json, report_document
from ..isa.events import Instrumentation
from ..obs import Tracer, chrome_trace_document
from .jobs import Job, JobState


class JobTimeout(Exception):
    """The job's deadline expired mid-execution."""


class JobCancelled(Exception):
    """The job's cancel flag was raised mid-execution."""


#: reference-engine instruction granularity of deadline checks
CHECK_EVERY = 4096

#: minimum seconds between progress heartbeats written to job state
HEARTBEAT_EVERY = 0.25


class DeadlineObserver(Instrumentation):
    """Passive observer that aborts a run past its deadline or on
    cancellation.  Attached via ``analyze(extra_observers=...)``; it
    must never mutate anything the analysis can see."""

    def __init__(
        self,
        deadline: Optional[float],
        cancel_event: Optional[threading.Event] = None,
    ) -> None:
        self.deadline = deadline
        self.cancel_event = cancel_event
        self._countdown = CHECK_EVERY

    def _check(self) -> None:
        if self.cancel_event is not None and self.cancel_event.is_set():
            raise JobCancelled()
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise JobTimeout()

    def on_block(self, instrs, frame_id, values, addrs) -> None:
        self._check()

    def on_instr(self, instr, frame_id, value, addr) -> None:
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = CHECK_EVERY
            self._check()


class HeartbeatObserver(Instrumentation):
    """Passive observer streaming execution progress into
    ``job.progress``, throttled to one write per
    :data:`HEARTBEAT_EVERY` seconds so pollers see a moving
    ``dyn_instrs`` without the hot path paying for a clock read per
    event."""

    def __init__(self, job: Job) -> None:
        self.job = job
        self.dyn_instrs = 0
        self._countdown = CHECK_EVERY
        self._next = 0.0

    def _maybe(self) -> None:
        now = time.monotonic()
        if now >= self._next:
            self._next = now + HEARTBEAT_EVERY
            self.job.heartbeat(dyn_instrs=self.dyn_instrs)

    def on_block(self, instrs, frame_id, values, addrs) -> None:
        self.dyn_instrs += len(instrs)
        self._maybe()

    def on_instr(self, instr, frame_id, value, addr) -> None:
        self.dyn_instrs += 1
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = CHECK_EVERY
            self._maybe()


def execute_job(job: Job, store=None, logger=None) -> Job:
    """Run one job to a terminal state.  Never raises: every failure
    mode lands in ``job.state``/``job.error``."""
    from ..feedback.flamegraph import render_flamegraph_svg
    from ..pipeline import analyze

    if not job.transition((JobState.QUEUED,), JobState.RUNNING):
        # cancelled while queued (or already terminal): nothing to do
        return job

    deadline = (
        time.monotonic() + job.options.timeout
        if job.options.timeout
        else None
    )
    observer = DeadlineObserver(deadline, job.cancel_event)
    heartbeat = HeartbeatObserver(job)
    # one span tree per job: StageTimings, the daemon's stage
    # histograms, the /trace artifact, and the progress heartbeats all
    # read off it
    tracer = Tracer(on_phase=lambda phase: job.heartbeat(phase=phase))
    try:
        result = analyze(
            job.spec,
            engine=job.options.engine,
            fuel=job.options.fuel,
            clamp=job.options.clamp,
            crosscheck=job.options.crosscheck,
            store=store,
            extra_observers=[observer, heartbeat],
            tracer=tracer,
            fold_jobs=job.options.fold_jobs,
            baseline=job.options.baseline if store is not None else None,
        )
        if result.incremental is not None:
            job.incremental = result.incremental.as_dict()
        job.timings = result.timings.as_dict()
        job.total_seconds = tracer.total_seconds()
        job.heartbeat(phase="done", dyn_instrs=heartbeat.dyn_instrs)
        job.stage1_cached = result.timings.stage1_cached
        job.stage2_cached = result.timings.stage2_cached
        job.cache_hit = result.timings.cache_hit
        job.summary = {
            "dyn_instrs": result.ddg_profile.builder.instr_count,
            "statements": result.folded.stmt_count(),
            "deps": len(result.folded.deps),
            "plans": len(result.plans),
        }
        if result.crosscheck is not None:
            job.crosscheck_violations = len(result.crosscheck.violations)
        job.report_json = render_json(report_document(result)).encode("utf-8")
        job.metrics_json = render_json(metrics_document(result)).encode("utf-8")
        job.flamegraph_svg = render_flamegraph_svg(
            result.schedule_tree,
            title=f"poly-prof annotated flame graph: {job.spec.name}",
        ).encode("utf-8")
        trace_doc = chrome_trace_document(
            tracer.roots, workload=job.spec.name
        )
        job.trace_json = (
            json.dumps(trace_doc, indent=2) + "\n"
        ).encode("utf-8")
        job.transition((JobState.RUNNING,), JobState.DONE)
    except JobTimeout:
        job.error = f"timed out after {job.options.timeout:g}s"
        job.transition((JobState.RUNNING,), JobState.TIMEOUT)
    except JobCancelled:
        job.error = "cancelled while running"
        job.transition((JobState.RUNNING,), JobState.CANCELLED)
    except Exception as exc:
        # error *record*, not a crashed worker; keep logs trace-free
        job.error = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        job.transition((JobState.RUNNING,), JobState.FAILED)
        if logger is not None:
            logger.error("job_failed", job_id=job.id, error=job.error)
    finally:
        tracer.close()
    return job
