"""Job execution: one worker turning a queued job into artifacts.

Runs the ordinary :func:`repro.pipeline.analyze` against the shared
:class:`~repro.store.ArtifactStore` and renders the exact response
bytes (report / metrics JSON documents, flame-graph SVG) the HTTP layer
will serve -- through the same :mod:`repro.feedback.jsonout` renderer
the CLI uses, which is what makes service responses byte-identical to
CLI output.

Timeouts and cancellation are **cooperative**: worker threads cannot
use the suite runner's ``SIGALRM`` deadline (signals only fire on the
main thread), so a passive :class:`DeadlineObserver` rides along both
profiled executions via ``analyze(extra_observers=...)`` and aborts
the run by raising.  The check costs one comparison per executed basic
block (fast engine) or one per 4096 instructions (reference engine) --
noise against instrumentation itself.  A warm cache hit never executes
and therefore never times out, which is the desired behavior: the
answer is already there.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
from typing import Optional

from ..feedback.jsonout import metrics_document, render_json, report_document
from ..isa.events import Instrumentation
from ..obs import Tracer, chrome_trace_document, clock_anchor
from ..obs.context import TraceContext
from .jobs import Job, JobState


class JobTimeout(Exception):
    """The job's deadline expired mid-execution."""


class JobCancelled(Exception):
    """The job's cancel flag was raised mid-execution."""


#: reference-engine instruction granularity of deadline checks
CHECK_EVERY = 4096

#: minimum seconds between progress heartbeats written to job state
HEARTBEAT_EVERY = 0.25


class DeadlineObserver(Instrumentation):
    """Passive observer that aborts a run past its deadline or on
    cancellation.  Attached via ``analyze(extra_observers=...)``; it
    must never mutate anything the analysis can see."""

    def __init__(
        self,
        deadline: Optional[float],
        cancel_event: Optional[threading.Event] = None,
    ) -> None:
        self.deadline = deadline
        self.cancel_event = cancel_event
        self._countdown = CHECK_EVERY

    def _check(self) -> None:
        if self.cancel_event is not None and self.cancel_event.is_set():
            raise JobCancelled()
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise JobTimeout()

    def on_block(self, instrs, frame_id, values, addrs) -> None:
        self._check()

    def on_instr(self, instr, frame_id, value, addr) -> None:
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = CHECK_EVERY
            self._check()


class _ProgressObserver(Instrumentation):
    """Passive observer streaming execution progress to a heartbeat
    callback, throttled to one call per :data:`HEARTBEAT_EVERY`
    seconds so pollers see a moving ``dyn_instrs`` without the hot
    path paying for a clock read per event."""

    def __init__(self, beat) -> None:
        self.beat = beat
        self.dyn_instrs = 0
        self._countdown = CHECK_EVERY
        self._next = 0.0

    def _maybe(self) -> None:
        now = time.monotonic()
        if now >= self._next:
            self._next = now + HEARTBEAT_EVERY
            self.beat(dyn_instrs=self.dyn_instrs)

    def on_block(self, instrs, frame_id, values, addrs) -> None:
        self.dyn_instrs += len(instrs)
        self._maybe()

    def on_instr(self, instr, frame_id, value, addr) -> None:
        self.dyn_instrs += 1
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = CHECK_EVERY
            self._maybe()


def run_analysis(
    spec,
    options,
    store=None,
    cancel_event: Optional[threading.Event] = None,
    heartbeat=None,
    trace_ctx: Optional[TraceContext] = None,
) -> dict:
    """Execute one analysis to a plain, picklable **outcome** dict.

    This is the execution core both worker flavors share: the thread
    pool calls it in-process (:func:`execute_job`), the process pool
    calls it inside a worker process (:mod:`repro.service.procpool`)
    and ships the dict back over a pipe.  Never raises: every failure
    mode lands in ``outcome["state"]``/``outcome["error"]``.

    ``heartbeat`` is a ``callable(**fields)`` receiving throttled
    progress updates (``phase=...``, ``dyn_instrs=...``); the thread
    path binds it to ``job.heartbeat``, the process path to a pipe
    send.  The rendered artifact bytes go through the same
    :mod:`repro.feedback.jsonout` renderer as the CLI, which is what
    keeps every execution mode byte-identical.
    """
    from ..feedback.flamegraph import render_flamegraph_svg
    from ..pipeline import analyze

    def _beat(**fields):
        if heartbeat is not None:
            heartbeat(**fields)

    deadline = (
        time.monotonic() + options.timeout if options.timeout else None
    )
    observer = DeadlineObserver(deadline, cancel_event)
    progress = _ProgressObserver(_beat)
    outcome: dict = {"state": JobState.FAILED, "error": None}
    # one span tree per job: StageTimings, the daemon's stage
    # histograms, the /trace artifact, and the progress heartbeats all
    # read off it; the trace context parents the roots under the
    # submitting front door's span so cross-process stitching works
    tracer = Tracer(
        on_phase=lambda phase: _beat(phase=phase), context=trace_ctx
    )
    try:
        result = analyze(
            spec,
            engine=options.engine,
            fuel=options.fuel,
            clamp=options.clamp,
            crosscheck=options.crosscheck,
            store=store,
            extra_observers=[observer, progress],
            tracer=tracer,
            fold_jobs=options.fold_jobs,
            baseline=options.baseline if store is not None else None,
        )
        _beat(phase="done", dyn_instrs=progress.dyn_instrs)
        trace_doc = chrome_trace_document(
            tracer.roots, workload=spec.name
        )
        outcome = {
            "state": JobState.DONE,
            "error": None,
            "timings": result.timings.as_dict(),
            "total_seconds": tracer.total_seconds(),
            "stage1_cached": result.timings.stage1_cached,
            "stage2_cached": result.timings.stage2_cached,
            "cache_hit": result.timings.cache_hit,
            "summary": {
                "dyn_instrs": result.ddg_profile.builder.instr_count,
                "statements": result.folded.stmt_count(),
                "deps": len(result.folded.deps),
                "plans": len(result.plans),
            },
            "crosscheck_violations": (
                len(result.crosscheck.violations)
                if result.crosscheck is not None
                else None
            ),
            "incremental": (
                result.incremental.as_dict()
                if result.incremental is not None
                else None
            ),
            "report_json": render_json(
                report_document(result)
            ).encode("utf-8"),
            "metrics_json": render_json(
                metrics_document(result)
            ).encode("utf-8"),
            "flamegraph_svg": render_flamegraph_svg(
                result.schedule_tree,
                title=f"poly-prof annotated flame graph: {spec.name}",
            ).encode("utf-8"),
            "trace_json": (
                json.dumps(trace_doc, indent=2) + "\n"
            ).encode("utf-8"),
            # distributed-trace segment: the span forest, where it ran,
            # and a clock anchor so the collector can stitch timelines
            # from different processes onto one axis
            "spans": tracer.to_dicts(),
            "pid": os.getpid(),
            "clock": clock_anchor(),
        }
    except JobTimeout:
        outcome = {
            "state": JobState.TIMEOUT,
            "error": f"timed out after {options.timeout:g}s",
        }
    except JobCancelled:
        outcome = {
            "state": JobState.CANCELLED,
            "error": "cancelled while running",
        }
    except Exception as exc:
        # error *record*, not a crashed worker; keep logs trace-free
        outcome = {
            "state": JobState.FAILED,
            "error": "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip(),
        }
    finally:
        tracer.close()
    return outcome


def run_sweep_analysis(
    workload: str,
    points: list,
    options,
    store=None,
    cancel_event: Optional[threading.Event] = None,
    heartbeat=None,
    trace_ctx: Optional[TraceContext] = None,
) -> dict:
    """Execute one sweep *parent* job to an outcome dict.

    The parent re-analyzes every point inline (no warm-phase pool: the
    fanned-out child jobs already flow through the daemon's own queue
    and warm the shared store; whichever side gets to a point first,
    the store deduplicates the work).  The rendered report is the same
    :func:`repro.sweep.feedback.sweep_document` bytes the CLI emits --
    a sweep job has no metrics/flamegraph artifact (they are per-run
    notions), so those stay None and the HTTP layer 404s them.
    """
    from ..sweep.driver import run_sweep
    from ..sweep.feedback import sweep_document

    def _beat(**fields):
        if heartbeat is not None:
            heartbeat(**fields)

    deadline = (
        time.monotonic() + options.timeout if options.timeout else None
    )
    observer = DeadlineObserver(deadline, cancel_event)
    progress = _ProgressObserver(_beat)
    outcome: dict = {"state": JobState.FAILED, "error": None}
    tracer = Tracer(
        on_phase=lambda phase: _beat(phase=phase), context=trace_ctx
    )
    try:
        with tracer.span("sweep", cat="sweep", workload=workload):
            result = run_sweep(
                workload,
                points,
                engine=options.engine,
                fuel=options.fuel,
                clamp=options.clamp,
                crosscheck=options.crosscheck,
                fold_jobs=options.fold_jobs,
                jobs=1,
                store=store,
                tracer=tracer,
                extra_observers=[observer, progress],
            )
        _beat(phase="done", dyn_instrs=progress.dyn_instrs)
        trace_doc = chrome_trace_document(tracer.roots, workload=workload)
        outcome = {
            "state": JobState.DONE,
            "error": None,
            "timings": {},
            "total_seconds": tracer.total_seconds(),
            "stage1_cached": False,
            "stage2_cached": False,
            "cache_hit": all(r.cache_hit for r in result.runs),
            "summary": {
                "runs": len(result.runs),
                "statements": len(result.model.statements),
                "deps": len(result.model.deps),
                "sweep_key": result.key,
            },
            "crosscheck_violations": None,
            "incremental": None,
            "report_json": render_json(
                sweep_document(result)
            ).encode("utf-8"),
            "metrics_json": None,
            "flamegraph_svg": None,
            "trace_json": (
                json.dumps(trace_doc, indent=2) + "\n"
            ).encode("utf-8"),
            "spans": tracer.to_dicts(),
            "pid": os.getpid(),
            "clock": clock_anchor(),
        }
    except JobTimeout:
        outcome = {
            "state": JobState.TIMEOUT,
            "error": f"timed out after {options.timeout:g}s",
        }
    except JobCancelled:
        outcome = {
            "state": JobState.CANCELLED,
            "error": "cancelled while running",
        }
    except Exception as exc:
        # unwrap the executor aborts SweepError may have wrapped: a
        # deadline that fires mid-point surfaces as SweepError with
        # JobTimeout as its cause
        cause = exc.__cause__
        if isinstance(cause, JobTimeout):
            outcome = {
                "state": JobState.TIMEOUT,
                "error": f"timed out after {options.timeout:g}s",
            }
        elif isinstance(cause, JobCancelled):
            outcome = {
                "state": JobState.CANCELLED,
                "error": "cancelled while running",
            }
        else:
            outcome = {
                "state": JobState.FAILED,
                "error": "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip(),
            }
    finally:
        tracer.close()
    return outcome


def apply_outcome(job: Job, outcome: dict, logger=None) -> Job:
    """Land an outcome dict on a RUNNING job: artifacts, timings, and
    the terminal state transition."""
    state = outcome.get("state", JobState.FAILED)
    job.error = outcome.get("error")
    if state == JobState.DONE:
        job.timings = outcome["timings"]
        job.total_seconds = outcome["total_seconds"]
        job.stage1_cached = outcome["stage1_cached"]
        job.stage2_cached = outcome["stage2_cached"]
        job.cache_hit = outcome["cache_hit"]
        job.summary = outcome["summary"]
        job.crosscheck_violations = outcome["crosscheck_violations"]
        job.incremental = outcome["incremental"]
        job.report_json = outcome["report_json"]
        job.metrics_json = outcome["metrics_json"]
        job.flamegraph_svg = outcome["flamegraph_svg"]
        job.trace_json = outcome["trace_json"]
        job.span_docs = outcome.get("spans")
        job.exec_pid = outcome.get("pid")
        job.clock = outcome.get("clock")
    elif state == JobState.FAILED and logger is not None:
        logger.error(
            "job_failed",
            job_id=job.id,
            error=job.error,
            trace_id=job.trace_id,
        )
    job.transition((JobState.RUNNING,), state)
    return job


def execute_job(job: Job, store=None, logger=None) -> Job:
    """Run one job to a terminal state in this thread.  Never raises:
    every failure mode lands in ``job.state``/``job.error``."""
    if not job.transition((JobState.QUEUED,), JobState.RUNNING):
        # cancelled while queued (or already terminal): nothing to do
        return job
    trace_ctx = (
        TraceContext.from_dict(job.trace) if job.trace else None
    )
    if job.sweep_points is not None:
        outcome = run_sweep_analysis(
            job.workload,
            job.sweep_points,
            job.options,
            store=store,
            cancel_event=job.cancel_event,
            heartbeat=job.heartbeat,
            trace_ctx=trace_ctx,
        )
    else:
        outcome = run_analysis(
            job.spec,
            job.options,
            store=store,
            cancel_event=job.cancel_event,
            heartbeat=job.heartbeat,
            trace_ctx=trace_ctx,
        )
    return apply_outcome(job, outcome, logger=logger)
