"""Consistent-hash router: one front door over N replica daemons.

``repro route`` binds a thin stdlib HTTP proxy in front of replica
daemons (``repro serve --replica-id ...``) that share one artifact
store directory.  Submissions are routed by **content**, not by
connection: the router parses the body exactly as a daemon would
(:mod:`repro.service.submission`), derives the same stage-2 content
key, and consistent-hashes it onto the replica ring.  Identical
submissions therefore always land on the identical replica, which is
what lets the daemon-side guarantees survive sharding:

* **dedup** stays exactly-once per unique submission *per replica* --
  and since a key maps to one replica, exactly-once overall;
* **cache locality** holds: the replica that computed an artifact is
  the one asked for it again (and a rebalanced key still warm-hits
  through the shared store directory).

The ring (:class:`HashRing`) hashes ``vnodes`` virtual points per
replica (sha256), so adding or losing a replica moves only ~1/N of
the key space.  A background health loop polls every replica's
``/healthz``; a replica that refuses connections (or is draining) is
excluded from new submissions, and a forward that hits a dead socket
fails over to the next ring node mid-request.  Job polls
(``GET /v1/jobs/...``) are proxied to the replica that owns the job
(remembered at submit time); if that replica died with the job, the
router answers a *retryable* 503 -- the job's in-memory registry died
with its daemon -- and
:meth:`~repro.service.client.ServiceClient.analyze_resilient`
resubmits, landing on the ring successor (warm through the shared
store when the artifacts were already computed).

The router holds no analysis state: killing it loses nothing but the
job-id -> replica map, which it relearns by probing replicas.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import re
import signal
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, List, Optional, Tuple
from urllib.parse import urlsplit

from ..obs import TraceCollector, Tracer, clock_anchor, merged_trace_document
from ..obs.context import TraceContext, new_trace_context
from .daemon import SERVICE_API_VERSION, _JOB_PATH, _TRACE_PATH
from .jsonlog import JsonLogger
from .metrics import MetricsRegistry
from .submission import BadRequest, routing_key


class HashRing:
    """Consistent hashing over named nodes with virtual points.

    Every node contributes ``vnodes`` sha256 points on a 64-bit ring;
    a key hashes to a point and walks clockwise.  :meth:`preference`
    returns *all* nodes in walk order, so callers implement failover
    by taking the first acceptable node -- the classic Dynamo-style
    preference list.
    """

    def __init__(self, nodes: List[str], vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.nodes = list(dict.fromkeys(nodes))  # order-preserving dedup
        self.vnodes = vnodes
        points = []
        for node in self.nodes:
            for i in range(vnodes):
                points.append((self._hash(f"{node}#{i}"), node))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    @staticmethod
    def _hash(value: str) -> int:
        digest = hashlib.sha256(value.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def preference(self, key: str) -> List[str]:
        """Distinct nodes in ring-walk order for ``key``."""
        if not self._points:
            return []
        idx = bisect.bisect_right(self._hashes, self._hash(key))
        seen: set = set()
        order: List[str] = []
        for offset in range(len(self._points)):
            _, node = self._points[(idx + offset) % len(self._points)]
            if node not in seen:
                seen.add(node)
                order.append(node)
                if len(order) == len(self.nodes):
                    break
        return order

    def node_for(self, key: str, exclude=()) -> Optional[str]:
        """First node for ``key`` not in ``exclude`` (None = no node)."""
        for node in self.preference(key):
            if node not in exclude:
                return node
        return None


def _split_node(node: str) -> Tuple[str, int]:
    host, _, port = node.rpartition(":")
    return host, int(port)


@dataclass
class RouterConfig:
    host: str = "127.0.0.1"
    port: int = 0
    #: replica daemons as "host:port" strings; ring membership
    replicas: List[str] = field(default_factory=list)
    #: virtual points per replica on the hash ring
    vnodes: int = 64
    #: engine assumed when a submission names none -- must match the
    #: replicas' configured default or keys diverge between router
    #: and daemon
    default_engine: str = "fast"
    #: seconds between background replica health polls
    health_interval: float = 1.0
    #: socket timeout for forwarded requests (covers slow warm gets;
    #: job *execution* is asynchronous so this never waits on analysis)
    proxy_timeout: float = 30.0
    log_stream: Optional[IO[str]] = None
    log_level: str = "info"


class AnalysisRouter:
    """One router instance over a fixed replica ring."""

    def __init__(self, config: RouterConfig) -> None:
        if not config.replicas:
            raise ValueError("need at least one replica")
        for node in config.replicas:
            _split_node(node)  # raises early on malformed addresses
        self.config = config
        self.ring = HashRing(config.replicas, vnodes=config.vnodes)
        self.logger = JsonLogger(
            stream=config.log_stream, level=config.log_level
        ).bind(service="repro.route")
        #: node -> "healthy" | "draining" | "down"
        self._replica_state = {n: "down" for n in self.ring.nodes}
        self._replica_info: dict = {n: None for n in self.ring.nodes}
        self._state_lock = threading.Lock()
        #: job id -> home node (relearned by probing when missing)
        self._job_homes: dict = {}
        #: the router's own route.forward span segments per trace;
        #: GET /v1/traces/{id} merges these with every ring member's
        self.traces = TraceCollector()
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._health_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started_at = time.time()
        self._init_metrics()

    def _init_metrics(self) -> None:
        m = MetricsRegistry()
        self.metrics = m
        self.c_http = m.counter(
            "repro_router_http_requests_total", "HTTP requests handled."
        )
        self.c_forwards = m.counter(
            "repro_router_forwards_total",
            "Requests forwarded to a replica.",
        )
        self.c_failovers = m.counter(
            "repro_router_failovers_total",
            "Forwards that fell over to a ring successor.",
        )
        self.c_unroutable = m.counter(
            "repro_router_unroutable_total",
            "Requests with no live replica to take them.",
        )
        self.c_errors = m.counter(
            "repro_router_http_errors_total",
            "Responses with status >= 400 (including proxied ones).",
        )
        self.g_replicas = m.gauge(
            "repro_router_replicas", "Configured ring members."
        )
        self.g_replicas_up = m.gauge(
            "repro_router_replicas_up", "Ring members currently healthy."
        )
        self.h_forward = m.histogram(
            "repro_router_forward_seconds",
            "Seconds spent forwarding one request to a replica.",
        )
        self.g_replicas.set(len(self.ring.nodes))

    # -- health ----------------------------------------------------------------

    def _probe(self, node: str) -> None:
        host, port = _split_node(node)
        state, info = "down", None
        try:
            conn = HTTPConnection(host, port, timeout=2.0)
            try:
                conn.request("GET", "/healthz")
                resp = conn.getresponse()
                doc = json.loads(resp.read().decode("utf-8"))
                info = {
                    "replica": doc.get("replica"),
                    "execution": doc.get("execution"),
                    "workers": doc.get("workers"),
                }
                state = (
                    "draining" if doc.get("status") == "draining"
                    else "healthy"
                )
            finally:
                conn.close()
        except (OSError, ValueError):
            pass
        self._set_state(node, state, info)

    def _set_state(
        self, node: str, state: str, info: Optional[dict] = None
    ) -> None:
        with self._state_lock:
            previous = self._replica_state[node]
            self._replica_state[node] = state
            if info is not None:
                self._replica_info[node] = info
            self.g_replicas_up.set(
                sum(
                    1 for s in self._replica_state.values()
                    if s == "healthy"
                )
            )
        if previous != state:
            self.logger.info(
                "replica_state", node=node, was=previous, now=state
            )

    def _health_loop(self) -> None:
        while not self._stop.wait(self.config.health_interval):
            for node in self.ring.nodes:
                self._probe(node)

    def replica_states(self) -> dict:
        with self._state_lock:
            return dict(self._replica_state)

    # -- forwarding ------------------------------------------------------------

    def _forward(
        self,
        node: str,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, dict, bytes]:
        """One proxied request; raises OSError when the replica is
        unreachable (callers fail over).  ``headers`` are sent in
        addition to the defaults (the ``traceparent`` propagation
        hop rides here)."""
        host, port = _split_node(node)
        conn = HTTPConnection(
            host, port, timeout=self.config.proxy_timeout
        )
        t0 = time.monotonic()
        try:
            send_headers = dict(headers or {})
            if body is not None:
                send_headers.setdefault(
                    "Content-Type", "application/json"
                )
            conn.request(method, path, body=body, headers=send_headers)
            resp = conn.getresponse()
            raw = resp.read()
            return (
                resp.status,
                {k.lower(): v for k, v in resp.getheaders()},
                raw,
            )
        finally:
            conn.close()
            self.h_forward.observe(time.monotonic() - t0)

    def submit_candidates(self, key: str) -> List[str]:
        states = self.replica_states()
        return [
            node
            for node in self.ring.preference(key)
            if states[node] == "healthy"
        ]

    def route_submission(
        self, body: dict, raw: bytes,
        trace_ctx: Optional[TraceContext] = None,
    ) -> Tuple[int, dict, bytes]:
        """Forward one ``POST /v1/analyze`` body along the preference
        list; remembers the accepting replica as the job's home.

        ``trace_ctx`` is the request's distributed trace context (the
        handler adopts the incoming ``traceparent`` or mints one); the
        forward hop propagates it as a ``traceparent`` header and the
        router records its own ``route.forward`` span under it, so the
        stitched trace shows the routing hop between the client and
        the executing replica."""
        key = routing_key(body, default_engine=self.config.default_engine)
        if trace_ctx is None:
            trace_ctx = new_trace_context()
        candidates = self.submit_candidates(key)
        if not candidates:
            self.c_unroutable.inc()
            raise NoReplica(key)
        tracer = Tracer(context=trace_ctx)
        try:
            result = None
            with tracer.span("route.submit", cat="route", key=key[:16]):
                for attempt, node in enumerate(candidates):
                    try:
                        with tracer.span(
                            "route.forward", cat="route", node=node
                        ):
                            status, headers, out = self._forward(
                                node, "POST", "/v1/analyze", raw,
                                headers={
                                    "traceparent":
                                        tracer.current_context()
                                        .to_traceparent()
                                },
                            )
                    except OSError:
                        self._set_state(node, "down")
                        self.c_failovers.inc()
                        continue
                    self.c_forwards.inc()
                    if attempt:
                        self.logger.info(
                            "submission_failed_over",
                            key=key[:16],
                            node=node,
                            trace_id=trace_ctx.trace_id,
                        )
                    if status in (200, 202):
                        try:
                            job_id = json.loads(
                                out.decode("utf-8")
                            ).get("job")
                        except ValueError:  # pragma: no cover - replica bug
                            job_id = None
                        if job_id:
                            self._job_homes[job_id] = node
                    result = status, headers, out
                    break
        finally:
            tracer.close()
            self.traces.add(
                trace_ctx.trace_id,
                source="router",
                spans=tracer.to_dicts(),
                pid=os.getpid(),
                clock=clock_anchor(),
            )
        if result is not None:
            return result
        self.c_unroutable.inc()
        raise NoReplica(key)

    def route_job_request(
        self, job_id: str, method: str, path: str
    ) -> Tuple[int, dict, bytes]:
        """Proxy a job poll/artifact/cancel to the job's home replica,
        probing the ring when the home is unknown or gone."""
        states = self.replica_states()
        home = self._job_homes.get(job_id)
        candidates = []
        if home is not None and states.get(home) != "down":
            candidates.append(home)
        # relearn: any reachable replica may own the job (router
        # restart) -- probe in stable ring order
        for node in self.ring.nodes:
            if node not in candidates and states[node] != "down":
                candidates.append(node)
        last_404 = None
        for node in candidates:
            try:
                status, headers, out = self._forward(node, method, path)
            except OSError:
                self._set_state(node, "down")
                if node == home:
                    home = None
                continue
            self.c_forwards.inc()
            if status == 404:
                last_404 = (status, headers, out)
                continue
            self._job_homes[job_id] = node
            return status, headers, out
        if home is not None or last_404 is None:
            # the owning replica is gone (or nothing reachable):
            # the job's registry died with its daemon -- retryable
            raise JobHomeDown(job_id)
        return last_404

    # -- traces ----------------------------------------------------------------

    def trace_doc(self, trace_id: str) -> Optional[dict]:
        """One stitched Chrome trace aggregated across the whole ring.

        The router holds only its own ``route.forward`` segments; the
        replica that executed the job (and, for a sweep, every replica
        that executed a child) holds the span forests.  Ask every
        non-down ring member for its raw segments, concatenate with
        ours, and merge -- the segments carry per-process clock
        anchors, so the merged document shows router, replicas, and
        worker processes on one aligned time axis."""
        segments = list(self.traces.get(trace_id) or [])
        states = self.replica_states()
        for node in self.ring.nodes:
            if states.get(node) == "down":
                continue
            try:
                status, _, out = self._forward(
                    node, "GET", f"/v1/traces/{trace_id}/segments"
                )
            except OSError:
                self._set_state(node, "down")
                continue
            if status != 200:
                continue
            try:
                doc = json.loads(out.decode("utf-8"))
            except ValueError:  # pragma: no cover - replica bug
                continue
            segments.extend(doc.get("segments") or [])
        if not segments:
            return None
        return merged_trace_document(segments, trace_id=trace_id)

    # -- documents -------------------------------------------------------------

    def health_doc(self) -> dict:
        states = self.replica_states()
        with self._state_lock:
            info = dict(self._replica_info)
        return {
            "version": SERVICE_API_VERSION,
            "role": "router",
            "status": "ok" if any(
                s == "healthy" for s in states.values()
            ) else "degraded",
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "ring": {
                "vnodes": self.config.vnodes,
                "members": self.ring.nodes,
            },
            "replicas": [
                {
                    "node": node,
                    "state": states[node],
                    "info": info[node],
                }
                for node in self.ring.nodes
            ],
            "jobs_routed": len(self._job_homes),
        }

    def render_metrics(self) -> str:
        text = self.metrics.render()
        states = self.replica_states()
        lines = []
        name = "repro_router_replica_up"
        lines.append(
            f"# HELP {name} Per-replica liveness "
            "(1 healthy, 0 draining or down)."
        )
        lines.append(f"# TYPE {name} gauge")
        for node in self.ring.nodes:
            up = 1 if states[node] == "healthy" else 0
            lines.append(f'{name}{{replica="{node}"}} {up}')
        return text + "\n".join(lines) + "\n"

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        handler = _make_router_handler(self)

        class _Server(ThreadingHTTPServer):
            daemon_threads = True
            request_queue_size = 128

        self._server = _Server(
            (self.config.host, self.config.port), handler
        )
        host, port = self._server.server_address[:2]
        self.host, self.port = host, int(port)
        for node in self.ring.nodes:  # synchronous first probe
            self._probe(node)
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-route-health", daemon=True
        )
        self._health_thread.start()
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-route-http",
            daemon=True,
        )
        self._server_thread.start()
        self.logger.info(
            "router_started",
            host=self.host,
            port=self.port,
            replicas=self.ring.nodes,
            vnodes=self.config.vnodes,
        )
        return self.host, self.port

    def shutdown(self) -> None:
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
        if self._server is not None:
            self._server.shutdown()
            if self._server_thread is not None:
                self._server_thread.join(timeout=10.0)
            self._server.server_close()
        self.logger.info("router_stopped")

    def run(self) -> int:
        """CLI loop: start, wait for SIGTERM/SIGINT, stop, exit 0."""
        stop = threading.Event()

        def _on_signal(signum, frame):
            self.logger.info("signal_received", signum=signum)
            stop.set()

        old_term = signal.signal(signal.SIGTERM, _on_signal)
        old_int = signal.signal(signal.SIGINT, _on_signal)
        try:
            host, port = self.start()
            print(
                f"repro.route listening on http://{host}:{port} "
                f"({len(self.ring.nodes)} replica(s), "
                f"{self.config.vnodes} vnodes)",
                flush=True,
            )
            while not stop.wait(0.2):
                pass
            self.shutdown()
        finally:
            signal.signal(signal.SIGTERM, old_term)
            signal.signal(signal.SIGINT, old_int)
        print("repro.route stopped", flush=True)
        return 0


class NoReplica(Exception):
    """No healthy replica can take this submission right now."""


class JobHomeDown(Exception):
    """The replica that owned this job is unreachable."""


_CANCEL_PATH = re.compile(r"^/v1/jobs/(?P<id>[^/]+)/cancel$")


def _make_router_handler(router: AnalysisRouter):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = f"repro-route/{SERVICE_API_VERSION}"

        def log_message(self, format: str, *args) -> None:
            router.logger.debug("http_server", message=format % args)

        def log_error(self, format: str, *args) -> None:
            router.logger.warning(
                "http_server_error", message=format % args
            )

        def _send(
            self,
            code: int,
            body: bytes,
            content_type: str = "application/json",
            headers: Optional[dict] = None,
        ) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            router.c_http.inc()
            if code >= 400:
                router.c_errors.inc()
            self.end_headers()
            self.wfile.write(body)

        def _send_doc(self, code: int, doc: dict, **kw) -> None:
            body = (json.dumps(doc, indent=2) + "\n").encode("utf-8")
            self._send(code, body, **kw)

        def _error(self, code: int, message: str, **extra) -> None:
            doc = {"version": SERVICE_API_VERSION, "error": message}
            doc.update(extra)
            headers = (
                {"Retry-After": "1"} if code == 503 else None
            )
            self._send_doc(code, doc, headers=headers)

        def _relay(self, result: Tuple[int, dict, bytes]) -> None:
            """Send a forwarded replica response back verbatim."""
            status, headers, body = result
            content_type = headers.get(
                "content-type", "application/json"
            )
            passthrough = {
                k.title(): v
                for k, v in headers.items()
                if k in ("retry-after",)
            }
            self._send(
                status, body,
                content_type=content_type,
                headers=passthrough,
            )

        def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
            path = urlsplit(self.path).path
            try:
                if path == "/healthz":
                    self._send_doc(200, router.health_doc())
                elif path == "/metrics":
                    self._send(
                        200,
                        router.render_metrics().encode("utf-8"),
                        content_type="text/plain; version=0.0.4",
                    )
                else:
                    trace_match = _TRACE_PATH.match(path)
                    if trace_match is not None:
                        doc = router.trace_doc(trace_match.group("id"))
                        if doc is None:
                            self._error(
                                404,
                                "unknown trace "
                                f"{trace_match.group('id')!r}",
                            )
                        else:
                            self._send_doc(200, doc)
                        return
                    match = _JOB_PATH.match(path)
                    if match is None:
                        self._error(404, f"no route for {path}")
                    elif match.group("sub") == "cancel":
                        self._error(405, "cancel requires POST")
                    else:
                        self._relay(
                            router.route_job_request(
                                match.group("id"), "GET", path
                            )
                        )
            except JobHomeDown as exc:
                self._error(
                    503,
                    f"replica owning job {exc.args[0]!r} is down; "
                    "resubmit to re-route",
                    retryable=True,
                )
            except BrokenPipeError:
                pass
            except Exception as exc:
                router.logger.error(
                    "request_failed", path=path, error=repr(exc)
                )
                try:
                    self._error(500, "internal error")
                except Exception:
                    pass

        def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
            path = urlsplit(self.path).path
            try:
                if path == "/v1/analyze":
                    self._analyze()
                    return
                match = _CANCEL_PATH.match(path)
                if match is not None:
                    self._relay(
                        router.route_job_request(
                            match.group("id"), "POST", path
                        )
                    )
                else:
                    self._error(404, f"no route for POST {path}")
            except JobHomeDown as exc:
                self._error(
                    503,
                    f"replica owning job {exc.args[0]!r} is down; "
                    "resubmit to re-route",
                    retryable=True,
                )
            except BrokenPipeError:
                pass
            except Exception as exc:
                router.logger.error(
                    "request_failed", path=path, error=repr(exc)
                )
                try:
                    self._error(500, "internal error")
                except Exception:
                    pass

        def _analyze(self) -> None:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                self._error(400, "empty request body")
                return
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._error(400, f"request body is not JSON: {exc}")
                return
            # the router is a trace front door too: adopt the caller's
            # traceparent or mint one before the forward hop
            ctx = TraceContext.from_traceparent(
                self.headers.get("traceparent")
            )
            if ctx is None:
                ctx = new_trace_context()
            try:
                result = router.route_submission(body, raw, trace_ctx=ctx)
            except BadRequest as exc:
                # reject at the edge: no replica could accept this
                self._error(400, str(exc))
                return
            except NoReplica:
                self._error(
                    503,
                    "no healthy replica available; retry",
                    retryable=True,
                )
                return
            self._relay(result)

    return Handler


def route(config: RouterConfig) -> int:
    """Blocking entry point used by ``repro route``."""
    return AnalysisRouter(config).run()
