"""Submission parsing shared by the daemon and the router.

A ``POST /v1/analyze`` body is parsed in two places: the daemon turns
it into a :class:`~repro.service.jobs.Job`, and the router
(:mod:`repro.service.router`) only needs the **content key** to pick a
replica.  Both must derive the *same* key from the same body -- the
router's whole value proposition is that identical submissions land on
the identical replica so dedup and cache locality survive sharding --
so the spec/options construction lives here, parameterized by the few
config defaults that differ per front door.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .jobs import JobOptions, derive_job_key, derive_sweep_key

ENGINES = ("fast", "reference")


class BadRequest(Exception):
    """Client error: malformed submission (HTTP 400)."""


def build_spec(body: dict) -> Tuple[object, str, bool]:
    """(spec, workload_name, inline) from a submission body.

    ``bindings`` (an object of ``param: value`` input sizes) applies
    to registry workloads only: the factory validates the names
    against the workload's declared params.
    """
    workload = body.get("workload")
    program_doc = body.get("program")
    bindings = body.get("bindings")
    if (workload is None) == (program_doc is None):
        raise BadRequest(
            "submit exactly one of 'workload' (registry name) or "
            "'program' (inline progjson document)"
        )
    if bindings is not None and not isinstance(bindings, dict):
        raise BadRequest("'bindings' must be an object of param: value")
    if workload is not None:
        from ..workloads import all_workloads

        reg = all_workloads()
        if workload not in reg:
            raise BadRequest(
                f"unknown workload {workload!r}; available: "
                + ", ".join(sorted(reg))
            )
        try:
            spec = reg[workload](**(bindings or {}))
        except (TypeError, ValueError) as exc:
            raise BadRequest(str(exc)) from exc
        return spec, workload, False
    if bindings is not None:
        raise BadRequest(
            "'bindings' applies to registry workloads only, not "
            "inline programs"
        )
    from ..isa.progjson import spec_from_documents

    try:
        spec = spec_from_documents(
            program_doc, body.get("state"), name=body.get("name")
        )
    except Exception as exc:
        raise BadRequest(f"invalid inline program: {exc}") from exc
    return spec, spec.name, True


def build_options(
    body: dict,
    default_engine: str = "fast",
    default_timeout: Optional[float] = None,
    fold_jobs_cap: Optional[int] = None,
    has_store: bool = True,
) -> JobOptions:
    """A validated :class:`JobOptions` from a submission body.

    ``fold_jobs_cap`` silently clamps (never rejects): the capped
    request still computes the identical result, just with less
    parallelism.  ``has_store=False`` rejects ``baseline_fingerprint``
    the way a store-less daemon must.
    """
    engine = body.get("engine", default_engine)
    if engine not in ENGINES:
        raise BadRequest(f"unknown engine {engine!r}; choose from {ENGINES}")
    timeout = body.get("timeout", default_timeout)
    if timeout is not None:
        timeout = float(timeout)
        if timeout <= 0:
            raise BadRequest("timeout must be positive")
    clamp = body.get("clamp")
    try:
        fold_jobs = int(body.get("fold_jobs", 1))
    except (TypeError, ValueError) as exc:
        raise BadRequest("fold_jobs must be an integer") from exc
    if fold_jobs < 1:
        raise BadRequest("fold_jobs must be >= 1")
    if fold_jobs_cap is not None:
        fold_jobs = min(fold_jobs, fold_jobs_cap)
    baseline = body.get("baseline_fingerprint")
    if baseline is not None:
        if not (
            isinstance(baseline, str)
            and len(baseline) == 64
            and all(c in "0123456789abcdef" for c in baseline)
        ):
            raise BadRequest(
                "baseline_fingerprint must be a 64-hex program digest"
            )
        if not has_store:
            raise BadRequest(
                "baseline_fingerprint requires the service to run "
                "with an artifact store (cache_dir)"
            )
    return JobOptions(
        engine=engine,
        crosscheck=bool(body.get("crosscheck", False)),
        clamp=None if clamp is None else int(clamp),
        fuel=int(body.get("fuel", 50_000_000)),
        timeout=timeout,
        fold_jobs=fold_jobs,
        baseline=baseline,
    )


def sweep_points(body: dict) -> Optional[List[Dict[str, int]]]:
    """The canonical sweep points of a submission, or None.

    A ``sweep`` body field is a list of binding objects; it requires a
    registry ``workload`` (an inline program has no declared params to
    sweep).  Points are completed from the workload's param defaults,
    deduplicated, and canonically ordered
    (:func:`repro.sweep.grid.complete_points`), so the daemon's parent
    job key and the router's key agree for any submission order.  An
    empty list means "the workload's declared default grid".
    """
    sweep = body.get("sweep")
    if sweep is None:
        return None
    workload = body.get("workload")
    if workload is None:
        raise BadRequest("'sweep' requires a registry 'workload'")
    if body.get("bindings") is not None:
        raise BadRequest(
            "submit either 'sweep' (a list of binding objects) or "
            "'bindings' (one binding object), not both"
        )
    if not isinstance(sweep, list) or not all(
        isinstance(p, dict) for p in sweep
    ):
        raise BadRequest("'sweep' must be a list of binding objects")
    from ..sweep.grid import GridError, complete_points, default_grid

    try:
        if sweep:
            points = complete_points(workload, sweep)
        else:
            points = default_grid(workload)
    except GridError as exc:
        raise BadRequest(str(exc)) from exc
    return [dict(point) for point in points]


def child_body(body: dict, point: Dict[str, int]) -> dict:
    """The submission body of one sweep point: the parent body with
    the ``sweep`` list replaced by that point's ``bindings``."""
    child = {k: v for k, v in body.items() if k != "sweep"}
    child["bindings"] = dict(point)
    return child


def routing_key(body: dict, default_engine: str = "fast") -> str:
    """The content key one submission body routes by.

    Identical to the daemon-side dedup key for the same body and
    engine default -- options that the daemon would clamp or reject
    per-config (``fold_jobs``, ``baseline``) deliberately do not move
    the key, so a request clamped differently by two replicas still
    routes consistently.  A ``sweep`` submission routes by its parent
    key (derived from the sorted child keys), so a whole sweep -- the
    parent and every child it fans out -- lands on one replica and
    shares one store.  Raises :class:`BadRequest` for bodies no
    replica could accept, letting the router 400 at the edge without
    burning a forward.
    """
    if not isinstance(body, dict):
        raise BadRequest("request body must be a JSON object")
    options = build_options(
        body,
        default_engine=default_engine,
        # key-neutral knobs: clamp to 1 / allow baseline so a router
        # without a store never rejects what a replica would accept
        fold_jobs_cap=1,
        has_store=True,
    )
    points = sweep_points(body)
    if points is not None:
        return derive_sweep_key(
            [
                derive_job_key(
                    build_spec(child_body(body, point))[0], options
                )
                for point in points
            ]
        )
    spec, _, _ = build_spec(body)
    return derive_job_key(spec, options)
