"""Analysis-as-a-service: a concurrent daemon over the pipeline.

``repro serve`` turns the one-shot analysis pipeline into a long-lived
front door: a JSON HTTP API (:mod:`repro.service.daemon`) over a
bounded job queue (:mod:`repro.service.queue`), a worker pool --
threads or long-lived worker processes
(:mod:`repro.service.procpool`) -- that reuses
:func:`repro.pipeline.analyze` with the shared artifact store,
content-addressed request deduplication (:mod:`repro.service.jobs`),
Prometheus-style observability (:mod:`repro.service.metrics`),
structured JSON logs (:mod:`repro.service.jsonlog`), and graceful
drain on SIGTERM.  For horizontal scale-out, ``repro route``
(:mod:`repro.service.router`) consistent-hashes submissions across N
replica daemons sharing one store directory.
:mod:`repro.service.client` is the matching stdlib-only Python client.
"""

from .client import JobFailed, ServiceClient, ServiceError
from .daemon import (
    SERVICE_API_VERSION,
    AnalysisService,
    BadRequest,
    Draining,
    ServiceConfig,
    serve,
)
from .executor import DeadlineObserver, apply_outcome, execute_job, run_analysis
from .jobs import Job, JobOptions, JobRegistry, JobState, derive_job_key
from .metrics import MetricsRegistry, parse_samples
from .procpool import ProcessWorker
from .queue import BoundedJobQueue, QueueFull
from .router import AnalysisRouter, HashRing, RouterConfig, route

__all__ = [
    "SERVICE_API_VERSION",
    "AnalysisRouter",
    "AnalysisService",
    "BadRequest",
    "BoundedJobQueue",
    "DeadlineObserver",
    "Draining",
    "HashRing",
    "Job",
    "JobFailed",
    "JobOptions",
    "JobRegistry",
    "JobState",
    "MetricsRegistry",
    "ProcessWorker",
    "QueueFull",
    "RouterConfig",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "apply_outcome",
    "derive_job_key",
    "execute_job",
    "parse_samples",
    "route",
    "run_analysis",
    "serve",
]
