"""Analysis-as-a-service: a concurrent daemon over the pipeline.

``repro serve`` turns the one-shot analysis pipeline into a long-lived
front door: a JSON HTTP API (:mod:`repro.service.daemon`) over a
bounded job queue (:mod:`repro.service.queue`), a worker pool that
reuses :func:`repro.pipeline.analyze` with the shared artifact store,
content-addressed request deduplication (:mod:`repro.service.jobs`),
Prometheus-style observability (:mod:`repro.service.metrics`),
structured JSON logs (:mod:`repro.service.jsonlog`), and graceful
drain on SIGTERM.  :mod:`repro.service.client` is the matching
stdlib-only Python client.
"""

from .client import JobFailed, ServiceClient, ServiceError
from .daemon import (
    SERVICE_API_VERSION,
    AnalysisService,
    BadRequest,
    Draining,
    ServiceConfig,
    serve,
)
from .executor import DeadlineObserver, execute_job
from .jobs import Job, JobOptions, JobRegistry, JobState, derive_job_key
from .metrics import MetricsRegistry, parse_samples
from .queue import BoundedJobQueue, QueueFull

__all__ = [
    "SERVICE_API_VERSION",
    "AnalysisService",
    "BadRequest",
    "BoundedJobQueue",
    "DeadlineObserver",
    "Draining",
    "Job",
    "JobFailed",
    "JobOptions",
    "JobRegistry",
    "JobState",
    "MetricsRegistry",
    "QueueFull",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "derive_job_key",
    "execute_job",
    "parse_samples",
    "serve",
]
