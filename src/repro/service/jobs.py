"""Jobs and the deduplicating job registry.

A **job** is one analysis request flowing through the daemon: it is
created by the HTTP front door, waits in the bounded queue, is executed
by a worker, and then lingers (with its rendered artifacts) so clients
can poll results and identical future requests can coalesce onto it.

Deduplication is **content-addressed**: the job key is derived from the
same program/state fingerprints and pipeline options the artifact store
keys artifacts by (:mod:`repro.store.keys`), extended with the
feedback-affecting options the store does not care about.  Two requests
with the same key are *the same work* by construction -- whichever
arrives second (while the first is queued, running, or completed and
retained) gets the first one's job id instead of a new execution.

Retention is a simple FIFO cap over *terminal* jobs: the registry
remembers at most ``retain`` finished jobs; evicting one also drops its
dedup index entry, so a re-submission after eviction simply runs again
(and, with a store attached, hits the artifact cache).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


class JobState:
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"

    TERMINAL = frozenset((DONE, FAILED, TIMEOUT, CANCELLED))


@dataclass
class JobOptions:
    """The pipeline/feedback options one submission carries."""

    engine: str = "fast"
    crosscheck: bool = False
    clamp: Optional[int] = None
    fuel: int = 50_000_000
    timeout: Optional[float] = None
    #: fold worker processes for stage 2 (bounded by the service's
    #: fold-jobs cap at submission time; 1 = serial in-process fold)
    fold_jobs: int = 1
    #: baseline program fingerprint for incremental re-analysis
    #: (``baseline_fingerprint`` on POST /v1/analyze); None = cold
    baseline: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "engine": self.engine,
            "crosscheck": self.crosscheck,
            "clamp": self.clamp,
            "fuel": self.fuel,
            "timeout": self.timeout,
            "fold_jobs": self.fold_jobs,
            "baseline": self.baseline,
        }


def derive_job_key(spec, options: JobOptions) -> str:
    """Content-addressed identity of one (workload, options) request.

    Builds on the artifact store's stage-2 key (program + state
    fingerprints + pipeline options), then folds in the options that
    change the *response* but not the cached artifacts.  ``timeout`` is
    deliberately excluded: it bounds how long we wait, not what is
    computed.  ``fold_jobs`` is excluded for the same reason: serial
    and parallel folds are bit-identical (:mod:`repro.parallel`), so a
    ``fold_jobs=4`` request rightly coalesces onto an identical
    ``fold_jobs=1`` job and vice versa.  ``baseline`` is excluded too:
    incremental and cold runs of the same program produce byte-identical
    artifacts, so an incremental request rightly coalesces onto a cold
    job of the same program and vice versa.
    """
    from ..store import keys_for_spec

    keys = keys_for_spec(
        spec,
        engine=options.engine,
        fuel=options.fuel,
        max_pieces=6,
        clamp=options.clamp,
        track_anti_output=True,
        build_schedule_tree=True,
    )
    raw = f"{keys.stage2}|crosscheck={options.crosscheck}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


def derive_sweep_key(child_keys) -> str:
    """Content-addressed identity of one sweep request: the sorted
    set of its per-point job keys.  Each child key already binds the
    workload, that point's input state, and every response-affecting
    option, so two sweeps with the same points and options coalesce
    regardless of submission order -- on the daemon (dedup) and on the
    router (replica choice) alike."""
    raw = "sweep|" + "|".join(sorted(child_keys))
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


@dataclass
class Job:
    """One analysis request and (eventually) its artifacts."""

    id: str
    key: str
    workload: str
    spec: object  # ProgramSpec; kept so the executing worker needs no re-resolve
    options: JobOptions
    inline: bool = False
    #: input-size bindings of a registry workload (``bindings`` on
    #: POST /v1/analyze); None = the registry defaults
    bindings: Optional[dict] = None
    #: canonical sweep points of a sweep *parent* job (``sweep`` on
    #: POST /v1/analyze); None = an ordinary single-input job
    sweep_points: Optional[list] = None
    #: job ids of the fanned-out per-point child jobs (best-effort:
    #: a child rejected by a full queue is simply absent -- the parent
    #: computes that point itself)
    sweep_children: List[str] = field(default_factory=list)
    #: distributed trace context (TraceContext.as_dict) this job runs
    #: under -- minted at the front door or adopted from an incoming
    #: ``traceparent`` header; sweep children carry the parent job's
    #: context verbatim so the whole fan-out stitches into one trace.
    #: A deduplicated submission keeps the *existing* job's trace.
    trace: Optional[dict] = None
    state: str = JobState.QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: per-stage seconds, derived from the executing analyze() span tree
    timings: Dict[str, float] = field(default_factory=dict)
    #: span-derived end-to-end seconds (sum of the job's root spans)
    total_seconds: Optional[float] = None
    #: live execution progress (phase, dyn_instrs, updated_at), written
    #: by heartbeats while the job runs; survives into the terminal doc
    progress: Dict[str, object] = field(default_factory=dict)
    stage1_cached: bool = False
    stage2_cached: bool = False
    cache_hit: bool = False
    error: Optional[str] = None
    #: machine-readable crash record when a worker process died while
    #: it owned this job (kind/worker/detail); None for ordinary errors
    crash: Optional[dict] = None
    summary: Dict[str, int] = field(default_factory=dict)
    #: rendered artifacts (exact bytes served to clients)
    report_json: Optional[bytes] = None
    metrics_json: Optional[bytes] = None
    flamegraph_svg: Optional[bytes] = None
    trace_json: Optional[bytes] = None
    crosscheck_violations: Optional[int] = None
    #: what the incremental machinery did when the request carried a
    #: ``baseline_fingerprint`` (IncrementalInfo.as_dict); rendered
    #: artifacts stay byte-identical to a cold run, so this is the only
    #: place the incremental account surfaces
    incremental: Optional[dict] = None
    #: exported span forest (Span.to_dict docs) of the execution,
    #: attached on completion so the daemon's TraceCollector can serve
    #: the stitched timeline; stays None for inline/deduped paths
    span_docs: Optional[list] = None
    #: pid of the process that executed the spans (a pool worker for
    #: process-mode jobs, the daemon itself for thread-mode)
    exec_pid: Optional[int] = None
    #: the executing process's clock anchor (obs.collect.clock_anchor),
    #: pairing its perf_counter with the epoch for cross-process merge
    clock: Optional[dict] = None
    #: cooperative cancellation flag, checked by the deadline observer
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: guards state transitions (workers vs. cancel vs. drain)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def trace_id(self) -> Optional[str]:
        """The distributed trace id this job runs under, if any."""
        if self.trace:
            return self.trace.get("trace_id")
        return None

    def transition(self, from_states: Tuple[str, ...], to: str) -> bool:
        """Atomically move ``from_states -> to``; False if not in one."""
        with self._lock:
            if self.state not in from_states:
                return False
            self.state = to
            if to == JobState.RUNNING:
                self.started_at = time.time()
            elif to in JobState.TERMINAL:
                self.finished_at = time.time()
            return True

    def heartbeat(self, **fields) -> None:
        """Merge live progress fields (clients poll them off the status
        doc while the job runs).  Always stamps ``updated_at``."""
        fields["updated_at"] = time.time()
        with self._lock:
            self.progress.update(fields)

    def wall_seconds(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def status_doc(self, api_version: int) -> dict:
        """The ``GET /v1/jobs/{id}`` document."""
        doc = {
            "version": api_version,
            "job": self.id,
            "key": self.key,
            "workload": self.workload,
            "inline": self.inline,
            "state": self.state,
            "options": self.options.as_dict(),
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_seconds": self.wall_seconds(),
            "total_seconds": self.total_seconds,
            "timings": dict(self.timings),
            "cache": {
                "stage1_cached": self.stage1_cached,
                "stage2_cached": self.stage2_cached,
                "hit": self.cache_hit,
            },
            "error": self.error,
            "trace_id": self.trace_id,
        }
        if self.bindings is not None:
            doc["bindings"] = dict(self.bindings)
        if self.sweep_points is not None:
            doc["sweep"] = {
                "points": [dict(p) for p in self.sweep_points],
                "children": list(self.sweep_children),
            }
        if self.crash is not None:
            doc["crash"] = dict(self.crash)
        with self._lock:
            if self.progress:
                doc["progress"] = dict(self.progress)
        if self.summary:
            doc["summary"] = dict(self.summary)
        if self.crosscheck_violations is not None:
            doc["crosscheck_violations"] = self.crosscheck_violations
        if self.incremental is not None:
            doc["incremental"] = dict(self.incremental)
        return doc


class JobRegistry:
    """Thread-safe id/key indexes with dedup and bounded retention."""

    def __init__(self, retain: int = 256) -> None:
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.retain = retain
        self._lock = threading.Lock()
        self._by_id: "OrderedDict[str, Job]" = OrderedDict()
        self._by_key: Dict[str, Job] = {}
        self._seq = 0

    def submit(
        self, key: str, factory: Callable[[str], Job]
    ) -> Tuple[Job, bool]:
        """Register the job for ``key``, coalescing duplicates.

        Returns ``(job, deduplicated)``.  An existing queued, running,
        or successfully finished job with the same key absorbs the
        request; a failed/timed-out/cancelled one is replaced (the
        caller gets a fresh attempt).  ``factory`` builds the new job
        from its assigned id; it runs under the registry lock, so it
        must be cheap (no analysis).
        """
        with self._lock:
            existing = self._by_key.get(key)
            if existing is not None and (
                not existing.terminal or existing.state == JobState.DONE
            ):
                return existing, True
            self._seq += 1
            job_id = f"j{self._seq:06d}-{key[:8]}"
            job = factory(job_id)
            self._by_id[job_id] = job
            self._by_key[key] = job
            self._evict_locked()
            return job, False

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._by_id.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._by_id.values())

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for job in self.jobs():
            out[job.state] = out.get(job.state, 0) + 1
        return out

    def _evict_locked(self) -> None:
        """Drop oldest *terminal* jobs beyond the retention cap."""
        excess = len(self._by_id) - self.retain
        if excess <= 0:
            return
        for job_id in [
            jid for jid, job in self._by_id.items() if job.terminal
        ][:excess]:
            job = self._by_id.pop(job_id)
            if self._by_key.get(job.key) is job:
                del self._by_key[job.key]
