"""Tiny stdlib HTTP client for the analysis daemon.

Used by the end-to-end tests, the service benchmark, and anyone who
wants to drive a running daemon from Python without pulling in an HTTP
library.  One :class:`ServiceClient` is safe to share across threads:
every call opens its own connection (the daemon's cost is the
analysis, not the TCP handshake).
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Optional, Tuple


class ServiceError(Exception):
    """A non-2xx response; carries status and the decoded error doc."""

    def __init__(self, status: int, doc: dict, headers: dict) -> None:
        super().__init__(
            f"HTTP {status}: {doc.get('error', '<no error field>')}"
        )
        self.status = status
        self.doc = doc
        self.headers = headers

    @property
    def retry_after(self) -> Optional[float]:
        value = self.headers.get("retry-after")
        return float(value) if value is not None else None


class JobFailed(Exception):
    """A polled job reached a non-``done`` terminal state."""

    def __init__(self, status_doc: dict) -> None:
        super().__init__(
            f"job {status_doc.get('job')} ended "
            f"{status_doc.get('state')}: {status_doc.get('error')}"
        )
        self.status_doc = status_doc


class ServiceClient:
    def __init__(
        self, host: str, port: int, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def request_raw(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, dict, bytes]:
        """(status, lowercase headers, raw body) without raising."""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            send_headers = dict(headers or {})
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                send_headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=send_headers)
            resp = conn.getresponse()
            raw = resp.read()
            return (
                resp.status,
                {k.lower(): v for k, v in resp.getheaders()},
                raw,
            )
        finally:
            conn.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, dict, bytes]:
        status, headers, raw = self.request_raw(
            method, path, body, headers=headers
        )
        if status >= 400:
            try:
                doc = json.loads(raw.decode("utf-8"))
            except Exception:
                doc = {"error": raw.decode("utf-8", "replace")}
            raise ServiceError(status, doc, headers)
        return status, headers, raw

    def _request_doc(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        _, _, raw = self._request(method, path, body)
        return json.loads(raw.decode("utf-8"))

    # -- endpoints -------------------------------------------------------------

    def health(self, raise_for_status: bool = False) -> dict:
        if raise_for_status:
            return self._request_doc("GET", "/healthz")
        status, _, raw = self.request_raw("GET", "/healthz")
        doc = json.loads(raw.decode("utf-8"))
        doc["_http_status"] = status
        return doc

    def submit(
        self,
        workload: Optional[str] = None,
        program: Optional[dict] = None,
        state: Optional[dict] = None,
        baseline_fingerprint: Optional[str] = None,
        traceparent: Optional[str] = None,
        **options,
    ) -> dict:
        """POST /v1/analyze.  ``baseline_fingerprint`` (a 64-hex
        program digest previously analyzed by the service) requests
        incremental re-analysis: only the sliced dependence frontier is
        re-instrumented; artifacts are byte-identical to a cold run and
        the job status doc carries the ``incremental`` account.

        ``traceparent`` (a W3C ``00-<trace>-<span>-<flags>`` header
        value, e.g. :meth:`TraceContext.to_traceparent
        <repro.obs.context.TraceContext.to_traceparent>`) threads this
        submission into an existing distributed trace; without it the
        service mints a fresh one and returns its id as ``trace_id``.
        """
        body = dict(options)
        if workload is not None:
            body["workload"] = workload
        if program is not None:
            body["program"] = program
        if state is not None:
            body["state"] = state
        if baseline_fingerprint is not None:
            body["baseline_fingerprint"] = baseline_fingerprint
        headers = (
            {"traceparent": traceparent} if traceparent else None
        )
        _, _, raw = self._request(
            "POST", "/v1/analyze", body, headers=headers
        )
        return json.loads(raw.decode("utf-8"))

    def job(self, job_id: str) -> dict:
        return self._request_doc("GET", f"/v1/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll: float = 0.02,
    ) -> dict:
        """Poll until the job is terminal; raises :class:`JobFailed`
        for any terminal state other than ``done``."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            state = doc["state"]
            if state == "done":
                return doc
            if state in ("failed", "timeout", "cancelled"):
                raise JobFailed(doc)
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {state} after {timeout:g}s"
                )
            time.sleep(poll)

    def report(self, job_id: str) -> bytes:
        _, _, raw = self._request("GET", f"/v1/jobs/{job_id}/report")
        return raw

    def metrics_doc(self, job_id: str) -> bytes:
        _, _, raw = self._request("GET", f"/v1/jobs/{job_id}/metrics")
        return raw

    def flamegraph(self, job_id: str) -> bytes:
        _, _, raw = self._request("GET", f"/v1/jobs/{job_id}/flamegraph")
        return raw

    def trace(self, job_id: str) -> bytes:
        """Chrome trace-event JSON of the job's own analysis spans."""
        _, _, raw = self._request("GET", f"/v1/jobs/{job_id}/trace")
        return raw

    def stitched_trace(self, trace_id: str) -> dict:
        """GET /v1/traces/{trace_id}: the merged Chrome trace of one
        distributed request.  Against a daemon this holds the spans it
        executed; against the router it aggregates every ring member,
        so a routed sweep shows router, replicas, worker processes,
        and all child jobs on one time axis."""
        return self._request_doc("GET", f"/v1/traces/{trace_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request_doc("POST", f"/v1/jobs/{job_id}/cancel")

    def service_metrics(self) -> str:
        _, _, raw = self._request("GET", "/metrics")
        return raw.decode("utf-8")

    def analyze(
        self,
        workload: Optional[str] = None,
        wait_timeout: float = 120.0,
        **submit_kwargs,
    ) -> Tuple[dict, bytes]:
        """submit -> wait -> report, the common round trip.  Returns
        (final status doc, report bytes)."""
        sub = self.submit(workload=workload, **submit_kwargs)
        status = self.wait(sub["job"], timeout=wait_timeout)
        return status, self.report(sub["job"])

    #: HTTP statuses a resubmission can cure: queue backpressure (429),
    #: drain/unroutable/dead-replica (502/503), and a job id the router
    #: relearned topology under (404)
    RETRYABLE_STATUSES = frozenset((404, 429, 502, 503))

    def analyze_resilient(
        self,
        workload: Optional[str] = None,
        wait_timeout: float = 120.0,
        attempts: int = 6,
        backoff: float = 0.25,
        **submit_kwargs,
    ) -> Tuple[dict, bytes]:
        """:meth:`analyze`, resubmitting through transient topology
        failures.  Pointed at the router, this is what makes "kill one
        replica mid-suite" lose zero jobs: a submission (or a poll of a
        job whose replica died) comes back retryable, and the resubmit
        consistent-hashes onto the ring successor -- deduplication
        keeps the retried work exactly-once per live replica.  Safe
        against any front door: retried statuses are backpressure and
        topology signals, never analysis failures."""
        last: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                return self.analyze(
                    workload=workload,
                    wait_timeout=wait_timeout,
                    **submit_kwargs,
                )
            except ServiceError as exc:
                if exc.status not in self.RETRYABLE_STATUSES:
                    raise
                last = exc
            except JobFailed as exc:
                # a drained replica cancels its queued jobs; resubmit.
                # failed/timeout are real analysis outcomes: re-raise
                if exc.status_doc.get("state") != "cancelled":
                    raise
                last = exc
            except (ConnectionError, OSError) as exc:
                last = exc
            time.sleep(min(backoff * (2 ** attempt), 5.0))
        raise last  # type: ignore[misc]
