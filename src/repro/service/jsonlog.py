"""Structured JSON logging for the analysis daemon.

One JSON object per line on a stream (stderr by default), every line
carrying the event name plus whatever context ids the emitting site
bound -- request ids, job ids, trace ids, worker indexes -- so a log
pipeline can follow one request across the HTTP handler, the queue,
and the worker that executed it without parsing free text.

Every record also carries the emitting process id (``pid``) and a
**per-process monotonic sequence number** (``seq``).  ``ts`` alone
cannot order a multi-replica log merge: wall clocks tie at the
``round(…, 6)`` granularity and can step backwards under NTP, while
``(ts, pid, seq)`` is a total order that is stable no matter how the
per-replica files were interleaved -- :func:`merge_records` is that
merge.  Lines that could not be written (dead stream) or encoded are
counted atomically (:func:`dropped_lines`) instead of raised, so the
merge consumer can at least know the log is incomplete.

Deliberately not :mod:`logging`: the daemon needs exactly one sink,
machine-readable lines, no global mutable configuration another import
could clobber, and the guarantee that a log call never raises into the
serving path.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import sys
import threading
import time
from typing import IO, Iterable, List, Optional

LEVELS = ("debug", "info", "warning", "error")

# Process-wide emission order.  itertools.count is a single C-level
# increment (atomic under the GIL), so two threads can never draw the
# same seq; a forked child keeps counting from the inherited value but
# its differing pid keeps (pid, seq) unique.
_seq = itertools.count(1)

_dropped = 0
_dropped_lock = threading.Lock()


def dropped_lines() -> int:
    """Log lines lost process-wide to encode or write failures."""
    with _dropped_lock:
        return _dropped


def _count_dropped() -> None:
    global _dropped
    with _dropped_lock:
        _dropped += 1


def merge_records(records: Iterable[dict]) -> List[dict]:
    """Deterministically order records from many interleaved logs.

    Sorts by ``(ts, pid, seq)``: wall time first (cross-process events
    keep their causal wall-clock order), then pid and the per-process
    sequence number as tie-breakers, so two merges of the same lines --
    however the per-replica files were concatenated -- are identical,
    and one process's lines never reorder against each other even when
    their timestamps tie.  Records missing the fields (foreign lines)
    sort first among their timestamp peers rather than raising.
    """
    def order(record: dict):
        ts = record.get("ts")
        return (
            ts if isinstance(ts, (int, float)) else 0.0,
            record.get("pid") or 0,
            record.get("seq") or 0,
        )

    return sorted(records, key=order)


class JsonLogger:
    """Thread-safe line-per-event JSON logger with bound context."""

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        level: str = "info",
        _bound: Optional[dict] = None,
        _lock: Optional[threading.Lock] = None,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        self._threshold = LEVELS.index(level)
        self._bound = dict(_bound or {})
        self._lock = _lock or threading.Lock()

    def bind(self, **context) -> "JsonLogger":
        """A child logger whose every line also carries ``context``."""
        bound = dict(self._bound)
        bound.update(context)
        child = JsonLogger(
            stream=self._stream,
            _bound=bound,
            _lock=self._lock,
        )
        child._threshold = self._threshold
        return child

    def log(self, level: str, event: str, **fields) -> None:
        if LEVELS.index(level) < self._threshold:
            return
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "event": event,
            "pid": os.getpid(),
            "seq": next(_seq),
        }
        record.update(self._bound)
        record.update(fields)
        try:
            line = json.dumps(record, default=str)
        except Exception:
            _count_dropped()
            line = json.dumps(
                {"ts": record["ts"], "level": "error",
                 "event": "log_encode_failed", "original_event": event,
                 "pid": record["pid"], "seq": record["seq"]}
            )
        try:
            with self._lock:
                self._stream.write(line + "\n")
                self._stream.flush()
        except Exception:
            # a dead log stream must never take the service down; the
            # dropped counter is the only trace the line leaves
            _count_dropped()

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


class NullLogger(JsonLogger):
    """Swallows everything (tests, benchmarks)."""

    def __init__(self) -> None:
        super().__init__(stream=io.StringIO(), level="error")

    def log(self, level: str, event: str, **fields) -> None:
        pass
