"""Structured JSON logging for the analysis daemon.

One JSON object per line on a stream (stderr by default), every line
carrying the event name plus whatever context ids the emitting site
bound -- request ids, job ids, worker indexes -- so a log pipeline can
follow one request across the HTTP handler, the queue, and the worker
that executed it without parsing free text.

Deliberately not :mod:`logging`: the daemon needs exactly one sink,
machine-readable lines, no global mutable configuration another import
could clobber, and the guarantee that a log call never raises into the
serving path.
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time
from typing import IO, Optional

LEVELS = ("debug", "info", "warning", "error")


class JsonLogger:
    """Thread-safe line-per-event JSON logger with bound context."""

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        level: str = "info",
        _bound: Optional[dict] = None,
        _lock: Optional[threading.Lock] = None,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        self._threshold = LEVELS.index(level)
        self._bound = dict(_bound or {})
        self._lock = _lock or threading.Lock()

    def bind(self, **context) -> "JsonLogger":
        """A child logger whose every line also carries ``context``."""
        bound = dict(self._bound)
        bound.update(context)
        child = JsonLogger(
            stream=self._stream,
            _bound=bound,
            _lock=self._lock,
        )
        child._threshold = self._threshold
        return child

    def log(self, level: str, event: str, **fields) -> None:
        if LEVELS.index(level) < self._threshold:
            return
        record = {"ts": round(time.time(), 6), "level": level, "event": event}
        record.update(self._bound)
        record.update(fields)
        try:
            line = json.dumps(record, default=str)
        except Exception:
            line = json.dumps(
                {"ts": record["ts"], "level": "error",
                 "event": "log_encode_failed", "original_event": event}
            )
        try:
            with self._lock:
                self._stream.write(line + "\n")
                self._stream.flush()
        except Exception:
            pass  # a dead log stream must never take the service down

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


class NullLogger(JsonLogger):
    """Swallows everything (tests, benchmarks)."""

    def __init__(self) -> None:
        super().__init__(stream=io.StringIO(), level="error")

    def log(self, level: str, event: str, **fields) -> None:
        pass
