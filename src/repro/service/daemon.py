"""The analysis daemon: HTTP front door, worker pool, graceful drain.

Architecture (one process, stdlib only)::

    ThreadingHTTPServer (one thread per connection)
        POST /v1/analyze  ->  resolve spec -> content key -> dedup
                              -> bounded queue (429 when full)
        GET  /v1/jobs/... ->  registry lookup (never blocks on work)
        GET  /v1/traces/..->  stitched Chrome trace of one request
                              (TraceCollector; /segments = raw spans)
        GET  /healthz     ->  liveness + load snapshot
        GET  /metrics     ->  Prometheus text exposition
                   |
            BoundedJobQueue
                   |
        worker threads (config.workers)
            pipeline.analyze(store=shared ArtifactStore,
                             extra_observers=[DeadlineObserver])

Two execution modes share that front half unchanged
(``config.execution``):

* ``thread`` -- each worker thread runs the analysis in-process.
  Warm traffic is ideal here (a cache hit is an artifact decode away,
  no pipe crossing), but cold analyses of distinct programs contend on
  the GIL.
* ``process`` -- each worker thread *proxies* its claimed job to a
  dedicated long-lived worker process (:mod:`repro.service.procpool`),
  so cold throughput scales with cores.  Queueing, dedup, drain,
  cancellation, heartbeats, and metrics all still happen here in the
  daemon; only ``pipeline.analyze`` moves out-of-process.  The workers
  share the daemon's cache *directory* (the store is cross-process
  safe) rather than its store handle.

For multi-host (or multi-daemon) scale-out, N replica daemons can
share one store directory behind the consistent-hashing router
(:mod:`repro.service.router`, ``repro route``).

Shutdown (SIGTERM/SIGINT) drains: new submissions get 503, queued jobs
are cancelled (clients polling them see ``cancelled``), in-flight jobs
finish (past ``drain_grace`` they are cooperatively cancelled), then
the HTTP server stops and the process exits 0.
"""

from __future__ import annotations

import json
import os
import re
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Optional, Tuple
from urllib.parse import urlsplit

from ..obs import TraceCollector, merged_trace_document
from ..obs.context import TraceContext, new_trace_context
from .executor import execute_job
from .jobs import Job, JobRegistry, JobState, derive_job_key, derive_sweep_key
from .jsonlog import JsonLogger
from .metrics import MetricsRegistry
from .queue import BoundedJobQueue, QueueFull
from .submission import (
    BadRequest,
    ENGINES,
    build_options,
    build_spec,
    child_body,
    sweep_points,
)

#: version of the HTTP API surface (paths, request/response documents);
#: every JSON response carries it as ``"version"``
SERVICE_API_VERSION = 1

_JOB_PATH = re.compile(
    r"^/v1/jobs/(?P<id>[^/]+)"
    r"(?:/(?P<sub>report|metrics|flamegraph|trace|cancel))?$"
)

_TRACE_PATH = re.compile(
    r"^/v1/traces/(?P<id>[0-9a-f]{32})(?:/(?P<sub>segments))?$"
)

EXECUTION_MODES = ("thread", "process")


def _fold_shard_seconds(span_docs) -> list:
    """Durations of every ``fold.shard`` span in a span-doc forest
    (the per-shard busy windows the parallel fold synthesized)."""
    out = []
    stack = list(span_docs or [])
    while stack:
        doc = stack.pop()
        if doc.get("name") == "fold.shard":
            out.append(
                max(0.0, doc.get("t1", 0.0) - doc.get("t0", 0.0))
            )
        stack.extend(doc.get("children", ()))
    return out


class Draining(Exception):
    """The service is shutting down (HTTP 503)."""


@dataclass
class ServiceConfig:
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off the service
    workers: int = 2
    #: "thread" executes analyses in worker threads (warm-optimized),
    #: "process" proxies each to a long-lived worker process
    #: (cold-throughput scales with cores); see the module docstring
    execution: str = "thread"
    #: identity this daemon reports in /healthz and /metrics when it
    #: runs as one replica of a sharded deployment; None = standalone
    replica_id: Optional[str] = None
    queue_depth: int = 16
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    engine: str = "fast"
    #: default per-job execution timeout (seconds); None = unbounded
    default_timeout: Optional[float] = None
    retain_jobs: int = 256
    #: seconds to let in-flight jobs finish on drain before
    #: cooperatively cancelling them
    drain_grace: float = 30.0
    #: cap on per-job ``fold_jobs`` requests.  None derives the cap as
    #: ``max(1, cpu_count // workers)`` so worker-thread concurrency
    #: times fold processes can never oversubscribe the host; an
    #: explicit value overrides (e.g. for tests on small machines)
    max_fold_jobs: Optional[int] = None
    log_stream: Optional[IO[str]] = None
    log_level: str = "info"


class AnalysisService:
    """One daemon instance.  ``start()`` binds and spawns everything;
    ``shutdown()`` drains and stops; ``run()`` is the CLI loop."""

    def __init__(self, config: ServiceConfig) -> None:
        if config.workers < 1:
            raise ValueError("need at least one worker")
        if config.engine not in ENGINES:
            raise ValueError(f"unknown engine {config.engine!r}")
        if config.max_fold_jobs is not None and config.max_fold_jobs < 1:
            raise ValueError("max_fold_jobs must be >= 1")
        if config.execution not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {config.execution!r}; "
                f"choose from {EXECUTION_MODES}"
            )
        self.config = config
        #: effective bound on per-job fold_jobs: queue concurrency
        #: (worker threads) x fold processes stays <= cpu_count
        self.fold_jobs_cap = (
            config.max_fold_jobs
            if config.max_fold_jobs is not None
            else max(1, (os.cpu_count() or 1) // config.workers)
        )
        self.logger = JsonLogger(
            stream=config.log_stream, level=config.log_level
        ).bind(service="repro.service")
        self.store = None
        if config.cache_dir:
            from ..store import ArtifactStore

            self.store = ArtifactStore(
                config.cache_dir, max_bytes=config.cache_max_bytes
            )
        self.registry = JobRegistry(retain=config.retain_jobs)
        self.queue = BoundedJobQueue(config.queue_depth)
        #: span segments of finished jobs, keyed by trace id, served
        #: (merged) on GET /v1/traces/{trace_id}
        self.traces = TraceCollector()
        self._draining = threading.Event()
        self._stop_workers = threading.Event()
        self._worker_threads: list = []
        self._process_workers: list = []  # ProcessWorker per slot
        self._current_jobs: dict = {}  # worker index -> in-flight Job
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._started_at = time.time()
        self._request_seq = 0
        self._request_seq_lock = threading.Lock()
        self._init_metrics()

    # -- metrics ---------------------------------------------------------------

    def _init_metrics(self) -> None:
        m = MetricsRegistry()
        self.metrics = m
        self.c_submitted = m.counter(
            "repro_service_jobs_submitted_total",
            "Well-formed analyze submissions accepted (incl. deduplicated).",
        )
        self.c_deduped = m.counter(
            "repro_service_jobs_deduped_total",
            "Submissions coalesced onto an existing identical job.",
        )
        self.c_rejected = m.counter(
            "repro_service_jobs_rejected_total",
            "Submissions rejected with 429 because the queue was full.",
        )
        self.c_executed = m.counter(
            "repro_service_jobs_executed_total",
            "Jobs a worker actually started executing the pipeline for.",
        )
        self.c_completed = m.counter(
            "repro_service_jobs_completed_total",
            "Jobs finished successfully.",
        )
        self.c_failed = m.counter(
            "repro_service_jobs_failed_total",
            "Jobs finished with an error.",
        )
        self.c_timeout = m.counter(
            "repro_service_jobs_timeout_total",
            "Jobs aborted at their per-job deadline.",
        )
        self.c_cancelled = m.counter(
            "repro_service_jobs_cancelled_total",
            "Jobs cancelled (client request, queue rejection, or drain).",
        )
        self.c_warm = m.counter(
            "repro_service_jobs_warm_hits_total",
            "Completed jobs fully served from the artifact store.",
        )
        self.c_worker_restarts = m.counter(
            "repro_service_worker_restarts_total",
            "Worker processes respawned after a crash or hard kill.",
        )
        self.c_http = m.counter(
            "repro_service_http_requests_total",
            "HTTP requests handled.",
        )
        self.c_http_errors = m.counter(
            "repro_service_http_errors_total",
            "HTTP responses with status >= 400.",
        )
        self.g_queue_depth = m.gauge(
            "repro_service_queue_depth", "Jobs currently queued."
        )
        self.g_queue_capacity = m.gauge(
            "repro_service_queue_capacity", "Configured queue depth cap."
        )
        self.g_workers = m.gauge(
            "repro_service_workers", "Configured worker threads."
        )
        self.g_busy = m.gauge(
            "repro_service_workers_busy", "Workers executing a job now."
        )
        self.g_draining = m.gauge(
            "repro_service_draining", "1 while shutdown drain is underway."
        )
        self.h_job = m.histogram(
            "repro_service_job_seconds",
            "End-to-end execution seconds of completed jobs.",
        )
        self.h_instr1 = m.histogram(
            "repro_service_stage_instr1_seconds",
            "Instrumentation I seconds (or stage-1 artifact decode).",
        )
        self.h_instr2 = m.histogram(
            "repro_service_stage_instr2_fold_seconds",
            "Instrumentation II + folding seconds (or stage-2 decode).",
        )
        self.h_feedback = m.histogram(
            "repro_service_stage_feedback_seconds",
            "Feedback/planning seconds.",
        )
        # request-latency breakdown, derived from job timestamps and
        # the stitched span forest rather than ad-hoc stopwatches
        self.h_queue_wait = m.histogram(
            "repro_service_queue_wait_seconds",
            "Seconds between submission and a worker claiming the job.",
        )
        self.h_worker_exec = m.histogram(
            "repro_service_worker_exec_seconds",
            "Wall seconds a worker slot owned the job (incl. pipe "
            "transit in process mode).",
        )
        self.h_fold_shard = m.histogram(
            "repro_service_fold_shard_seconds",
            "Per-shard fold.shard span seconds of completed jobs.",
        )
        self.g_queue_capacity.set(self.config.queue_depth)
        self.g_workers.set(self.config.workers)

    def render_metrics(self) -> str:
        text = self.metrics.render()
        # topology block: execution mode, replica identity, per-worker
        # process pids and restart counts (the registry has no label
        # support, so labeled lines are hand-rendered like the store
        # stats block below)
        lines = []
        name = "repro_service_execution_info"
        lines.append(
            f"# HELP {name} Execution mode (and replica id) this "
            "daemon runs with."
        )
        lines.append(f"# TYPE {name} gauge")
        labels = f'mode="{self.config.execution}"'
        if self.config.replica_id:
            labels += f',replica="{self.config.replica_id}"'
        lines.append(f"{name}{{{labels}}} 1")
        if self._process_workers:
            for metric, attr, help_text in (
                ("repro_service_worker_pid", "pid",
                 "Current pid of each worker process."),
                ("repro_service_worker_restarts", "restarts",
                 "Respawns of each worker process slot."),
            ):
                lines.append(f"# HELP {metric} {help_text}")
                lines.append(f"# TYPE {metric} gauge")
                for w in self._process_workers:
                    value = getattr(w, attr)
                    lines.append(
                        f'{metric}{{worker="{w.index}"}} '
                        f"{value if value is not None else -1}"
                    )
        text += "\n".join(lines) + "\n"
        if self.store is not None:
            s = self.store.stats.as_dict()
            lines = []
            for field in ("hits", "misses", "puts", "evictions", "errors"):
                name = f"repro_service_store_{field}"
                lines.append(
                    f"# HELP {name} Artifact store {field} "
                    "(this process's shared handle)."
                )
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {s[field]}")
            text += "\n".join(lines) + "\n"
        return text

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, spawn workers and the server thread; returns (host, port)."""
        handler = _make_handler(self)

        class _Server(ThreadingHTTPServer):
            daemon_threads = True
            # socketserver's default listen backlog of 5 drops SYNs
            # under a burst of concurrent clients; each dropped SYN
            # costs that client a ~1s kernel retransmit
            request_queue_size = 128

        self._server = _Server((self.config.host, self.config.port), handler)
        host, port = self._server.server_address[:2]
        self.host, self.port = host, int(port)
        if self.config.execution == "process":
            # fork the pool before any worker/server thread exists so
            # the children never inherit a mid-transaction lock
            from .procpool import ProcessWorker

            for i in range(self.config.workers):
                worker = ProcessWorker(
                    i,
                    cache_dir=self.config.cache_dir,
                    cache_max_bytes=self.config.cache_max_bytes,
                    on_restart=self._on_worker_restart,
                    on_store_stats=self._merge_store_stats,
                    logger=self.logger.bind(procpool=i),
                )
                worker.spawn()
                self._process_workers.append(worker)
        for i in range(self.config.workers):
            t = threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"repro-worker-{i}",
                daemon=True,
            )
            t.start()
            self._worker_threads.append(t)
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-http",
            daemon=True,
        )
        self._server_thread.start()
        self.logger.info(
            "service_started",
            host=self.host,
            port=self.port,
            workers=self.config.workers,
            execution=self.config.execution,
            replica=self.config.replica_id,
            queue_depth=self.config.queue_depth,
            cache_dir=self.config.cache_dir,
        )
        return self.host, self.port

    def _on_worker_restart(self, index: int) -> None:
        self.c_worker_restarts.inc()

    def _merge_store_stats(self, delta: dict) -> None:
        """Fold a worker process's per-job store counter delta into
        this daemon's handle so /metrics and /healthz keep describing
        the cache work done on this daemon's behalf."""
        if self.store is not None:
            with self.store._lock:
                self.store.stats.merge(delta)
                # the worker already flushed this delta to stats.json
                # itself; marking it flushed here keeps the daemon's
                # own drain-time flush from double-counting it
                self.store._flushed.merge(delta)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop accepting work and cancel everything still queued."""
        if self._draining.is_set():
            return
        self._draining.set()
        self.g_draining.set(1)
        pending = self.queue.drain()
        for job in pending:
            if job.transition((JobState.QUEUED,), JobState.CANCELLED):
                job.error = "cancelled: service draining"
                self.c_cancelled.inc()
        self.g_queue_depth.set(0)
        self.logger.info("drain_begun", cancelled_queued=len(pending))

    def shutdown(self, grace: Optional[float] = None) -> bool:
        """Drain and stop.  Returns True when every in-flight job
        finished inside the grace window (False = jobs were
        cooperatively cancelled)."""
        grace = self.config.drain_grace if grace is None else grace
        self.begin_drain()
        deadline = time.monotonic() + grace
        clean = True
        for t in self._worker_threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        if any(t.is_alive() for t in self._worker_threads):
            clean = False
            # past the grace window: ask in-flight jobs to stop
            for job in list(self._current_jobs.values()):
                if job is not None:
                    job.cancel_event.set()
            for t in self._worker_threads:
                t.join(timeout=10.0)
        self._stop_workers.set()
        for worker in self._process_workers:
            if any(t.is_alive() for t in self._worker_threads):
                # a wedged worker thread may still own this pipe;
                # terminate without touching the protocol
                worker.kill()
            else:
                worker.stop()
        if self.store is not None:
            try:
                self.store.flush_stats()
            except OSError:  # pragma: no cover - unwritable cache dir
                pass
        if self._server is not None:
            self._server.shutdown()
            if self._server_thread is not None:
                self._server_thread.join(timeout=10.0)
            self._server.server_close()
        self.logger.info("service_stopped", clean_drain=clean)
        return clean

    def run(self) -> int:
        """CLI loop: start, wait for SIGTERM/SIGINT, drain, exit 0."""
        stop = threading.Event()

        def _on_signal(signum, frame):
            self.logger.info("signal_received", signum=signum)
            stop.set()

        old_term = signal.signal(signal.SIGTERM, _on_signal)
        old_int = signal.signal(signal.SIGINT, _on_signal)
        try:
            host, port = self.start()
            print(
                f"repro.service listening on http://{host}:{port} "
                f"({self.config.workers} worker(s), "
                f"queue depth {self.config.queue_depth}, "
                f"cache {self.config.cache_dir or 'off'})",
                flush=True,
            )
            while not stop.wait(0.2):
                pass
            self.shutdown()
        finally:
            signal.signal(signal.SIGTERM, old_term)
            signal.signal(signal.SIGINT, old_int)
        print("repro.service drained and stopped", flush=True)
        return 0

    # -- submission ------------------------------------------------------------

    def next_request_id(self) -> str:
        with self._request_seq_lock:
            self._request_seq += 1
            return f"r{self._request_seq:06d}"

    def _build_spec(self, body: dict):
        """(spec, workload_name, inline) from a submission body."""
        return build_spec(body)

    def _build_options(self, body: dict):
        return build_options(
            body,
            default_engine=self.config.engine,
            default_timeout=self.config.default_timeout,
            fold_jobs_cap=self.fold_jobs_cap,
            has_store=self.store is not None,
        )

    def submit(
        self, body: dict, trace: Optional[dict] = None
    ) -> Tuple[Job, bool, Optional[int]]:
        """Returns (job, deduplicated, queue_position).  Raises
        :class:`BadRequest`, :class:`Draining`, or
        :class:`~repro.service.queue.QueueFull`.

        ``trace`` is the distributed trace context
        (:meth:`~repro.obs.context.TraceContext.as_dict`) the request
        arrived under; None mints a fresh one, so every job runs under
        *some* trace.  A deduplicated submission keeps the existing
        job's trace -- the work only ran once, under the first
        requester's identity.
        """
        if self._draining.is_set():
            raise Draining()
        if not isinstance(body, dict):
            raise BadRequest("request body must be a JSON object")
        if trace is None:
            trace = new_trace_context().as_dict()
        points = sweep_points(body)
        if points is not None:
            return self._submit_sweep(body, points, trace)
        spec, workload, inline = self._build_spec(body)
        options = self._build_options(body)
        key = derive_job_key(spec, options)
        self.c_submitted.inc()

        def factory(job_id: str) -> Job:
            return Job(
                id=job_id,
                key=key,
                workload=workload,
                spec=spec,
                options=options,
                inline=inline,
                bindings=body.get("bindings"),
                trace=dict(trace),
            )

        job, deduped = self.registry.submit(key, factory)
        if deduped:
            self.c_deduped.inc()
            return job, True, self.queue.position(job)
        try:
            position = self.queue.put(job)
        except QueueFull:
            # the job never ran; mark it so the key can be retried
            if job.transition((JobState.QUEUED,), JobState.CANCELLED):
                job.error = "rejected: queue full"
            self.c_rejected.inc()
            self.c_cancelled.inc()
            raise
        self.g_queue_depth.set(len(self.queue))
        return job, False, position

    def _submit_sweep(
        self, body: dict, points: list, trace: dict
    ) -> Tuple[Job, bool, Optional[int]]:
        """Submit one sweep parent plus its fanned-out point children.

        The parent's key is derived from the per-point job keys alone
        (:func:`derive_sweep_key`), so two sweeps over the same points
        coalesce no matter what happened to their children.  Children
        are submitted through the ordinary :meth:`submit` path *before*
        the parent is queued: the FIFO queue then analyzes the points
        first and warms the shared store, turning the parent's merge
        pass into decode work.  A child bounced by a full queue is
        tolerated silently -- the parent computes that point itself.

        Children inherit the parent's trace context *verbatim* (not a
        derived child context): each child's root spans parent under
        the same front-door span, so the whole fan-out stitches into
        one trace with one span forest per executing process.
        """
        options = self._build_options(body)
        workload = body["workload"]
        child_keys = [
            derive_job_key(build_spec(child_body(body, point))[0], options)
            for point in points
        ]
        key = derive_sweep_key(child_keys)
        self.c_submitted.inc()

        def factory(job_id: str) -> Job:
            return Job(
                id=job_id,
                key=key,
                workload=workload,
                spec=None,
                options=options,
                inline=False,
                sweep_points=[dict(p) for p in points],
                trace=dict(trace),
            )

        job, deduped = self.registry.submit(key, factory)
        if deduped:
            self.c_deduped.inc()
            return job, True, self.queue.position(job)
        if self.store is not None:
            # fan-out is a cache-warming optimization: without a shared
            # store the children's work cannot reach the parent, so
            # they would only double the sweep's cost
            for point in points:
                try:
                    child, _, _ = self.submit(
                        child_body(body, point), trace=trace
                    )
                    job.sweep_children.append(child.id)
                except QueueFull:
                    pass
        try:
            position = self.queue.put(job)
        except QueueFull:
            if job.transition((JobState.QUEUED,), JobState.CANCELLED):
                job.error = "rejected: queue full"
            self.c_rejected.inc()
            self.c_cancelled.inc()
            raise
        self.g_queue_depth.set(len(self.queue))
        return job, False, position

    def cancel(self, job: Job) -> Job:
        """Cancel a queued job outright; ask a running one to stop."""
        if job.transition((JobState.QUEUED,), JobState.CANCELLED):
            job.error = "cancelled by client"
            self.queue.remove(job)
            self.g_queue_depth.set(len(self.queue))
            self.c_cancelled.inc()
        else:
            job.cancel_event.set()
        return job

    # -- workers ---------------------------------------------------------------

    def _worker_loop(self, index: int) -> None:
        log = self.logger.bind(worker=index)
        while not self._stop_workers.is_set():
            job = self.queue.get(timeout=0.1)
            if job is None:
                if self._draining.is_set():
                    break
                continue
            self.g_queue_depth.set(len(self.queue))
            if job.cancel_event.is_set():
                if job.transition((JobState.QUEUED,), JobState.CANCELLED):
                    job.error = "cancelled before execution"
                    self.c_cancelled.inc()
                continue
            self._current_jobs[index] = job
            self.g_busy.inc()
            log.info(
                "job_start",
                job_id=job.id,
                workload=job.workload,
                engine=job.options.engine,
                trace_id=job.trace_id,
            )
            started_before = job.started_at
            claimed_at = time.monotonic()
            try:
                if self._process_workers and job.sweep_points is None:
                    self._process_workers[index].run_job(job)
                else:
                    # sweep parents always run thread-side: their
                    # per-point work is already fanned out to child
                    # jobs, and the merge is decode-bound
                    execute_job(job, store=self.store, logger=log)
            except BaseException as exc:
                # the executor contract is "never raises"; anything
                # that escapes anyway must not leave the job `running`
                # forever (the pre-procpool worker-crash leak)
                job.error = f"worker_crashed: {exc!r}"
                job.crash = {
                    "kind": "worker_crashed",
                    "worker": index,
                    "detail": repr(exc),
                }
                job.transition(
                    (JobState.QUEUED, JobState.RUNNING), JobState.FAILED
                )
                self.c_worker_restarts.inc()
                log.error(
                    "job_worker_crashed", job_id=job.id, error=repr(exc)
                )
            if job.started_at is not None and started_before is None:
                self.c_executed.inc()
                self.h_queue_wait.observe(
                    max(0.0, (job.started_at or 0.0) - job.created_at)
                )
                self.h_worker_exec.observe(time.monotonic() - claimed_at)
            if job.state == JobState.DONE:
                self.c_completed.inc()
                # every histogram below is read off the job's span
                # tree: total_seconds is the root span, the stage
                # timings are StageTimings.from_span_tree views
                self.h_job.observe(job.total_seconds or 0.0)
                self.h_instr1.observe(job.timings.get("instr1", 0.0))
                self.h_instr2.observe(job.timings.get("instr2_fold", 0.0))
                self.h_feedback.observe(job.timings.get("feedback", 0.0))
                for shard_seconds in _fold_shard_seconds(job.span_docs):
                    self.h_fold_shard.observe(shard_seconds)
                if job.cache_hit:
                    self.c_warm.inc()
            elif job.state == JobState.TIMEOUT:
                self.c_timeout.inc()
            elif job.state == JobState.CANCELLED:
                self.c_cancelled.inc()
            elif job.state == JobState.FAILED:
                self.c_failed.inc()
            if job.span_docs and job.trace_id:
                self.traces.add(
                    job.trace_id,
                    source=self.config.replica_id or "daemon",
                    spans=job.span_docs,
                    pid=job.exec_pid,
                    clock=job.clock,
                    job_id=job.id,
                )
            self.g_busy.dec()
            self._current_jobs[index] = None
            log.info(
                "job_end",
                job_id=job.id,
                state=job.state,
                seconds=round(job.total_seconds or job.wall_seconds() or 0.0, 6),
                cache_hit=job.cache_hit,
                trace_id=job.trace_id,
            )

    # -- health ----------------------------------------------------------------

    def health_doc(self) -> dict:
        doc = {
            "version": SERVICE_API_VERSION,
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "workers": self.config.workers,
            "execution": self.config.execution,
            "replica": self.config.replica_id,
            "busy": int(self.g_busy.value),
            "fold_jobs_cap": self.fold_jobs_cap,
            "queue_depth": len(self.queue),
            "queue_capacity": self.config.queue_depth,
            "jobs": self.registry.counts(),
            "store": (
                self.store.stats.as_dict() if self.store is not None else None
            ),
        }
        if self._process_workers:
            doc["process_workers"] = [
                {
                    "worker": w.index,
                    "pid": w.pid,
                    "alive": w.alive(),
                    "restarts": w.restarts,
                    "jobs_executed": w.jobs_executed,
                }
                for w in self._process_workers
            ]
        if self.store is not None:
            persisted = self.store.persistent_stats()
            if persisted is not None:
                doc["store_persisted"] = persisted
        return doc

    # -- traces ----------------------------------------------------------------

    def trace_doc(self, trace_id: str) -> Optional[dict]:
        """The stitched Chrome trace of one request, or None if this
        daemon retained no segment of it."""
        segments = self.traces.get(trace_id)
        if segments is None:
            return None
        return merged_trace_document(segments, trace_id=trace_id)

    def trace_segments_doc(self, trace_id: str) -> Optional[dict]:
        """The raw retained segments of one trace -- what the router
        aggregates from every ring member before merging."""
        segments = self.traces.get(trace_id)
        if segments is None:
            return None
        return {
            "version": SERVICE_API_VERSION,
            "trace_id": trace_id,
            "segments": segments,
        }


# -- the HTTP layer -----------------------------------------------------------------


def _make_handler(service: AnalysisService):
    """A :class:`BaseHTTPRequestHandler` subclass closed over one
    service instance (ThreadingHTTPServer instantiates it per
    connection)."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = f"repro-service/{SERVICE_API_VERSION}"

        # route BaseHTTPRequestHandler's own stderr chatter into the
        # structured log (it writes tracebacks for client disconnects
        # otherwise)
        def log_message(self, format: str, *args) -> None:
            service.logger.debug("http_server", message=format % args)

        def log_error(self, format: str, *args) -> None:
            service.logger.warning("http_server_error", message=format % args)

        # -- plumbing ----------------------------------------------------------

        def _send(
            self,
            code: int,
            body: bytes,
            content_type: str = "application/json",
            headers: Optional[dict] = None,
        ) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            # count before writing: a client that reads this response
            # and immediately polls /metrics must see the increment
            service.c_http.inc()
            if code >= 400:
                service.c_http_errors.inc()
            self.end_headers()
            self.wfile.write(body)

        def _send_doc(
            self, code: int, doc: dict, headers: Optional[dict] = None
        ) -> None:
            body = (json.dumps(doc, indent=2) + "\n").encode("utf-8")
            self._send(code, body, headers=headers)

        def _error(
            self, code: int, message: str, headers: Optional[dict] = None,
            **extra,
        ) -> None:
            doc = {"version": SERVICE_API_VERSION, "error": message}
            doc.update(extra)
            self._send_doc(code, doc, headers=headers)

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise BadRequest("empty request body")
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise BadRequest(f"request body is not JSON: {exc}") from exc

        # -- routes ------------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
            rid = service.next_request_id()
            t0 = time.monotonic()
            path = urlsplit(self.path).path
            self._trace_id = None  # set once a handler learns it
            try:
                if path == "/healthz":
                    doc = service.health_doc()
                    self._send_doc(503 if service.draining else 200, doc)
                elif path == "/metrics":
                    self._send(
                        200,
                        service.render_metrics().encode("utf-8"),
                        content_type="text/plain; version=0.0.4",
                    )
                else:
                    match = _TRACE_PATH.match(path)
                    if match is not None:
                        self._trace_get(
                            match.group("id"), match.group("sub")
                        )
                    else:
                        match = _JOB_PATH.match(path)
                        if match is None:
                            self._error(404, f"no route for {path}")
                        elif match.group("sub") == "cancel":
                            self._error(405, "cancel requires POST")
                        else:
                            self._job_get(
                                match.group("id"), match.group("sub")
                            )
            except BrokenPipeError:  # client went away; nothing to send
                pass
            except Exception as exc:
                service.logger.error(
                    "request_failed", request_id=rid, path=path,
                    error=repr(exc),
                )
                try:
                    self._error(500, "internal error")
                except Exception:
                    pass
            finally:
                fields = {}
                if self._trace_id:
                    fields["trace_id"] = self._trace_id
                service.logger.info(
                    "http_request",
                    request_id=rid,
                    method="GET",
                    path=path,
                    seconds=round(time.monotonic() - t0, 6),
                    **fields,
                )

        def _trace_get(self, trace_id: str, sub: Optional[str]) -> None:
            self._trace_id = trace_id
            doc = (
                service.trace_segments_doc(trace_id)
                if sub == "segments"
                else service.trace_doc(trace_id)
            )
            if doc is None:
                self._error(404, f"unknown trace {trace_id!r}")
            else:
                self._send_doc(200, doc)

        def _job_get(self, job_id: str, sub: Optional[str]) -> None:
            job = service.registry.get(job_id)
            if job is None:
                self._error(404, f"unknown job {job_id!r}")
                return
            self._trace_id = job.trace_id
            if sub is None:
                doc = job.status_doc(SERVICE_API_VERSION)
                position = service.queue.position(job)
                if position is not None:
                    doc["queue_position"] = position
                self._send_doc(200, doc)
                return
            if job.state != JobState.DONE:
                self._error(
                    409,
                    f"job {job_id} has no artifacts "
                    f"(state: {job.state})",
                    state=job.state,
                    job_error=job.error,
                )
                return
            payload = {
                "report": job.report_json,
                "metrics": job.metrics_json,
                "trace": job.trace_json,
                "flamegraph": job.flamegraph_svg,
            }[sub]
            if payload is None:
                # sweep jobs have no per-run metrics/flamegraph
                self._error(
                    404, f"job {job_id} has no {sub} artifact"
                )
            elif sub == "flamegraph":
                self._send(200, payload, content_type="image/svg+xml")
            else:
                self._send(200, payload)

        def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
            rid = service.next_request_id()
            t0 = time.monotonic()
            path = urlsplit(self.path).path
            status = "ok"
            self._trace_id = None
            try:
                if path == "/v1/analyze":
                    self._analyze(rid)
                else:
                    match = _JOB_PATH.match(path)
                    if match is not None and match.group("sub") == "cancel":
                        job = service.registry.get(match.group("id"))
                        if job is None:
                            self._error(
                                404, f"unknown job {match.group('id')!r}"
                            )
                        else:
                            self._trace_id = job.trace_id
                            service.cancel(job)
                            self._send_doc(
                                200, job.status_doc(SERVICE_API_VERSION)
                            )
                    else:
                        self._error(404, f"no route for POST {path}")
            except BrokenPipeError:
                status = "disconnect"
            except Exception as exc:
                status = "error"
                service.logger.error(
                    "request_failed", request_id=rid, path=path,
                    error=repr(exc),
                )
                try:
                    self._error(500, "internal error")
                except Exception:
                    pass
            finally:
                fields = {}
                if self._trace_id:
                    fields["trace_id"] = self._trace_id
                service.logger.info(
                    "http_request",
                    request_id=rid,
                    method="POST",
                    path=path,
                    status=status,
                    seconds=round(time.monotonic() - t0, 6),
                    **fields,
                )

        def _analyze(self, request_id: str) -> None:
            # front door of the distributed trace: adopt the caller's
            # traceparent (router, CLI client) or mint a fresh context;
            # a malformed header degrades to minting, never to a 4xx
            ctx = TraceContext.from_traceparent(
                self.headers.get("traceparent")
            )
            if ctx is None:
                ctx = new_trace_context()
            self._trace_id = ctx.trace_id
            try:
                body = self._read_body()
                job, deduped, position = service.submit(
                    body, trace=ctx.as_dict()
                )
            except BadRequest as exc:
                self._error(400, str(exc))
                return
            except Draining:
                self._error(
                    503, "service is draining; resubmit elsewhere",
                    headers={"Retry-After": "10"},
                )
                return
            except QueueFull as exc:
                self._error(
                    429,
                    f"queue full ({exc.depth} job(s) pending); retry later",
                    headers={"Retry-After": "1"},
                )
                return
            # a dedup hit keeps the existing job's trace: report the
            # trace that actually covers the work, not the minted one
            self._trace_id = job.trace_id or ctx.trace_id
            doc = {
                "version": SERVICE_API_VERSION,
                "job": job.id,
                "key": job.key,
                "workload": job.workload,
                "state": job.state,
                "deduplicated": deduped,
                "trace_id": self._trace_id,
            }
            if position is not None:
                doc["queue_position"] = position
            service.logger.info(
                "job_submitted",
                request_id=request_id,
                job_id=job.id,
                workload=job.workload,
                deduplicated=deduped,
                trace_id=self._trace_id,
            )
            self._send_doc(200 if deduped else 202, doc)

    return Handler


def serve(config: ServiceConfig) -> int:
    """Blocking entry point used by ``repro serve``."""
    return AnalysisService(config).run()
