"""Process-pool job execution: one long-lived worker process per slot.

The thread pool's economics stop at one core: every analysis executes
pure Python under one GIL, so ``--workers 8`` buys concurrency but not
throughput.  This module moves execution into worker *processes* while
keeping the daemon's front half (queue, dedup, registry, drain)
untouched: each daemon worker thread owns one :class:`ProcessWorker`
and proxies claimed jobs to it, so a thread slot becomes a process
slot and cold throughput scales with cores.

Wire protocol (two ``multiprocessing`` pipes per worker)::

    parent -> worker (control)          worker -> parent (events)
      ("job", {job_id, payload,           ("ready", {pid})
               options, ...})             ("heartbeat", {job_id, ...})
      ("cancel", job_id)                  ("result", {job_id, outcome,
      ("stop", None)                                  store_stats})

Jobs cross the boundary in the fingerprint-preserving formats that
already exist: registered workloads ship as their registry name,
inline submissions as their progjson program/state documents
(:mod:`repro.isa.progjson`), and options as the
:meth:`~repro.service.jobs.JobOptions.as_dict` document.  Results come
back as the picklable outcome dict of
:func:`~repro.service.executor.run_analysis` -- the exact same
execution and rendering core the thread pool uses, which is what keeps
process-mode artifacts byte-identical to thread-mode and CLI output.

Timeout and cancellation stay **cooperative and worker-side**: the
deadline observer rides the instrumented executions inside the worker
process exactly as it does inside a worker thread.  The parent adds
the two guarantees threads could never give:

* **hard kill on overrun** -- a worker that blows through its deadline
  plus a grace window (stuck in non-observed code) is killed and
  respawned, and the job lands ``timeout`` instead of wedging a slot;
* **crash containment** -- a worker dying mid-job (OOM kill, segfault,
  ``kill -9``) marks the job ``failed`` with a machine-readable
  ``worker_crashed`` record, respawns the worker, and increments
  ``repro_service_worker_restarts_total``; before this, a dead
  executor left the job ``running`` forever.

Every worker opens its own :class:`~repro.store.ArtifactStore` handle
on the shared cache directory (cross-process-safe: atomic puts,
``flock``-guarded eviction) and ships per-job stats deltas back so the
daemon's ``/metrics`` still tells the truth about cache behavior.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
import time
from typing import Callable, Optional

from .jobs import Job, JobOptions, JobState

#: seconds the parent waits for a freshly spawned worker's ready message
SPAWN_TIMEOUT = 60.0

#: parent-side poll granularity while a job runs in a worker (bounds
#: cancel-forwarding latency; heartbeats arrive on the same poll)
POLL_SECONDS = 0.05

#: seconds past the cooperative deadline (or past a forwarded cancel)
#: before the parent stops trusting the worker and hard-kills it
HARD_KILL_GRACE = 10.0


def _job_payload(job: Job) -> dict:
    """The picklable description of one job's work."""
    if not job.inline:
        payload = {"workload": job.workload}
        if job.bindings:
            payload["bindings"] = dict(job.bindings)
        return payload
    from ..isa.progjson import encode_program, encode_state

    args, memory = job.spec.make_state()
    return {
        "program": encode_program(job.spec.program),
        "state": encode_state(args, memory),
        "name": job.spec.name,
    }


def _rebuild_spec(payload: dict):
    if "workload" in payload:
        from ..workloads import all_workloads

        return all_workloads()[payload["workload"]](
            **payload.get("bindings", {})
        )
    from ..isa.progjson import spec_from_documents

    return spec_from_documents(
        payload["program"], payload["state"], name=payload["name"]
    )


def _worker_main(ctl, evt, cache_dir, cache_max_bytes) -> None:
    """Worker process body: execute shipped jobs until told to stop.

    A reader thread owns the control pipe so cancels are seen *while*
    a job executes; the main thread owns the event pipe so heartbeats
    and results never interleave mid-message.  Pipe death (the daemon
    went away) exits the worker rather than leaving an orphan.
    """
    from ..obs.context import TraceContext
    from ..store import ArtifactStore
    from .executor import run_analysis

    store = (
        ArtifactStore(cache_dir, max_bytes=cache_max_bytes)
        if cache_dir
        else None
    )
    inbox: "queue_mod.Queue" = queue_mod.Queue()
    cancels: dict = {}
    cancels_lock = threading.Lock()

    def _read_control() -> None:
        while True:
            try:
                msg, data = ctl.recv()
            except (EOFError, OSError):
                inbox.put(("stop", None))
                return
            if msg == "cancel":
                with cancels_lock:
                    event = cancels.get(data)
                if event is not None:
                    event.set()
            elif msg == "job":
                # the reader registers the cancel event so a cancel
                # arriving a tick after its job can never be dropped
                event = threading.Event()
                with cancels_lock:
                    cancels[data["job_id"]] = event
                data["_cancel"] = event
                inbox.put((msg, data))
            else:
                inbox.put((msg, data))
                if msg == "stop":
                    return

    threading.Thread(
        target=_read_control, name="repro-procpool-ctl", daemon=True
    ).start()
    try:
        evt.send(("ready", {"pid": os.getpid()}))
        while True:
            msg, data = inbox.get()
            if msg == "stop":
                return
            job_id = data["job_id"]

            def _beat(**fields):
                try:
                    evt.send(("heartbeat", dict(fields, job_id=job_id)))
                except (BrokenPipeError, OSError):
                    pass  # parent went away; the job result will too

            before = store.stats.as_dict() if store else None
            try:
                spec = _rebuild_spec(data["payload"])
                options = JobOptions(**data["options"])
                trace_ctx = (
                    TraceContext.from_dict(data["trace"])
                    if data.get("trace")
                    else None
                )
                outcome = run_analysis(
                    spec,
                    options,
                    store=store,
                    cancel_event=data["_cancel"],
                    heartbeat=_beat,
                    trace_ctx=trace_ctx,
                )
            except Exception as exc:  # spec/options rebuild failed
                outcome = {
                    "state": JobState.FAILED,
                    "error": f"worker could not rebuild job: {exc!r}",
                }
            stats_delta = None
            if store is not None:
                after = store.stats.as_dict()
                stats_delta = {
                    k: after[k] - before[k] for k in after
                }
                try:
                    store.flush_stats()
                except OSError:  # pragma: no cover - unwritable root
                    pass
            with cancels_lock:
                cancels.pop(job_id, None)
            evt.send(
                (
                    "result",
                    {
                        "job_id": job_id,
                        "outcome": outcome,
                        "store_stats": stats_delta,
                    },
                )
            )
    except (BrokenPipeError, OSError, EOFError):
        pass  # parent died; exit quietly
    finally:
        for conn in (ctl, evt):
            try:
                conn.close()
            except OSError:
                pass


class WorkerCrashed(Exception):
    """The worker process died while it owned a job."""


class ProcessWorker:
    """Parent-side handle on one long-lived worker process.

    Owned and driven by exactly one daemon worker thread
    (``run_job``); only ``stop``/``kill`` may be called from the
    shutdown path after that thread has been joined.
    """

    def __init__(
        self,
        index: int,
        cache_dir: Optional[str] = None,
        cache_max_bytes: Optional[int] = None,
        hard_kill_grace: float = HARD_KILL_GRACE,
        on_restart: Optional[Callable[[int], None]] = None,
        on_store_stats: Optional[Callable[[dict], None]] = None,
        logger=None,
        mp_context=None,
    ) -> None:
        self.index = index
        self.cache_dir = cache_dir
        self.cache_max_bytes = cache_max_bytes
        self.hard_kill_grace = hard_kill_grace
        self.on_restart = on_restart
        self.on_store_stats = on_store_stats
        self.logger = logger
        self._ctx = (
            mp_context
            if mp_context is not None
            else multiprocessing.get_context()
        )
        self.restarts = 0
        self.jobs_executed = 0
        self.closed = False
        self._proc = None
        self._ctl = None
        self._evt = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def spawn(self) -> None:
        """Start (or restart) the worker process and wait until it
        reports ready."""
        self._teardown()
        ctl_r, ctl_w = self._ctx.Pipe(duplex=False)
        evt_r, evt_w = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(ctl_r, evt_w, self.cache_dir, self.cache_max_bytes),
            name=f"repro-procworker-{self.index}",
            daemon=True,
        )
        proc.start()
        ctl_r.close()
        evt_w.close()
        self._proc, self._ctl, self._evt = proc, ctl_w, evt_r
        if not evt_r.poll(SPAWN_TIMEOUT):
            self._teardown()
            raise RuntimeError(
                f"process worker {self.index} never reported ready"
            )
        msg, data = evt_r.recv()
        if msg != "ready":  # pragma: no cover - protocol guard
            self._teardown()
            raise RuntimeError(
                f"process worker {self.index} sent {msg!r} before ready"
            )
        if self.logger is not None:
            self.logger.info(
                "process_worker_ready", worker=self.index, pid=proc.pid
            )

    def _respawn(self) -> None:
        """Replace a dead worker; counts toward the restart metric."""
        self.restarts += 1
        if self.on_restart is not None:
            self.on_restart(self.index)
        if self.closed:
            return
        try:
            self.spawn()
        except Exception:
            # a host that cannot fork right now will get another
            # chance on the next job; run_job handles a dead worker
            self._teardown()

    def _teardown(self) -> None:
        for conn in (self._ctl, self._evt):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        if self._proc is not None and self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5)
            if self._proc.is_alive():  # pragma: no cover - stuck kernel
                self._proc.kill()
                self._proc.join(timeout=5)
        self._proc = self._ctl = self._evt = None

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful worker exit (between jobs); kills on overrun."""
        self.closed = True
        if self._proc is not None and self._proc.is_alive():
            try:
                self._ctl.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
            self._proc.join(timeout=timeout)
        self._teardown()

    def kill(self) -> None:
        """Immediate teardown (shutdown past grace)."""
        self.closed = True
        self._teardown()

    # -- job execution ---------------------------------------------------------

    def run_job(self, job: Job) -> Job:
        """Execute one job in the worker process; never raises.

        Mirrors :func:`~repro.service.executor.execute_job`'s contract
        from the daemon's point of view: the job leaves in a terminal
        state with artifacts (or an error record) attached.
        """
        if not job.transition((JobState.QUEUED,), JobState.RUNNING):
            return job
        if not self.alive():
            self._respawn()
            if not self.alive():
                return self._mark_crashed(
                    job, "worker process could not be spawned"
                )
        try:
            payload = _job_payload(job)
        except Exception as exc:
            job.error = f"could not encode job for worker: {exc!r}"
            job.transition((JobState.RUNNING,), JobState.FAILED)
            return job
        message = {
            "job_id": job.id,
            "payload": payload,
            "options": job.options.as_dict(),
            # trace context crosses the pipe as a plain dict so the
            # worker's root spans stitch under the submitting request
            "trace": dict(job.trace) if job.trace else None,
        }
        try:
            self._ctl.send(("job", message))
        except (BrokenPipeError, OSError):
            # died idle between jobs: one respawn, one retry
            self._respawn()
            if not self.alive():
                return self._mark_crashed(job, "worker died before job")
            try:
                self._ctl.send(("job", message))
            except (BrokenPipeError, OSError):
                self._respawn()
                return self._mark_crashed(job, "worker died before job")
        return self._await_result(job)

    def _await_result(self, job: Job) -> Job:
        from .executor import apply_outcome

        deadline = (
            time.monotonic() + job.options.timeout
            if job.options.timeout
            else None
        )
        kill_at = (
            deadline + self.hard_kill_grace if deadline else None
        )
        cancel_forwarded = False
        while True:
            try:
                has_event = self._evt.poll(POLL_SECONDS)
            except OSError:
                has_event = False
            if has_event:
                try:
                    msg, data = self._evt.recv()
                except (EOFError, OSError):
                    self._respawn()
                    return self._mark_crashed(job, "worker died mid-job")
                if msg == "heartbeat" and data.get("job_id") == job.id:
                    fields = dict(data)
                    fields.pop("job_id", None)
                    job.heartbeat(**fields)
                elif msg == "result" and data.get("job_id") == job.id:
                    self.jobs_executed += 1
                    if (
                        data.get("store_stats")
                        and self.on_store_stats is not None
                    ):
                        self.on_store_stats(data["store_stats"])
                    return apply_outcome(
                        job, data["outcome"], logger=self.logger
                    )
                continue  # stale message from a killed predecessor job
            if not self.alive():
                self._respawn()
                return self._mark_crashed(job, "worker died mid-job")
            now = time.monotonic()
            if job.cancel_event.is_set() and not cancel_forwarded:
                cancel_forwarded = True
                # the worker honors this at deadline-check granularity;
                # past the grace window we stop waiting politely
                kill_at = min(
                    kill_at or float("inf"),
                    now + self.hard_kill_grace,
                )
                try:
                    self._ctl.send(("cancel", job.id))
                except (BrokenPipeError, OSError):
                    self._respawn()
                    return self._mark_crashed(job, "worker died mid-job")
            if kill_at is not None and now > kill_at:
                # cooperative mechanisms failed: hard-kill + respawn
                self._teardown()
                self._respawn()
                if cancel_forwarded:
                    job.error = "cancelled while running"
                    job.transition(
                        (JobState.RUNNING,), JobState.CANCELLED
                    )
                else:
                    job.error = (
                        f"timed out after {job.options.timeout:g}s "
                        "(worker hard-killed past grace)"
                    )
                    job.transition((JobState.RUNNING,), JobState.TIMEOUT)
                if self.logger is not None:
                    self.logger.warning(
                        "process_worker_hard_killed",
                        worker=self.index,
                        job_id=job.id,
                        state=job.state,
                    )
                return job

    def _mark_crashed(self, job: Job, detail: str) -> Job:
        job.error = f"worker_crashed: {detail}"
        job.crash = {
            "kind": "worker_crashed",
            "worker": self.index,
            "detail": detail,
        }
        job.transition((JobState.RUNNING,), JobState.FAILED)
        if self.logger is not None:
            self.logger.error(
                "job_worker_crashed",
                job_id=job.id,
                worker=self.index,
                detail=detail,
            )
        return job
