"""Minimal Prometheus-style instrumentation (stdlib only).

The service exposes its counters, gauges, and latency histograms on
``GET /metrics`` in the Prometheus text exposition format (version
0.0.4): ``# HELP`` / ``# TYPE`` comments followed by samples, with
histograms rendered as cumulative ``_bucket{le="..."}`` series plus
``_sum`` and ``_count``.

Everything is thread-safe (one lock per registry -- contention is
trivial next to an analysis), deterministic (metrics render in
registration order), and dependency-free.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: default latency buckets (seconds): microsecond-scale warm hits up
#: to multi-second cold profiling runs
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0,
)


def _fmt(value: float) -> str:
    """Prometheus sample formatting: integers without a decimal point."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing counter."""

    def __init__(self, name: str, help_: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help_
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} counter",
            f"{self.name} {_fmt(self.value)}",
        ]


class Gauge:
    """A value that can go up and down."""

    def __init__(self, name: str, help_: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help_
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} gauge",
            f"{self.name} {_fmt(self.value)}",
        ]


class Histogram:
    """Cumulative-bucket latency histogram."""

    def __init__(
        self,
        name: str,
        help_: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help_
        self._lock = lock
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def render(self) -> List[str]:
        with self._lock:
            counts = list(self._counts)
            total, sum_ = self._count, self._sum
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} histogram",
        ]
        for bound, n in zip(self.buckets, counts):
            lines.append(f'{self.name}_bucket{{le="{_fmt(bound)}"}} {n}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{self.name}_sum {_fmt(sum_)}")
        lines.append(f"{self.name}_count {total}")
        return lines


class MetricsRegistry:
    """All of one service's metrics, rendered in registration order."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str, help_: str) -> Counter:
        return self._register(Counter(name, help_, self._lock))

    def gauge(self, name: str, help_: str) -> Gauge:
        return self._register(Gauge(name, help_, self._lock))

    def histogram(
        self,
        name: str,
        help_: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram(name, help_, self._lock, buckets=buckets)
        )

    def _register(self, metric):
        if metric.name in self._metrics:
            raise ValueError(f"duplicate metric {metric.name!r}")
        self._metrics[metric.name] = metric
        return metric

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def render(self) -> str:
        lines: List[str] = []
        for metric in self._metrics.values():
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


def parse_samples(text: str) -> Dict[str, float]:
    """Parse the flat samples out of an exposition document (tests and
    the benchmark use this to assert on counter values)."""
    out: Dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            out[name] = float(value)
        except ValueError:
            continue
    return out
