"""Set-associative LRU cache simulation.

Stand-in for the paper's Xeon measurements (see DESIGN.md): the
case-study speedups come from locality (interchange/tiling) and SIMD,
so we replay the *actual transformed address streams* through a small
cache hierarchy and convert hit/miss counts into cycle estimates.

Addresses are in words (the mini-ISA's memory unit); a line holds
``line_words`` words.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level: ``sets x assoc`` lines of ``line_words`` words, LRU."""

    def __init__(self, size_words: int, line_words: int = 8, assoc: int = 4) -> None:
        if size_words % (line_words * assoc):
            raise ValueError("size must be a multiple of line_words * assoc")
        self.line_words = line_words
        self.assoc = assoc
        self.nsets = size_words // (line_words * assoc)
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.nsets)]
        self.stats = CacheStats()

    def access(self, addr: int) -> bool:
        """Touch one word; returns True on hit."""
        line = addr // self.line_words
        s = self._sets[line % self.nsets]
        self.stats.accesses += 1
        if line in s:
            s.move_to_end(line)
            return True
        self.stats.misses += 1
        s[line] = True
        if len(s) > self.assoc:
            s.popitem(last=False)
        return False

    def reset(self) -> None:
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()


@dataclass
class Hierarchy:
    """A two-level hierarchy with per-level hit latencies.

    Default geometry is a scaled-down Ivy Bridge (the paper's testbed):
    latencies 1 / 8 / 40 cycles for L1 / L2 / memory.
    """

    l1: Cache = field(default_factory=lambda: Cache(512, line_words=8, assoc=4))
    l2: Cache = field(default_factory=lambda: Cache(4096, line_words=8, assoc=8))
    lat_l1: int = 1
    lat_l2: int = 8
    lat_mem: int = 40

    def access(self, addr: int) -> int:
        """Touch one word; returns the access cost in cycles."""
        if self.l1.access(addr):
            return self.lat_l1
        if self.l2.access(addr):
            return self.lat_l2
        return self.lat_mem

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
