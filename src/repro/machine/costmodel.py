"""Speedup estimation for suggested transformations.

The paper reports measured GFlop/s before/after manually applying the
suggested transformations (Tables 3-4).  Lacking their Xeon, we
*replay the transformed iteration order's address stream* through the
cache simulator and combine:

* memory cycles from the cache hierarchy (captures interchange and
  tiling locality effects -- the stream is generated in the actual
  transformed order, not estimated);
* compute cycles: 1 per dynamic op, divided by the SIMD width for
  operations inside vectorizable (parallel, stride-friendly innermost)
  loops;
* a thread factor for outermost-parallel (or wavefront, when tiled)
  loops, with a sublinear efficiency to mimic memory-bound scaling.

Absolute numbers are not meaningful; ratios (the paper's "who wins and
by how much") are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from ..folding.folder import FoldedStatement
from ..poly.polyhedron import Polyhedron
from .cache import Hierarchy


@dataclass
class CostConfig:
    simd_width: int = 4
    threads: int = 8
    thread_efficiency: float = 0.75   # fraction of linear scaling
    alu_cycles: float = 1.0


@dataclass
class CostEstimate:
    mem_cycles: float
    alu_cycles: float
    thread_factor: float

    @property
    def total(self) -> float:
        return (self.mem_cycles + self.alu_cycles) / self.thread_factor


def iteration_points(
    domain: Polyhedron, order: Optional[Sequence[int]] = None
) -> Iterator[Tuple[int, ...]]:
    """Integer points of a domain in the loop order ``order`` (a
    permutation; identity when None).  Yields points in *original*
    coordinates, enumerated in the transformed lexicographic order."""
    if order is None:
        yield from domain.points()
        return
    permuted = domain.permute(list(order))
    inv = [0] * len(order)
    for new_pos, old_dim in enumerate(order):
        inv[old_dim] = new_pos
    for p in permuted.points():
        yield tuple(p[inv[j]] for j in range(len(order)))


def tiled_points(
    domain: Polyhedron, tile: int, order: Optional[Sequence[int]] = None
) -> Iterator[Tuple[int, ...]]:
    """Integer points enumerated tile-by-tile (rectangular tiling of
    the bounding box; points outside the domain are skipped).  Good
    enough to measure locality: the visit *order* is the tiled one."""
    d = domain.dim
    if d == 0:
        yield from domain.points()
        return
    bounds = []
    for j in range(d):
        lo, hi = domain.var_bounds(j)
        if lo is None or hi is None:
            raise ValueError("tiled_points needs a bounded domain")
        import math

        bounds.append((math.ceil(lo), math.floor(hi)))
    dims = list(order) if order is not None else list(range(d))
    tile_ranges = [
        range(bounds[j][0], bounds[j][1] + 1, tile) for j in dims
    ]
    for tile_origin in product(*tile_ranges):
        point_ranges = [
            range(t, min(t + tile, bounds[j][1] + 1))
            for t, j in zip(tile_origin, dims)
        ]
        for p in product(*point_ranges):
            full = [0] * d
            for j, v in zip(dims, p):
                full[j] = v
            if domain.contains(full):
                yield tuple(full)


def replay_cost(
    mem_stmts: Sequence[FoldedStatement],
    points: Iterable[Tuple[int, ...]],
    hierarchy: Optional[Hierarchy] = None,
    ops_per_point: float = 1.0,
    simd: bool = False,
    parallel: bool = False,
    config: Optional[CostConfig] = None,
) -> CostEstimate:
    """Replay one nest's memory accesses over an iteration sequence."""
    cfg = config or CostConfig()
    h = hierarchy or Hierarchy()
    h.reset()
    mem_cycles = 0.0
    n_points = 0
    fns = [
        fs.label_fn for fs in mem_stmts if fs.label_fn is not None
    ]
    for p in points:
        n_points += 1
        for fn in fns:
            addr = int(fn.exprs[0](p))
            mem_cycles += h.access(addr)
    alu = ops_per_point * n_points * cfg.alu_cycles
    if simd:
        alu /= cfg.simd_width
    thread_factor = (
        1.0 + (cfg.threads - 1) * cfg.thread_efficiency if parallel else 1.0
    )
    return CostEstimate(
        mem_cycles=mem_cycles, alu_cycles=alu, thread_factor=thread_factor
    )


def estimate_speedup(
    leaf_stmts: Sequence[FoldedStatement],
    domain: Polyhedron,
    ops_per_point: float,
    before: dict,
    after: dict,
    config: Optional[CostConfig] = None,
) -> Tuple[float, CostEstimate, CostEstimate]:
    """Estimated speedup of a transformation on one nest.

    ``before`` / ``after`` describe the iteration order and execution
    mode: keys ``order`` (permutation or None), ``tile`` (tile size or
    None), ``simd`` (bool), ``parallel`` (bool).
    """
    cfg = config or CostConfig()
    mem_stmts = [s for s in leaf_stmts if s.stmt.instr.is_mem]

    def run(desc: dict) -> CostEstimate:
        order = desc.get("order")
        tile = desc.get("tile")
        if tile:
            pts = tiled_points(domain, tile, order)
        else:
            pts = iteration_points(domain, order)
        return replay_cost(
            mem_stmts,
            pts,
            ops_per_point=ops_per_point,
            simd=desc.get("simd", False),
            parallel=desc.get("parallel", False),
            config=cfg,
        )

    c0 = run(before)
    c1 = run(after)
    return (c0.total / c1.total if c1.total else float("inf")), c0, c1
