"""Performance-estimation substrate: cache simulation + cost model
(stand-in for the paper's Xeon measurements; see DESIGN.md).
"""

from .cache import Cache, CacheStats, Hierarchy
from .costmodel import (
    CostConfig,
    CostEstimate,
    estimate_speedup,
    iteration_points,
    replay_cost,
    tiled_points,
)

__all__ = [
    "Cache",
    "CacheStats",
    "CostConfig",
    "CostEstimate",
    "Hierarchy",
    "estimate_speedup",
    "iteration_points",
    "replay_cost",
    "tiled_points",
]
