"""Codec for the folded polyhedral DDG (the paper's compact summary).

The :class:`~repro.folding.folder.FoldedDDG` is precisely the artifact
POLY-PROF exists to produce -- persisting it turns re-analysis of an
unchanged workload into a lookup.  Statements and dependences are
serialized in dict insertion order (declaration order during the
profiled run), so a decoded DDG iterates identically to the one the
folder built: reports, metrics, and dependence vectors derived from it
are byte-identical.

Static :class:`~repro.isa.instructions.Instr` objects are *not*
serialized: a statement references its instruction by uid, resolved
against the program at decode time.  The store's fingerprint covers
the whole program IR, so a cached artifact can never be decoded
against a program whose uids mean something else.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ddg.graph import DepKey, Statement, StmtKey
from ..isa.instructions import Instr
from ..isa.program import Program
from ..poly.codec import (
    decode_expr,
    decode_function,
    decode_imap,
    decode_iset,
    encode_expr,
    encode_function,
    encode_imap,
    encode_iset,
)
from .folder import FoldedDDG, FoldedDep, FoldedStatement


def _encode_statement(fs: FoldedStatement) -> dict:
    label_pieces = None
    if fs.label_pieces is not None:
        label_pieces = [
            [encode_iset(dom), encode_function(fn), cnt]
            for dom, fn, cnt in fs.label_pieces
        ]
    return {
        "uid": fs.stmt.key[0],
        "ctx_id": fs.stmt.key[1],
        "func": fs.stmt.func,
        "context": [list(elem) for elem in fs.stmt.context],
        "domain": encode_iset(fs.domain),
        "count": fs.count,
        "exact": fs.exact,
        "label_pieces": label_pieces,
        "had_label": fs.had_label,
        "is_scev": fs.is_scev,
    }


def _decode_statement(
    data: dict, instr_of: Dict[int, Instr]
) -> FoldedStatement:
    uid = int(data["uid"])
    key: StmtKey = (uid, int(data["ctx_id"]))
    instr = instr_of.get(uid)
    if instr is None:
        raise ValueError(f"statement uid {uid} not in program")
    stmt = Statement(
        key=key,
        instr=instr,
        func=data["func"],
        context=tuple(tuple(elem) for elem in data["context"]),
    )
    label_pieces = None
    if data["label_pieces"] is not None:
        label_pieces = [
            (decode_iset(dom), decode_function(fn), int(cnt))
            for dom, fn, cnt in data["label_pieces"]
        ]
    return FoldedStatement(
        stmt=stmt,
        domain=decode_iset(data["domain"]),
        count=int(data["count"]),
        exact=bool(data["exact"]),
        label_pieces=label_pieces,
        had_label=bool(data["had_label"]),
        is_scev=bool(data["is_scev"]),
    )


def _encode_dep(fd: FoldedDep) -> dict:
    return {
        "src": list(fd.key.src),
        "dst": list(fd.key.dst),
        "kind": fd.key.kind,
        "count": fd.count,
        "domain": encode_iset(fd.domain),
        "domain_exact": fd.domain_exact,
        "relation": (
            encode_imap(fd.relation) if fd.relation is not None else None
        ),
        "partial_src": (
            None
            if fd.partial_src is None
            else [
                None if e is None else encode_expr(e)
                for e in fd.partial_src
            ]
        ),
        "src_depth": fd.src_depth,
        "dst_depth": fd.dst_depth,
    }


def _decode_dep(data: dict) -> FoldedDep:
    partial: Optional[list] = None
    if data["partial_src"] is not None:
        partial = [
            None if e is None else decode_expr(e)
            for e in data["partial_src"]
        ]
    return FoldedDep(
        key=DepKey(
            src=tuple(data["src"]),
            dst=tuple(data["dst"]),
            kind=data["kind"],
        ),
        count=int(data["count"]),
        domain=decode_iset(data["domain"]),
        domain_exact=bool(data["domain_exact"]),
        relation=(
            decode_imap(data["relation"])
            if data["relation"] is not None
            else None
        ),
        partial_src=partial,
        src_depth=int(data["src_depth"]),
        dst_depth=int(data["dst_depth"]),
    )


def encode_folded_ddg(ddg: FoldedDDG) -> dict:
    """Serialize a folded DDG (insertion order preserved)."""
    return {
        "statements": [
            _encode_statement(fs) for fs in ddg.statements.values()
        ],
        "deps": [_encode_dep(fd) for fd in ddg.deps.values()],
    }


def decode_folded_ddg(data: dict, program: Program) -> FoldedDDG:
    """Rebuild a folded DDG, resolving instructions against ``program``."""
    instr_of: Dict[int, Instr] = {
        ins.uid: ins for _fn, _bb, ins in program.all_instrs()
    }
    statements: Dict[StmtKey, FoldedStatement] = {}
    for item in data["statements"]:
        fs = _decode_statement(item, instr_of)
        statements[fs.stmt.key] = fs
    deps: Dict[DepKey, FoldedDep] = {}
    for item in data["deps"]:
        fd = _decode_dep(item)
        deps[fd.key] = fd
    # is_scev flags are serialized verbatim (run_scev_recognition is
    # *not* re-run: the flags are part of the artifact's identity)
    return FoldedDDG(statements=statements, deps=deps)
