"""Compression statistics for the folded DDG.

The paper's scalability claim is quantitative: the raw DDG of a
seconds-long run has billions of vertices, while the folded polyhedral
program has a few hundred statements -- small enough for a polyhedral
scheduler ("our DDG folding and over-approximation techniques allow
going from programs with thousands of statements ... to only a few
hundreds").  This module measures that compression on our runs:
dynamic instances per folded object, piece counts, and the shrinkage
of the dependence representation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .folder import FoldedDDG


@dataclass
class CompressionStats:
    """How much the folding compressed one execution's DDG."""

    dynamic_instances: int          # DDG vertices (dynamic instructions)
    statements: int                 # folded statements
    statement_pieces: int           # domain polyhedra across statements
    exact_statements: int
    scev_statements: int

    dynamic_deps: int               # DDG edges (dynamic dependences)
    dep_relations: int              # folded dependence relations
    dep_pieces: int                 # relation polyhedra
    affine_relations: int

    @property
    def vertex_ratio(self) -> float:
        """Dynamic instructions per folded statement."""
        return self.dynamic_instances / self.statements if self.statements else 0.0

    @property
    def edge_ratio(self) -> float:
        """Dynamic dependences per folded relation."""
        return self.dynamic_deps / self.dep_relations if self.dep_relations else 0.0

    def summary(self) -> str:
        return (
            f"{self.dynamic_instances} dynamic instructions -> "
            f"{self.statements} statements "
            f"({self.vertex_ratio:.0f}x, {self.statement_pieces} pieces, "
            f"{self.scev_statements} SCEVs); "
            f"{self.dynamic_deps} dynamic deps -> "
            f"{self.dep_relations} relations ({self.edge_ratio:.0f}x)"
        )


def compression_stats(ddg: FoldedDDG) -> CompressionStats:
    """Measure the fold of one execution."""
    dyn_inst = sum(fs.count for fs in ddg.statements.values())
    pieces = sum(len(fs.domain.pieces) for fs in ddg.statements.values())
    exact = sum(1 for fs in ddg.statements.values() if fs.exact)
    scev = len(ddg.scev_statements())
    dyn_deps = sum(d.count for d in ddg.deps.values())
    dep_pieces = sum(
        len(d.relation.pieces) if d.relation is not None else 0
        for d in ddg.deps.values()
    )
    affine_rel = sum(1 for d in ddg.deps.values() if d.relation is not None)
    return CompressionStats(
        dynamic_instances=dyn_inst,
        statements=len(ddg.statements),
        statement_pieces=pieces,
        exact_statements=exact,
        scev_statements=scev,
        dynamic_deps=dyn_deps,
        dep_relations=len(ddg.deps),
        dep_pieces=dep_pieces,
        affine_relations=affine_rel,
    )


def scheduler_statement_count(ddg: FoldedDDG) -> int:
    """Statements the polyhedral backend actually schedules: the folded
    statements minus the SCEV chains it discards."""
    return len(ddg.statements) - len(ddg.scev_statements())
