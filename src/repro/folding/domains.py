"""Recursive trapezoidal folding of iteration-domain point streams.

A statement's dynamic instances arrive as integer points in execution
(lexicographic) order.  The :class:`DomainFolder` keeps only a nested
prefix structure -- for every distinct outer-coordinate prefix, the
(min, max, count) summary of the innermost dimension -- and, at
``fold()`` time, reconstructs a union of affinely-bounded polyhedra:

1. each innermost run must be *contiguous* (count == max-min+1);
2. the lower and upper innermost bounds must be exact affine functions
   of the prefix (fitted with :mod:`repro.folding.fitter` machinery);
3. the set of prefixes must itself fold, recursively.

Triangular loops (``j <= i``) fold exactly; domains with modulo holes
or data-dependent bounds fall back to a *bounding-trapezoid
over-approximation* flagged inexact -- the paper's treatment of
non-affine program parts (section 5, "Over-approximations"; also why
heartwall/hotspot/lud report low %Aff in Table 5: lattice-shaped
domains are not recognized as fully affine).

If affine bounds fail globally, the folder retries after *splitting*
along the outermost dimension into at most ``max_pieces`` segments,
which captures piecewise-affine shapes (e.g. a loop peeled by an inner
conditional).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..poly.affine import AffineExpr, fit_affine
from ..poly.polyhedron import Polyhedron
from ..poly.pset import ISet, Space


class DomainFolder:
    """Streaming fold of one statement's iteration-domain points."""

    __slots__ = ("dim", "count", "_tree", "_mins", "_maxs")

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self.count = 0
        # nested dicts keyed by coords[0..dim-2]; leaves are
        # [min, max, count] of coords[dim-1]
        self._tree: Dict = {}
        self._mins = [None] * dim
        self._maxs = [None] * dim

    def add(self, coords: Sequence[int]) -> None:
        if len(coords) != self.dim:
            raise ValueError("coordinate arity mismatch")
        self.count += 1
        for i, c in enumerate(coords):
            if self._mins[i] is None or c < self._mins[i]:
                self._mins[i] = c
            if self._maxs[i] is None or c > self._maxs[i]:
                self._maxs[i] = c
        if self.dim == 0:
            return
        node = self._tree
        for c in coords[:-1]:
            nxt = node.get(c)
            if nxt is None:
                nxt = {}
                node[c] = nxt
            node = nxt
        last = coords[-1]
        leaf = node.get("__leaf__")
        if leaf is None:
            node["__leaf__"] = [last, last, 1]
        else:
            if last < leaf[0]:
                leaf[0] = last
            if last > leaf[1]:
                leaf[1] = last
            leaf[2] += 1

    # -- folding ----------------------------------------------------------------

    def fold(self, max_pieces: int = 6) -> Tuple[ISet, bool]:
        """Produce (domain, exact).  ``domain`` is always a superset of
        the observed points; ``exact`` means it is *equal* to them."""
        space = Space([f"c{i}" for i in range(self.dim)])
        if self.count == 0:
            return ISet.empty(space), True
        if self.dim == 0:
            return ISet(space, [Polyhedron.universe(0)]), True
        rows = list(self._rows())
        piece = self._fold_rows(rows)
        if piece is not None:
            return ISet(space, [piece]), True
        # piecewise retry: split along the outermost dimension
        pieces = self._fold_split(rows, max_pieces)
        if pieces is not None:
            return ISet(space, pieces), True
        return self._bounding_box(space), False

    def _rows(self):
        """Yield (prefix, lo, hi, cnt) rows in lexicographic order."""

        def rec(node, prefix, depth):
            if depth == self.dim - 1:
                leaf = node["__leaf__"] if "__leaf__" in node else None
                if leaf is not None:
                    yield prefix, leaf[0], leaf[1], leaf[2]
                return
            for c in sorted(k for k in node if k != "__leaf__"):
                yield from rec(node[c], prefix + (c,), depth + 1)

        if self.dim == 1:
            leaf = self._tree.get("__leaf__")
            if leaf is not None:
                yield (), leaf[0], leaf[1], leaf[2]
        else:
            yield from rec(self._tree, (), 0)

    def _fold_rows(self, rows) -> Optional[Polyhedron]:
        """Fold a set of rows into a single exact trapezoid, or None."""
        d = self.dim
        # 1. contiguity of every innermost run
        for prefix, lo, hi, cnt in rows:
            if cnt != hi - lo + 1:
                return None  # holes (or duplicate points): not exact
        prefixes = [r[0] for r in rows]
        los = [r[1] for r in rows]
        his = [r[2] for r in rows]
        # 2. affine innermost bounds over the prefix coordinates
        lo_fn = fit_affine(prefixes, los) if d > 1 else AffineExpr((), los[0])
        hi_fn = fit_affine(prefixes, his) if d > 1 else AffineExpr((), his[0])
        if lo_fn is None or hi_fn is None:
            return None
        if not (lo_fn.is_integral() and hi_fn.is_integral()):
            return None
        # 3. prefix set folds exactly (recursively)
        if d > 1:
            sub = DomainFolder(d - 1)
            for p in prefixes:
                sub.add(p)
            pset, exact = sub.fold(max_pieces=1)
            if not exact or len(pset.pieces) != 1:
                return None
            prefix_poly = pset.pieces[0]
        else:
            prefix_poly = Polyhedron.universe(0)
        # assemble: lift prefix constraints to d dims, add bounds on c_{d-1}
        eqs = [r[: d - 1] + (0,) + r[d - 1:] for r in prefix_poly.eqs]
        ineqs = [r[: d - 1] + (0,) + r[d - 1:] for r in prefix_poly.ineqs]
        # c_{d-1} - lo(prefix) >= 0
        lo_row = tuple(-c for c in lo_fn.coeffs) + (1, -lo_fn.const)
        # hi(prefix) - c_{d-1} >= 0
        hi_row = tuple(hi_fn.coeffs) + (-1, hi_fn.const)
        return Polyhedron(d, eqs=eqs, ineqs=ineqs + [lo_row, hi_row])

    def _fold_split(self, rows, max_pieces: int) -> Optional[List[Polyhedron]]:
        """Greedy segmentation along the outermost coordinate."""
        if self.dim < 2 or max_pieces <= 1:
            return None
        # group rows by outermost coordinate value
        groups: Dict[int, List] = {}
        for r in rows:
            groups.setdefault(r[0][0], []).append(r)
        keys = sorted(groups)
        pieces: List[Polyhedron] = []
        seg: List = []
        seg_keys: List[int] = []

        def try_fold(seg_rows) -> Optional[Polyhedron]:
            return self._fold_rows(seg_rows)

        i = 0
        current: List = []
        start_key = None
        while i < len(keys):
            candidate = current + groups[keys[i]]
            folded = try_fold(candidate)
            if folded is not None:
                current = candidate
                if start_key is None:
                    start_key = keys[i]
                i += 1
                continue
            if not current:
                return None  # a single outer value does not fold
            pieces.append(try_fold(current))
            if len(pieces) >= max_pieces:
                return None
            current = []
            start_key = None
        if current:
            folded = try_fold(current)
            if folded is None:
                return None
            pieces.append(folded)
        if len(pieces) > max_pieces:
            return None
        return pieces

    def _bounding_box(self, space: Space) -> ISet:
        bounds = [(self._mins[i], self._maxs[i]) for i in range(self.dim)]
        return ISet(space, [Polyhedron.box(bounds)])


def fold_under(folder: "DomainFolder", max_pieces: int = 6) -> "ISet":
    """Under-approximation of a folded domain (paper section 10's
    future-work item, implemented here).

    Where :meth:`DomainFolder.fold` over-approximates non-trapezoidal
    point sets (sound for *disproving* transformations), an
    under-approximation -- a polyhedral subset of the observed points
    -- is what one needs to *assert* that a transformation pays off on
    at least part of the domain.  We build it from the rows that do
    fold: contiguous innermost runs whose bounds admit a piecewise
    affine fit, dropping (never widening) everything else.
    """
    space = Space([f"c{i}" for i in range(folder.dim)])
    if folder.count == 0 or folder.dim == 0:
        dom, exact = folder.fold(max_pieces)
        return dom if exact else ISet.empty(space)
    rows = [r for r in folder._rows() if r[3] == r[2] - r[1] + 1]
    if not rows:
        return ISet.empty(space)
    # greedy segmentation (as in _fold_split) but skipping bad segments
    groups: Dict[Tuple[int, ...], List] = {}
    for r in rows:
        groups.setdefault(r[0][:1] if folder.dim > 1 else (), []).append(r)
    pieces: List[Polyhedron] = []
    current: List = []
    for key in sorted(groups):
        candidate = current + groups[key]
        folded = folder._fold_rows(candidate)
        if folded is not None:
            current = candidate
            continue
        if current:
            piece = folder._fold_rows(current)
            if piece is not None and len(pieces) < max_pieces:
                pieces.append(piece)
        # try to start fresh with this group; drop it if even alone
        # it does not fold (under-approximation may discard points)
        current = groups[key] if folder._fold_rows(groups[key]) else []
    if current:
        piece = folder._fold_rows(current)
        if piece is not None and len(pieces) < max_pieces:
            pieces.append(piece)
    return ISet(space, pieces)
