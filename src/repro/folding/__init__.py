"""Compact polyhedral DDG: streaming folding of statement and
dependence point streams (paper section 5 / tech report RR-9244).
"""

from .domains import DomainFolder, fold_under
from .fastpath import (
    FastDomainFolder,
    FastFoldingSink,
    FastPiecewiseVectorFolder,
    FastVectorFitter,
)
from .fitter import IncrementalAffineFitter, VectorAffineFitter
from .folder import (
    FoldedDDG,
    FoldedDep,
    FoldedStatement,
    FoldingSink,
    SCEV_OPCODES,
    canonical_ddg,
    dep_sort_key,
)
from .piecewise import PiecewiseVectorFolder
from .stats import CompressionStats, compression_stats, scheduler_statement_count

__all__ = [
    "CompressionStats",
    "DomainFolder",
    "FastDomainFolder",
    "FastFoldingSink",
    "FastPiecewiseVectorFolder",
    "FastVectorFitter",
    "fold_under",
    "FoldedDDG",
    "FoldedDep",
    "FoldedStatement",
    "FoldingSink",
    "IncrementalAffineFitter",
    "PiecewiseVectorFolder",
    "SCEV_OPCODES",
    "VectorAffineFitter",
    "canonical_ddg",
    "compression_stats",
    "dep_sort_key",
    "scheduler_statement_count",
]
