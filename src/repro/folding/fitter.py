"""Incremental exact affine fitting with bounded memory.

The folding stage must decide, for streams of (point, value) pairs
arriving one by one, whether the values are an exact affine function
of the point coordinates -- without storing the stream.  The classic
trick: an affine function on ``Q^d`` is determined by its values on an
affinely independent set, so it suffices to keep at most ``d + 1``
support points.

Invariant maintained by :class:`IncrementalAffineFitter`: the current
expression (if any) matches *every* point seen so far.

* a new point consistent with the expression is either inside the
  affine span of the support (nothing to do) or extends it (add to the
  support; the expression is still a valid interpolant on the larger
  span);
* an inconsistent point inside the span is a contradiction: no affine
  function fits, fail permanently;
* an inconsistent point outside the span triggers a refit on
  support + point; the refit agrees with the old expression on the old
  span (both interpolate the support), so all previously verified
  points remain matched.

The affine-span membership test is the hot path (every consistent
point hits it until the support spans the whole space), so it is
implemented as an *incremental integer echelon basis* of difference
vectors: one O(d^2) integer reduction per query, no rational
arithmetic.
"""

from __future__ import annotations

from math import gcd
from typing import List, Optional, Sequence, Tuple

from ..poly.affine import AffineExpr, fit_affine


def _vec_gcd(v: Sequence[int]) -> int:
    g = 0
    for x in v:
        g = gcd(g, abs(x))
        if g == 1:
            return 1
    return g


class _IntSpan:
    """Incremental integer row space: echelon basis with pivots."""

    __slots__ = ("dim", "rows", "pivots")

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self.rows: List[List[int]] = []
        self.pivots: List[int] = []

    @property
    def rank(self) -> int:
        return len(self.rows)

    def reduce(self, vec: Sequence[int]) -> List[int]:
        v = list(vec)
        for row, piv in zip(self.rows, self.pivots):
            if v[piv]:
                a, b = row[piv], v[piv]
                v = [a * x - b * y for x, y in zip(v, row)]
                g = _vec_gcd(v)
                if g > 1:
                    v = [x // g for x in v]
        return v

    def contains(self, vec: Sequence[int]) -> bool:
        return not any(self.reduce(vec))

    def add(self, vec: Sequence[int]) -> bool:
        """Insert if independent; returns True when rank grew."""
        v = self.reduce(vec)
        piv = next((j for j, x in enumerate(v) if x), None)
        if piv is None:
            return False
        self.rows.append(v)
        self.pivots.append(piv)
        return True


class IncrementalAffineFitter:
    """Streaming exact affine fit of scalar integer labels."""

    __slots__ = (
        "dim", "_support", "_values", "_span", "_origin",
        "_coeffs", "_const", "_den", "expr", "failed", "count",
    )

    def __init__(self, dim: int) -> None:
        self.dim = dim
        self._support: List[Tuple[int, ...]] = []
        self._values: List[int] = []
        self._span = _IntSpan(dim)
        self._origin: Optional[Tuple[int, ...]] = None
        self._coeffs: Optional[Tuple[int, ...]] = None
        self._const = 0
        self._den = 1
        self.expr: Optional[AffineExpr] = None
        self.failed = False
        self.count = 0

    # -- span bookkeeping -----------------------------------------------------

    def _in_span(self, point: Tuple[int, ...]) -> bool:
        if self._origin is None:
            return False
        if self._span.rank == self.dim:
            return True
        diff = [b - a for a, b in zip(self._origin, point)]
        return self._span.contains(diff)

    def _extend_span(self, point: Tuple[int, ...]) -> None:
        if self._origin is None:
            self._origin = point
            return
        diff = [b - a for a, b in zip(self._origin, point)]
        self._span.add(diff)

    # -- fitting ----------------------------------------------------------------

    def add(self, point: Sequence[int], value: int) -> None:
        self.count += 1
        if self.failed:
            return
        point = tuple(point)
        value = int(value)
        if self.expr is not None:
            # fast exact evaluation: (coeffs . p + const) == value * den
            num = self._const
            for c, x in zip(self._coeffs, point):
                num += c * x
            if num == value * self._den:
                if not self._in_span(point):
                    self._support.append(point)
                    self._values.append(value)
                    self._extend_span(point)
                return
            if self._in_span(point):
                self._fail()
                return
            self._support.append(point)
            self._values.append(value)
            self._extend_span(point)
            self._refit()
            return
        # first points: fit eagerly (underdetermined fits are verified
        # interpolants, refined as the span grows)
        self._support.append(point)
        self._values.append(value)
        self._extend_span(point)
        self._refit()

    def _refit(self) -> None:
        expr = fit_affine(self._support, self._values)
        if expr is None:
            self._fail()
        else:
            self.expr = expr
            self._coeffs = expr.coeffs
            self._const = expr.const
            self._den = expr.den

    def _fail(self) -> None:
        self.failed = True
        self.expr = None
        self._coeffs = None
        self._support = []
        self._values = []

    def would_accept(self, point: Sequence[int], value: int) -> bool:
        """Would ``add`` keep this fitter alive?  (No mutation.)

        False exactly when the point lies in the affine span of the
        support but contradicts the fitted expression.
        """
        if self.failed:
            return False
        if self.expr is None:
            return True
        point = tuple(point)
        num = self._const
        for c, x in zip(self._coeffs, point):
            num += c * x
        if num == int(value) * self._den:
            return True
        return not self._in_span(point)

    def result(self) -> Optional[AffineExpr]:
        """The exact affine expression, if the whole stream fit.

        Streams shorter than dim+1 points still return the (verified)
        interpolant through what was seen -- fitting is attempted
        lazily here.
        """
        if self.failed or self.count == 0:
            return None
        if self.expr is None:
            self._refit()
            if self.failed:
                return None
        return self.expr


class VectorAffineFitter:
    """Streaming fit of vector labels: one scalar fitter per component."""

    __slots__ = ("dim", "out_dim", "fitters", "count", "failed")

    def __init__(self, dim: int, out_dim: int) -> None:
        self.dim = dim
        self.out_dim = out_dim
        self.fitters = [IncrementalAffineFitter(dim) for _ in range(out_dim)]
        self.count = 0
        self.failed = False

    def add(self, point: Sequence[int], values: Sequence[int]) -> None:
        self.count += 1
        if len(values) != self.out_dim:
            self.failed = True
            return
        for f, v in zip(self.fitters, values):
            f.add(point, v)

    def would_accept(self, point: Sequence[int], values: Sequence[int]) -> bool:
        if self.failed or len(values) != self.out_dim:
            return False
        return all(
            f.would_accept(point, v) for f, v in zip(self.fitters, values)
        )

    def result(self) -> Optional[List[AffineExpr]]:
        if self.failed or self.count == 0:
            return None
        out = []
        for f in self.fitters:
            e = f.result()
            if e is None:
                return None
            out.append(e)
        return out
