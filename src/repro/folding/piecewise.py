"""Piecewise-affine label folding.

The paper's folding produces, per statement/dependence, "a union of
polyhedra ... and for each polyhedron P an affine function A" -- the
label function is *piecewise*: boundary-clamped accesses (srad's
``iN[i] = max(i-1, 0)`` index arrays), double-buffered pointer swaps,
and peeled iterations all need more than one affine piece.

:class:`PiecewiseVectorFolder` maintains up to ``max_pieces`` pieces,
each a :class:`~repro.folding.fitter.VectorAffineFitter` plus its own
:class:`~repro.folding.domains.DomainFolder`.  Every incoming point is
assigned to the first piece that stays consistent (the fitter
invariant guarantees any accepting piece remains an exact interpolant
of everything it absorbed); a point no piece accepts opens a new piece
until the budget is exhausted, after which the stream is marked
non-affine -- the paper's over-approximation switch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..poly.affine import AffineFunction
from ..poly.pset import ISet
from .domains import DomainFolder
from .fitter import VectorAffineFitter


class PiecewiseVectorFolder:
    """Streaming piecewise-affine fit of vector labels with domains."""

    __slots__ = ("dim", "out_dim", "max_pieces", "pieces", "failed", "count")

    def __init__(self, dim: int, out_dim: int, max_pieces: int = 6) -> None:
        self.dim = dim
        self.out_dim = out_dim
        self.max_pieces = max_pieces
        self.pieces: List[Tuple[VectorAffineFitter, DomainFolder]] = []
        self.failed = False
        self.count = 0

    def add(self, point: Sequence[int], values: Sequence[int]) -> None:
        self.count += 1
        if self.failed:
            return
        for fitter, dom in self.pieces:
            if fitter.would_accept(point, values):
                fitter.add(point, values)
                dom.add(point)
                if fitter.failed:  # pragma: no cover - defensive
                    self.failed = True
                return
        if len(self.pieces) >= self.max_pieces:
            self.failed = True
            self.pieces = []
            return
        fitter = VectorAffineFitter(self.dim, self.out_dim)
        dom = DomainFolder(self.dim)
        fitter.add(point, values)
        dom.add(point)
        self.pieces.append((fitter, dom))

    def result(
        self, max_pieces: Optional[int] = None
    ) -> Optional[List[Tuple[ISet, AffineFunction, int]]]:
        """The folded pieces: (domain, function, point count) triples.

        Piece domains are folded independently (over-approximated when
        their point sets are not trapezoidal, which is harmless: the
        *assignment* of points to functions was exact).  Returns None
        when the stream exceeded the piece budget or a fit failed.
        """
        if self.failed or self.count == 0:
            return None
        out = []
        budget = max_pieces if max_pieces is not None else self.max_pieces
        for fitter, dom in self.pieces:
            exprs = fitter.result()
            if exprs is None:
                return None
            domain, _exact = dom.fold(budget)
            out.append((domain, AffineFunction(exprs), dom.count))
        return out
