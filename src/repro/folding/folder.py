"""The folding sink: compact polyhedral DDG construction (paper §5).

Implements :class:`~repro.ddg.graph.DDGSink` by folding each statement
and dependence stream on the fly:

* statement streams fold into an iteration-domain
  :class:`~repro.poly.pset.ISet` plus (when it exists) an exact affine
  *label function* -- the access function of a memory instruction or
  the scalar-evolution expression of an integer instruction;
* dependence streams fold into an :class:`~repro.poly.pmap.IMap` from
  consumer coordinates to producer coordinates (the shape of the
  paper's Table 2).

After :meth:`finalize`, the :class:`FoldedDDG` additionally runs SCEV
recognition (paper §5, "SCEV recognition"): integer-arithmetic
statements whose value label folded to an affine function of their
iterators are induction/address computations; they and every
dependence touching them are dropped from the transformation-relevant
view, since such chains would otherwise serialize every loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ddg.graph import DDGSink, DepKey, Statement, StmtKey
from ..poly.affine import AffineExpr, AffineFunction
from ..poly.pmap import IMap
from ..poly.pset import ISet, Space
from .domains import DomainFolder
from .fitter import VectorAffineFitter
from .piecewise import PiecewiseVectorFolder

#: opcodes whose folded-affine values make them SCEV (removable
#: induction-variable / address arithmetic); loads are never SCEVs --
#: they are accesses to be reported, even when their values happen to
#: be affine.
SCEV_OPCODES = frozenset(
    "add sub mul div mod and or xor shl shr const mov "
    "cmplt cmple cmpgt cmpge cmpeq cmpne ftoi".split()
)


@dataclass
class FoldedStatement:
    """One statement of the compact polyhedral DDG."""

    stmt: Statement
    domain: ISet
    count: int
    exact: bool
    #: piecewise label function: (domain, function, point count) per
    #: piece; None when the stream carried no labels or failed to fold
    label_pieces: Optional[List[Tuple[ISet, AffineFunction, int]]]
    #: the stream carried labels (an address or integer value); when
    #: True and label_pieces is None, the labels exceeded the piece
    #: budget (non-affine)
    had_label: bool = False
    is_scev: bool = False

    @property
    def label_fn(self) -> Optional[AffineFunction]:
        """The dominant (most-points) label piece's function, or the
        single function when there is exactly one piece.  Stride and
        cost analyses use this; exact multi-piece reasoning uses
        ``label_pieces`` directly."""
        if not self.label_pieces:
            return None
        return max(self.label_pieces, key=lambda t: t[2])[1]

    @property
    def label_affine(self) -> bool:
        return self.label_pieces is not None

    @property
    def key(self) -> StmtKey:
        return self.stmt.key

    @property
    def depth(self) -> int:
        return self.stmt.depth

    def iterators(self) -> Tuple[str, ...]:
        return self.domain.space.names


@dataclass
class FoldedDep:
    """One dependence relation of the compact polyhedral DDG."""

    key: DepKey
    count: int
    domain: ISet                      # over consumer coordinates
    domain_exact: bool
    relation: Optional[IMap]          # consumer -> producer, if affine
    #: per producer coordinate, the exact affine expression when that
    #: *component* folded globally even though the full vector did not
    #: (None entries are unknown); always available when relation is
    partial_src: Optional[List[Optional[AffineExpr]]]
    src_depth: int
    dst_depth: int

    @property
    def exact(self) -> bool:
        return self.relation is not None and self.domain_exact


class _StmtStream:
    __slots__ = ("domain", "labels", "label_arity")

    def __init__(self, dim: int) -> None:
        self.domain = DomainFolder(dim)
        self.labels: Optional[PiecewiseVectorFolder] = None
        self.label_arity: Optional[int] = None


class _DepStream:
    __slots__ = ("domain", "labels", "partial", "src_dim")

    def __init__(self, dst_dim: int, src_dim: int, max_pieces: int) -> None:
        self.domain = DomainFolder(dst_dim)
        self.labels = PiecewiseVectorFolder(dst_dim, src_dim, max_pieces)
        # per-component global fitters: even when the full producer
        # vector is not (piecewise-)affine, individual components often
        # are -- e.g. a data-dependent gather whose *time* coordinate
        # is exactly "previous iteration" (bfs levels).  The paper fits
        # each label component to its own affine function, so partial
        # information is first-class.
        self.partial = VectorAffineFitter(dst_dim, src_dim)
        self.src_dim = src_dim

    def partial_results(self) -> Optional[List[Optional[AffineExpr]]]:
        """Per-component affine expressions of the global fit (None
        entries did not fold); None when nothing folded at all."""
        if self.partial.failed or not self.partial.count:
            return None
        out = [f.result() for f in self.partial.fitters]
        if all(e is None for e in out):
            return None
        return out


class FoldingSink(DDGSink):
    """Streaming folder; call :meth:`finalize` after the run.

    ``clamp`` implements the paper's Fig. 1 "relevance scalability
    clamping" knob: once a stream has absorbed that many points, the
    folder stops updating it and the result is flagged inexact
    (over-approximated by what was seen plus its bounding structure).
    This bounds the cost of profiling pathological streams; ``None``
    (the default) disables it.
    """

    def __init__(
        self, max_pieces: int = 6, clamp: Optional[int] = None
    ) -> None:
        self.max_pieces = max_pieces
        self.clamp = clamp
        self.statements: Dict[StmtKey, Statement] = {}
        self._stmt_streams: Dict[StmtKey, _StmtStream] = {}
        self._dep_streams: Dict[DepKey, _DepStream] = {}
        self._clamped_stmts: Set[StmtKey] = set()
        self._clamped_deps: Set[DepKey] = set()
        self.clamped_points = 0

    # -- DDGSink interface --------------------------------------------------------

    def declare_statement(self, stmt: Statement) -> None:
        if stmt.key not in self.statements:
            self.statements[stmt.key] = stmt
            self._stmt_streams[stmt.key] = _StmtStream(stmt.depth)

    def instr_point(self, key, coords, label):
        s = self._stmt_streams[key]
        if self.clamp is not None and s.domain.count >= self.clamp:
            self._clamped_stmts.add(key)
            s.domain.count += 1  # keep the dynamic tally honest
            self.clamped_points += 1
            return
        s.domain.add(coords)
        if label:
            if s.labels is None:
                s.label_arity = len(label)
                s.labels = PiecewiseVectorFolder(
                    len(coords), len(label), self.max_pieces
                )
            s.labels.add(coords, label)

    def dep_point(self, dep, dst_coords, src_coords):
        d = self._dep_streams.get(dep)
        if d is None:
            d = _DepStream(len(dst_coords), len(src_coords), self.max_pieces)
            self._dep_streams[dep] = d
        if self.clamp is not None and d.domain.count >= self.clamp:
            self._clamped_deps.add(dep)
            d.domain.count += 1
            self.clamped_points += 1
            return
        d.domain.add(dst_coords)
        d.labels.add(dst_coords, src_coords)
        d.partial.add(dst_coords, src_coords)

    # -- finalization ----------------------------------------------------------------

    def finalize(self, tracer=None) -> "FoldedDDG":
        """Fold every accumulated stream into the compact DDG.

        ``tracer`` (a :class:`repro.obs.Tracer`) gets one span per
        folding pass -- statement domains, dependence relations, SCEV
        recognition -- so a traced analysis can see which pass eats
        the stage-2 tail; ``None`` is a free no-op."""
        from ..obs import NULL_TRACER

        tracer = tracer if tracer is not None else NULL_TRACER
        with tracer.span("fold.statements", cat="fold") as sp_stmts:
            stmts = self._finalize_statements()
        sp_stmts.count("statements", len(stmts))
        with tracer.span("fold.deps", cat="fold") as sp_deps:
            deps = self._finalize_deps()
        sp_deps.count("deps", len(deps))
        ddg = canonical_ddg(stmts, deps)
        with tracer.span("fold.scev", cat="fold"):
            ddg.run_scev_recognition()
        return ddg

    def _finalize_statements(self) -> Dict[StmtKey, "FoldedStatement"]:
        stmts: Dict[StmtKey, FoldedStatement] = {}
        for key, stream in self._stmt_streams.items():
            stmt = self.statements[key]
            domain, exact = stream.domain.fold(self.max_pieces)
            if key in self._clamped_stmts:
                exact = False  # unseen points: only an approximation
            label_pieces = (
                stream.labels.result() if stream.labels is not None else None
            )
            stmts[key] = FoldedStatement(
                stmt=stmt,
                domain=domain,
                count=stream.domain.count,
                exact=exact,
                label_pieces=label_pieces,
                had_label=stream.labels is not None,
            )
        return stmts

    def _finalize_deps(self) -> Dict[DepKey, "FoldedDep"]:
        deps: Dict[DepKey, FoldedDep] = {}
        for dep, stream in self._dep_streams.items():
            domain, dexact = stream.domain.fold(self.max_pieces)
            if dep in self._clamped_deps:
                # unseen dependence points: dropping the relation keeps
                # every downstream legality question conservative ('*')
                dexact = False
                stream.labels.failed = True
                stream.partial.failed = True
            pieces = stream.labels.result()
            partial = stream.partial_results()
            relation = None
            if pieces is not None:
                out_space = Space([f"p{i}" for i in range(stream.src_dim)])
                map_pieces = []
                for piece_dom, fn, _cnt in pieces:
                    for poly in piece_dom.pieces:
                        map_pieces.append((poly, fn))
                relation = IMap(domain.space, out_space, map_pieces)
            deps[dep] = FoldedDep(
                key=dep,
                count=stream.domain.count,
                domain=domain,
                domain_exact=dexact,
                relation=relation,
                partial_src=partial,
                src_depth=stream.src_dim,
                dst_depth=stream.domain.dim,
            )
        return deps


def dep_sort_key(dep: DepKey):
    """Canonical ordering of dependence keys: (src, dst, kind)."""
    return (dep.src, dep.dst, dep.kind)


def canonical_ddg(
    statements: Dict[StmtKey, "FoldedStatement"],
    deps: Dict[DepKey, "FoldedDep"],
) -> "FoldedDDG":
    """Rebuild the DDG dicts in canonical order: statements by
    ``(uid, ctx)`` key, dependences by ``(src, dst, kind)``.

    The codec serializes dicts in insertion order, so every path that
    materializes a :class:`FoldedDDG` -- the serial fold, the sharded
    merge, the incremental stitch -- normalizes here.  That makes the
    artifact bytes a function of the folded *set*, independent of the
    first-occurrence order of streams, which is exactly what lets a
    frontier-only re-analysis (which never observes the skipped
    regions' occurrence order) reproduce a cold run byte-for-byte.
    """
    return FoldedDDG(
        statements={k: statements[k] for k in sorted(statements)},
        deps={k: deps[k] for k in sorted(deps, key=dep_sort_key)},
    )


@dataclass
class FoldedDDG:
    """The compact polyhedral DDG."""

    statements: Dict[StmtKey, FoldedStatement]
    deps: Dict[DepKey, FoldedDep]

    # -- SCEV recognition ------------------------------------------------------------

    def run_scev_recognition(self) -> None:
        # single-piece affine values only: a scalar evolution is one
        # affine function of the canonical induction variables
        for fs in self.statements.values():
            if (
                fs.stmt.instr.opcode in SCEV_OPCODES
                and fs.label_pieces is not None
                and len(fs.label_pieces) == 1
            ):
                fs.is_scev = True

    def scev_statements(self) -> Set[StmtKey]:
        return {k for k, fs in self.statements.items() if fs.is_scev}

    # -- views -----------------------------------------------------------------------

    def transform_deps(self) -> Iterable[FoldedDep]:
        """Dependences relevant for rescheduling: everything except
        edges into/out of SCEV statements (their chains are recomputed
        by any reasonable code generator and must not constrain the
        schedule)."""
        scev = self.scev_statements()
        for dep in self.deps.values():
            if dep.key.src in scev or dep.key.dst in scev:
                continue
            yield dep

    def stmt_count(self) -> int:
        return len(self.statements)

    def dyn_ops(self) -> int:
        return sum(fs.count for fs in self.statements.values())

    def stmt_is_affine(self, key: StmtKey, bad_deps: Set[StmtKey]) -> bool:
        """Is one statement fully affine: exact domain, exact incident
        dependences, and (when it carries a label -- an address or an
        integer value) an exactly folded affine label?"""
        fs = self.statements[key]
        if fs.is_scev:
            return True
        if not fs.exact or key in bad_deps:
            return False
        if fs.had_label and not fs.label_affine:
            # an access or integer value stream that exceeded the
            # piecewise-affine budget (e.g. data-dependent addresses)
            return False
        return True

    def affine_ops(self) -> int:
        """Dynamic operations inside fully affine *nests* -- the
        paper's %Aff numerator.

        Affineness is contagious at the innermost-nest granularity: a
        single modulo-linearized access or data-dependent domain makes
        its whole nest non-affine (the paper's heartwall/hotspot/lud
        observation that hand-linearized code folds poorly), even
        though sibling nests stay affine.
        """
        # a *flow* dependence whose relation did not fold (no
        # piecewise-affine representation) poisons its endpoints; mere
        # domain over-approximation does not (the relation is still
        # exact), and storage (anti/output) dependences never do --
        # they are removable by expansion/privatization (the paper's
        # own case study array-expands the ``sum`` scalar) and are
        # multi-valued by nature (one write, many readers)
        bad_deps: Set[StmtKey] = set()
        for dep in self.transform_deps():
            if dep.relation is None and dep.key.kind in ("flow", "reg"):
                # only the *consumer* side is poisoned: the producer's
                # region stays affine even when some far-away consumer
                # reads it at data-dependent points (e.g. affine init
                # sweeps feeding an irregular kernel)
                bad_deps.add(dep.key.dst)

        def leaf_of(fs: FoldedStatement):
            ctx = fs.stmt.context
            return tuple(ctx[j] for j in range(len(ctx) - 1))

        bad_leaves = set()
        for key, fs in self.statements.items():
            if not self.stmt_is_affine(key, bad_deps):
                bad_leaves.add(leaf_of(fs))
        total = 0
        for key, fs in self.statements.items():
            if leaf_of(fs) in bad_leaves:
                continue
            if fs.is_scev or self.stmt_is_affine(key, bad_deps):
                total += fs.count
        return total

    def statements_of_uid(self, uid: int) -> List[FoldedStatement]:
        return [fs for (u, _), fs in self.statements.items() if u == uid]

    def deps_between_uids(
        self, src_uid: int, dst_uid: int, kind: Optional[str] = None
    ) -> List[FoldedDep]:
        out = []
        for dep in self.deps.values():
            if dep.key.src[0] == src_uid and dep.key.dst[0] == dst_uid:
                if kind is None or dep.key.kind == kind:
                    out.append(dep)
        return out
