"""Fast folding backend: the hot-path implementation of the sink.

Folding dominates Instrumentation II + fold wall time (the affine
fitters and domain folders absorb one call per dynamic point), so the
fast execution engine pairs the batched builder with this optimized
backend.  The reference classes in :mod:`repro.folding.fitter`,
:mod:`repro.folding.piecewise`, and :mod:`repro.folding.folder` stay
untouched as the executable specification; everything here is verified
bit-identical against them by the engine-equivalence tests.

The optimizations, each argued exact:

* **Shared affine span** (:class:`FastVectorFitter`).  In the
  reference, a vector fitter keeps one scalar fitter per label
  component, each with its own support set and integer echelon span --
  but support evolution is *value-independent*: a live component
  appends the point if and only if the point lies outside the affine
  span of the support, and fails only on an in-span contradiction.
  All live components therefore share one support list and one span
  basis, turning ``out_dim`` span reductions per point into one.

* **Fused accept-and-add** (:meth:`FastVectorFitter.try_add`).  The
  reference piecewise folder calls ``would_accept`` and then ``add``,
  evaluating every component expression (and often the span test)
  twice per point.  ``try_add`` performs one evaluation pass and one
  span test, mutating only when the reference would have accepted.

* **GCD-free span membership**.  Row reduction scales the candidate
  vector by pivot values; scaling never changes which entries are
  zero, so the membership test skips the gcd normalization the
  reference applies per reduction step (normalization is kept when
  *inserting* rows, so the stored basis is identical to the
  reference's).  Python's exact big integers make the intermediate
  growth safe.

* **Shared domain folders + memoized folds**
  (:class:`FastDomainFolder`, :class:`FastFoldingSink`).  All
  statements of one executed (block, context) receive exactly the
  same coordinate stream, so the sink folds their common iteration
  domain once: one tree insertion per block execution instead of one
  per instruction, and one ``fold()`` per group at finalize instead of
  one per statement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ddg.graph import Statement, StmtKey
from ..poly.affine import AffineExpr, AffineFunction, fit_affine
from ..poly.pset import ISet
from .domains import DomainFolder
from .fitter import _vec_gcd
from .folder import FoldingSink


def _copy_tree(node: Dict) -> Dict:
    out = {}
    for k, v in node.items():
        if type(v) is dict:
            out[k] = _copy_tree(v)
        else:
            out[k] = v[:]  # leaf [min, max, count]
    return out


class FastDomainFolder(DomainFolder):
    """DomainFolder with a memoized :meth:`fold` and cheap cloning.

    Shared-group folders are folded once per member statement at
    finalize time; the cache makes every fold after the first free.
    :meth:`clone` snapshots the folder for the alias-until-divergence
    sharing the sink does between a stream's domain and the domain of
    its first label piece.
    """

    __slots__ = ("_fold_cache",)

    def __init__(self, dim: int) -> None:
        super().__init__(dim)
        self._fold_cache: Optional[Tuple[int, Tuple[ISet, bool]]] = None

    def add(self, coords: Sequence[int]) -> None:
        self._fold_cache = None
        super().add(coords)

    def fold(self, max_pieces: int = 6) -> Tuple[ISet, bool]:
        cached = self._fold_cache
        if cached is not None and cached[0] == max_pieces:
            return cached[1]
        result = super().fold(max_pieces)
        self._fold_cache = (max_pieces, result)
        return result

    def clone(self) -> "FastDomainFolder":
        c = FastDomainFolder.__new__(FastDomainFolder)
        c.dim = self.dim
        c.count = self.count
        c._mins = list(self._mins)
        c._maxs = list(self._maxs)
        c._tree = _copy_tree(self._tree)
        c._fold_cache = self._fold_cache
        return c


class FastVectorFitter:
    """Vector affine fitter with one shared support/span.

    Mirrors ``VectorAffineFitter`` exactly (see the module docstring
    for why sharing is sound).  Two entry points:

    * :meth:`try_add` -- the piecewise-folder protocol: accept-or-
      reject atomically, equivalent to reference ``would_accept`` +
      ``add``;
    * :meth:`add` -- the independent-components protocol of the global
      per-dependence fit, where components fail individually.
    """

    __slots__ = (
        "dim", "out_dim", "count", "failed",
        "_support", "_values", "_rows", "_pivots", "_origin",
        "_exprs", "_coeffs", "_consts", "_dens", "_comp_failed", "_live",
    )

    def __init__(self, dim: int, out_dim: int) -> None:
        self.dim = dim
        self.out_dim = out_dim
        self.count = 0
        self.failed = False
        self._support: List[Tuple[int, ...]] = []
        self._values: List[List[int]] = [[] for _ in range(out_dim)]
        self._rows: List[List[int]] = []
        self._pivots: List[int] = []
        self._origin: Optional[Tuple[int, ...]] = None
        self._exprs: List[Optional[AffineExpr]] = [None] * out_dim
        self._coeffs: List = [None] * out_dim
        self._consts: List[int] = [0] * out_dim
        self._dens: List[int] = [1] * out_dim
        self._comp_failed: List[bool] = [False] * out_dim
        self._live = out_dim

    # -- shared span -----------------------------------------------------------

    def _in_span(self, point: Tuple[int, ...]) -> bool:
        origin = self._origin
        if origin is None:
            return False
        rows = self._rows
        if len(rows) == self.dim:
            return True
        v = [b - a for a, b in zip(origin, point)]
        for row, piv in zip(rows, self._pivots):
            if v[piv]:
                a, b = row[piv], v[piv]
                v = [a * x - b * y for x, y in zip(v, row)]
        return not any(v)

    def _append(self, point: Tuple[int, ...], values: Sequence[int]) -> None:
        """Grow the shared support (point is outside the span)."""
        self._support.append(point)
        comp_failed = self._comp_failed
        vlists = self._values
        for i in range(self.out_dim):
            if not comp_failed[i]:
                vlists[i].append(int(values[i]))
        origin = self._origin
        if origin is None:
            self._origin = point
            return
        # insertion keeps the reference's gcd-normalized echelon rows
        v = [b - a for a, b in zip(origin, point)]
        rows = self._rows
        for row, piv in zip(rows, self._pivots):
            if v[piv]:
                a, b = row[piv], v[piv]
                v = [a * x - b * y for x, y in zip(v, row)]
                g = _vec_gcd(v)
                if g > 1:
                    v = [x // g for x in v]
        piv = next((j for j, x in enumerate(v) if x), None)
        if piv is not None:
            rows.append(v)
            self._pivots.append(piv)

    # -- fitting ----------------------------------------------------------------

    def _refit(self, i: int) -> None:
        expr = fit_affine(self._support, self._values[i])
        if expr is None:
            self._comp_fail(i)
        else:
            self._exprs[i] = expr
            self._coeffs[i] = expr.coeffs
            self._consts[i] = expr.const
            self._dens[i] = expr.den

    def _comp_fail(self, i: int) -> None:
        self._comp_failed[i] = True
        self._exprs[i] = None
        self._coeffs[i] = None
        self._values[i] = []
        self._live -= 1

    def try_add(self, point: Sequence[int], values: Sequence[int]) -> bool:
        """Accept-and-absorb, or reject without mutation.

        Equivalent to reference ``would_accept(point, values)``
        followed (on True) by ``add(point, values)``: the vector
        accepts iff every component matches its expression or the
        point lies outside the shared span.
        """
        if self.failed or len(values) != self.out_dim:
            return False
        point = tuple(point)
        if not self._support:
            self.count += 1
            self._append(point, values)
            for i in range(self.out_dim):
                self._refit(i)
            return True
        coeffs = self._coeffs
        consts = self._consts
        dens = self._dens
        comp_failed = self._comp_failed
        mismatch: Optional[List[int]] = None
        for i in range(self.out_dim):
            if comp_failed[i]:
                # a dead component rejects everything (reference
                # would_accept semantics)
                return False
            num = consts[i]
            for c, x in zip(coeffs[i], point):
                num += c * x
            if num != int(values[i]) * dens[i]:
                if mismatch is None:
                    mismatch = [i]
                else:
                    mismatch.append(i)
        if mismatch is None:
            self.count += 1
            if not self._in_span(point):
                self._append(point, values)
            return True
        if self._in_span(point):
            return False
        self.count += 1
        self._append(point, values)
        for i in mismatch:
            self._refit(i)
        return True

    def add(self, point: Sequence[int], values: Sequence[int]) -> None:
        """Independent-components absorb (the global per-dep fit)."""
        self.count += 1
        if len(values) != self.out_dim:
            self.failed = True
            return
        if not self._live:
            return
        point = tuple(point)
        if not self._support:
            self._append(point, values)
            for i in range(self.out_dim):
                self._refit(i)
            return
        coeffs = self._coeffs
        consts = self._consts
        dens = self._dens
        comp_failed = self._comp_failed
        mismatch: Optional[List[int]] = None
        for i in range(self.out_dim):
            if comp_failed[i]:
                continue
            num = consts[i]
            for c, x in zip(coeffs[i], point):
                num += c * x
            if num != int(values[i]) * dens[i]:
                if mismatch is None:
                    mismatch = [i]
                else:
                    mismatch.append(i)
        if mismatch is None:
            if not self._in_span(point):
                self._append(point, values)
            return
        if self._in_span(point):
            for i in mismatch:
                self._comp_fail(i)
            return
        self._append(point, values)
        for i in mismatch:
            self._refit(i)

    def clone(self) -> "FastVectorFitter":
        """Snapshot for alias-until-divergence sharing.  Support point
        tuples and span rows are immutable after insertion, so only
        the containers are copied."""
        c = FastVectorFitter.__new__(FastVectorFitter)
        c.dim = self.dim
        c.out_dim = self.out_dim
        c.count = self.count
        c.failed = self.failed
        c._support = self._support[:]
        c._values = [v[:] for v in self._values]
        c._rows = self._rows[:]
        c._pivots = self._pivots[:]
        c._origin = self._origin
        c._exprs = self._exprs[:]
        c._coeffs = self._coeffs[:]
        c._consts = self._consts[:]
        c._dens = self._dens[:]
        c._comp_failed = self._comp_failed[:]
        c._live = self._live
        return c

    # -- results ----------------------------------------------------------------

    def result(self) -> Optional[List[AffineExpr]]:
        """All-components result (reference VectorAffineFitter)."""
        if self.failed or self.count == 0:
            return None
        out = []
        for i in range(self.out_dim):
            if self._comp_failed[i]:
                return None
            e = self._exprs[i]
            if e is None:  # pragma: no cover - defensive
                return None
            out.append(e)
        return out

    def component_results(self) -> List[Optional[AffineExpr]]:
        """Per-component results (None where the component failed)."""
        if self.count == 0:
            return [None] * self.out_dim
        return [
            None if self._comp_failed[i] else self._exprs[i]
            for i in range(self.out_dim)
        ]


class FastPiecewiseVectorFolder:
    """Piecewise folder over :class:`FastVectorFitter` pieces.

    Same assignment policy as the reference ``PiecewiseVectorFolder``
    (first accepting piece wins; a point no piece accepts opens a new
    one until the budget kills the stream), with the accept test and
    the absorb fused into one pass.
    """

    __slots__ = ("dim", "out_dim", "max_pieces", "pieces", "failed", "count")

    def __init__(self, dim: int, out_dim: int, max_pieces: int = 6) -> None:
        self.dim = dim
        self.out_dim = out_dim
        self.max_pieces = max_pieces
        self.pieces: List[Tuple[FastVectorFitter, FastDomainFolder]] = []
        self.failed = False
        self.count = 0

    def add(self, point: Sequence[int], values: Sequence[int]) -> None:
        self.count += 1
        if self.failed:
            return
        for fitter, dom in self.pieces:
            if fitter.try_add(point, values):
                dom.add(point)
                return
        if len(self.pieces) >= self.max_pieces:
            self.failed = True
            self.pieces = []
            return
        fitter = FastVectorFitter(self.dim, self.out_dim)
        dom = FastDomainFolder(self.dim)
        fitter.add(point, values)
        dom.add(point)
        self.pieces.append((fitter, dom))

    def result(
        self, max_pieces: Optional[int] = None
    ) -> Optional[List[Tuple[ISet, AffineFunction, int]]]:
        if self.failed or self.count == 0:
            return None
        out = []
        budget = max_pieces if max_pieces is not None else self.max_pieces
        for fitter, dom in self.pieces:
            exprs = fitter.result()
            if exprs is None:
                return None
            domain, _exact = dom.fold(budget)
            out.append((domain, AffineFunction(exprs), dom.count))
        return out


class _FastStmtStream:
    """Per-statement stream state; the domain folder may be shared
    with every other statement of the same executed (block, context)
    group and is bound on the group's first batch.

    While ``aliased``, the domain of the stream's first label piece IS
    the (shared) stream domain: every point so far was labelled and
    accepted by piece 0, so the two folders would be identical anyway.
    The alias ends (with a clone snapshot) at the first unlabelled or
    rejected point."""

    __slots__ = ("domain", "labels", "label_arity", "aliased")

    def __init__(self) -> None:
        self.domain: Optional[FastDomainFolder] = None
        self.labels: Optional[FastPiecewiseVectorFolder] = None
        self.label_arity: Optional[int] = None
        self.aliased = False

    def dealias(self) -> None:
        """Give piece 0 its own domain snapshot (the stream domain is
        about to move ahead of it)."""
        labels = self.labels
        f0 = labels.pieces[0][0]
        labels.pieces[0] = (f0, self.domain.clone())
        self.aliased = False


class _FastDepStream:
    """Per-dependence stream state.

    While ``partial`` is None, every point so far was accepted by label
    piece 0, so the global per-component fitter and piece 0's fitter
    have identical state, as do the stream domain and piece 0's domain
    -- both are aliased and each point costs one domain insert plus one
    fused fitter pass.  The first rejected point clones both."""

    __slots__ = ("domain", "labels", "partial", "src_dim")

    def __init__(self, dst_dim: int, src_dim: int, max_pieces: int) -> None:
        self.domain = FastDomainFolder(dst_dim)
        self.labels = FastPiecewiseVectorFolder(dst_dim, src_dim, max_pieces)
        self.partial: Optional[FastVectorFitter] = None
        self.src_dim = src_dim

    def add(self, dst_coords, src_coords) -> None:
        labels = self.labels
        domain = self.domain
        partial = self.partial
        if partial is None:
            pieces = labels.pieces
            if not pieces:
                labels.count += 1
                fitter = FastVectorFitter(labels.dim, labels.out_dim)
                fitter.add(dst_coords, src_coords)
                pieces.append((fitter, domain))
                domain.add(dst_coords)
                return
            f0 = pieces[0][0]
            if f0.try_add(dst_coords, src_coords):
                labels.count += 1
                domain.add(dst_coords)
                return
            # diverged: snapshot piece 0 before absorbing the point
            # (try_add rejected without mutating, so f0 and the domain
            # hold exactly the pre-point state)
            pieces[0] = (f0, domain.clone())
            partial = f0.clone()
            self.partial = partial
        domain.add(dst_coords)
        labels.add(dst_coords, src_coords)
        partial.add(dst_coords, src_coords)

    def on_clamped(self) -> None:
        """Clamped stream: it will never absorb another point (the
        count only grows), so the aliases can be frozen in place."""
        if self.partial is None:
            pieces = self.labels.pieces
            if pieces:
                f0 = pieces[0][0]
                pieces[0] = (f0, self.domain.clone())
                self.partial = f0
            else:
                self.partial = FastVectorFitter(self.domain.dim, self.src_dim)
        self.domain.count += 1

    def partial_results(self) -> Optional[List[Optional[AffineExpr]]]:
        partial = self.partial
        if partial is None:
            pieces = self.labels.pieces
            if not pieces:
                return None
            partial = pieces[0][0]
        if partial.failed or not partial.count:
            return None
        out = partial.component_results()
        if all(e is None for e in out):
            return None
        return out


class FastFoldingSink(FoldingSink):
    """The folding sink of the fast engine.

    Extends :class:`FoldingSink` with the batched ``instr_points`` /
    ``dep_points`` entry points and swaps every per-point structure
    for its fast twin.  Produces bit-identical :class:`FoldedDDG`
    results; ``finalize`` is inherited.
    """

    def __init__(
        self, max_pieces: int = 6, clamp: Optional[int] = None
    ) -> None:
        super().__init__(max_pieces=max_pieces, clamp=clamp)
        #: statement-key tuple of one executed block -> shared domain
        #: folder (False marks a group that cannot share, e.g. after a
        #: partially-delivered faulting block)
        self._group_domains: Dict[Tuple[StmtKey, ...], object] = {}

    # -- declaration ------------------------------------------------------------

    def declare_statement(self, stmt: Statement) -> None:
        if stmt.key not in self.statements:
            self.statements[stmt.key] = stmt
            self._stmt_streams[stmt.key] = _FastStmtStream()

    # -- batched entry points ----------------------------------------------------

    def instr_points(self, coords, items) -> None:
        streams = self._stmt_streams
        gkey = tuple(k for k, _ in items)
        entry = self._group_domains.get(gkey)
        if entry is None:
            members = [streams[k] for k in gkey]
            first = members[0].domain
            if first is None and all(m.domain is None for m in members):
                dom = FastDomainFolder(len(coords))
                for m in members:
                    m.domain = dom
            elif first is not None and all(m.domain is first for m in members):
                # a prefix of an already-shared group (a faulting
                # block's partial delivery): fold into the same folder
                dom = first
            else:
                dom = False
            entry = (dom, members)
            self._group_domains[gkey] = entry
        dom, members = entry
        if dom is False:
            # mixed bindings (batched/unbatched interleaving): degrade
            # to per-point semantics, each distinct folder fed once
            self._mixed_instr_points(coords, items)
            return
        if self.clamp is not None and dom.count >= self.clamp:
            for s in members:
                if s.aliased:
                    s.dealias()
            self._clamped_stmts.update(gkey)
            dom.count += 1  # one unseen point per member statement
            self.clamped_points += len(items)
            return
        max_pieces = self.max_pieces
        dim = len(coords)
        first_block = dom.count == 0
        i = 0
        for key, label in items:
            s = members[i]
            i += 1
            if label:
                labels = s.labels
                if labels is None:
                    s.label_arity = len(label)
                    labels = FastPiecewiseVectorFolder(
                        dim, len(label), max_pieces
                    )
                    s.labels = labels
                    if first_block:
                        # every point of this stream so far (just this
                        # one) is labelled: alias piece 0's domain to
                        # the shared stream domain
                        s.aliased = True
                        labels.count = 1
                        fitter = FastVectorFitter(dim, len(label))
                        fitter.add(coords, label)
                        labels.pieces.append((fitter, dom))
                    else:
                        labels.add(coords, label)
                elif s.aliased:
                    if labels.pieces[0][0].try_add(coords, label):
                        labels.count += 1
                    else:
                        s.dealias()
                        labels.add(coords, label)
                else:
                    labels.add(coords, label)
            elif s.aliased:
                # unlabelled point: the shared domain moves ahead of
                # label piece 0, so the alias ends here
                s.dealias()
        # the shared insert happens after the member loop so dealias
        # snapshots see exactly the previous blocks' points
        dom.add(coords)

    def _mixed_instr_points(self, coords, items) -> None:
        """Per-point delivery for a batch whose member statements do
        not share one domain folder; a folder shared by *some* members
        still absorbs the block's coordinates exactly once."""
        streams = self._stmt_streams
        clamp = self.clamp
        max_pieces = self.max_pieces
        dim = len(coords)
        # end any aliases up front, while every folder still holds
        # exactly the previous points
        for key, _ in items:
            s = streams[key]
            if s.aliased:
                s.dealias()
        decisions: Dict[int, bool] = {}
        for key, label in items:
            s = streams[key]
            d = s.domain
            if d is None:
                d = FastDomainFolder(dim)
                s.domain = d
            did = id(d)
            clamped = decisions.get(did)
            if clamped is None:
                clamped = clamp is not None and d.count >= clamp
                if clamped:
                    d.count += 1
                else:
                    d.add(coords)
                decisions[did] = clamped
            if clamped:
                self._clamped_stmts.add(key)
                self.clamped_points += 1
                continue
            if label:
                labels = s.labels
                if labels is None:
                    s.label_arity = len(label)
                    labels = FastPiecewiseVectorFolder(
                        dim, len(label), max_pieces
                    )
                    s.labels = labels
                labels.add(coords, label)

    def dep_points(self, dst_coords, items) -> None:
        streams = self._dep_streams
        clamp = self.clamp
        max_pieces = self.max_pieces
        dst_dim = len(dst_coords)
        for dep, src_coords in items:
            d = streams.get(dep)
            if d is None:
                d = _FastDepStream(dst_dim, len(src_coords), max_pieces)
                streams[dep] = d
            if clamp is not None and d.domain.count >= clamp:
                self._clamped_deps.add(dep)
                d.on_clamped()
                self.clamped_points += 1
                continue
            d.add(dst_coords, src_coords)

    # -- unbatched entry points (fallback / mixed use) ---------------------------

    def instr_point(self, key, coords, label) -> None:
        s = self._stmt_streams[key]
        if s.aliased:
            s.dealias()
        if s.domain is None:
            s.domain = FastDomainFolder(len(coords))
        if self.clamp is not None and s.domain.count >= self.clamp:
            self._clamped_stmts.add(key)
            s.domain.count += 1
            self.clamped_points += 1
            return
        s.domain.add(coords)
        if label:
            if s.labels is None:
                s.label_arity = len(label)
                s.labels = FastPiecewiseVectorFolder(
                    len(coords), len(label), self.max_pieces
                )
            s.labels.add(coords, label)

    def dep_point(self, dep, dst_coords, src_coords) -> None:
        d = self._dep_streams.get(dep)
        if d is None:
            d = _FastDepStream(
                len(dst_coords), len(src_coords), self.max_pieces
            )
            self._dep_streams[dep] = d
        if self.clamp is not None and d.domain.count >= self.clamp:
            self._clamped_deps.add(dep)
            d.on_clamped()
            self.clamped_points += 1
            return
        d.add(dst_coords, src_coords)

    # -- finalization ------------------------------------------------------------

    def finalize(self, tracer=None):
        # a statement declared but never delivered a point has no
        # bound domain folder yet; give it an empty private one so the
        # inherited finalize sees the reference invariant
        for key, stream in self._stmt_streams.items():
            if stream.domain is None:
                stream.domain = FastDomainFolder(self.statements[key].depth)
        return super().finalize(tracer=tracer)
