"""Parallel suite runner: analyze many workloads with bounded time.

The paper profiles the whole Rodinia suite; doing that serially with
the reference interpreter takes minutes.  :func:`run_suite` fans the
per-workload :func:`~repro.pipeline.analyze` calls out over a process
pool (profiling is CPU-bound pure Python, so threads would not help),
with a per-workload wall-clock timeout and graceful degradation: a
workload that times out, crashes, or loses its worker process yields
an error :class:`WorkloadResult` instead of sinking the suite.

Tasks are either registry names (resolved in the worker via
:func:`repro.workloads.all_workloads`) or picklable zero-argument
callables returning a :class:`~repro.pipeline.ProgramSpec` -- anything
a ``ProcessPoolExecutor`` can ship.  Results always come back in
submission order, regardless of completion order.

``jobs <= 1`` runs inline (no pool, no pickling), which is also the
fallback the CLI uses on single-core machines.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

#: a suite task: a workload registry name or a spec factory
SuiteTask = Union[str, Callable[[], "ProgramSpec"]]


class WorkloadTimeout(Exception):
    """Raised inside a worker when the per-workload deadline expires."""


@dataclass
class WorkloadResult:
    """Outcome of analyzing one workload (always picklable)."""

    name: str
    ok: bool
    error: Optional[str] = None
    timed_out: bool = False
    #: True when the suite was interrupted (SIGINT) before this
    #: workload could finish; such runs render as ``stopped``
    interrupted: bool = False
    wall_seconds: float = 0.0
    engine: str = "fast"
    #: per-stage split of ``wall_seconds`` (Instrumentation I;
    #: Instrumentation II + folding; feedback/scheduling) -- cache-aware:
    #: on a warm hit the profiling stages collapse to artifact decode
    t_instr1: float = 0.0
    t_instr2_fold: float = 0.0
    t_feedback: float = 0.0
    #: True when the artifact store served the whole profile (no
    #: instrumented execution ran)
    cache_hit: bool = False
    #: exported span forest of this workload's analysis
    #: (:meth:`repro.obs.Span.to_dict` documents -- plain dicts so the
    #: trace survives the trip back across the process pool)
    trace: Optional[List[Dict]] = None
    #: this worker's store counters (hits/misses/puts/evictions/errors);
    #: None when the run was uncached
    cache_stats: Optional[Dict[str, int]] = None
    #: fold worker processes the analysis ran with (1 = serial fold)
    fold_jobs: int = 1
    #: per-shard fold busy seconds when ``fold_jobs > 1``.  Shards run
    #: concurrently with each other *and* with the instrumented
    #: execution, so these overlap ``t_instr2_fold`` and are kept out
    #: of the StageTimings parts-sum-to-total invariant (instr1 +
    #: instr2_fold + feedback still equals the root span exactly).
    t_shards: Optional[List[float]] = None
    #: summary of the analysis when ``ok``
    dyn_instrs: int = 0
    statements: int = 0
    deps: int = 0
    plans: int = 0
    report: Optional[str] = None
    #: soundness violations found by ``--crosscheck`` (None = not run)
    soundness_violations: Optional[int] = None
    crosscheck_report: Optional[str] = None

    def status(self) -> str:
        if self.ok:
            return "ok"
        if self.timed_out:
            return "timeout"
        if self.interrupted:
            return "stopped"
        return "error"

    def hot_phase(self) -> str:
        """The stage this workload spent most of its wall time in
        (span-derived; the suite table's ``hot`` column)."""
        stages = {
            "instr1": self.t_instr1,
            "fold": self.t_instr2_fold,
            "feedback": self.t_feedback,
        }
        if not any(stages.values()):
            return "-"
        return max(stages, key=stages.__getitem__)


@contextmanager
def _deadline(seconds: Optional[float]):
    """Raise :class:`WorkloadTimeout` after ``seconds`` of wall time.

    Implemented with ``SIGALRM``/``setitimer``, which only works on the
    main thread of a process (always true for pool workers and for the
    inline path of a CLI run); anywhere else the deadline degrades to
    unbounded rather than failing.
    """
    if (
        not seconds
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum, frame):
        raise WorkloadTimeout()

    old_handler = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old_handler)


def _resolve(task: SuiteTask):
    from .pipeline import ProgramSpec

    if isinstance(task, str):
        from .workloads import all_workloads

        reg = all_workloads()
        if task not in reg:
            raise KeyError(
                f"unknown workload {task!r}; available: "
                + ", ".join(sorted(reg))
            )
        return reg[task]()
    spec = task()
    if not isinstance(spec, ProgramSpec):
        raise TypeError(
            f"suite task factory returned {type(spec).__name__}, "
            "expected ProgramSpec"
        )
    return spec


def task_name(task: SuiteTask) -> str:
    if isinstance(task, str):
        return task
    return getattr(task, "__name__", repr(task))


def _analyze_task(
    task: SuiteTask,
    engine: str,
    fuel: int,
    clamp: Optional[int],
    timeout: Optional[float],
    with_report: bool,
    crosscheck: bool = False,
    cache_dir: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
    fold_jobs: int = 1,
    trace: Optional[dict] = None,
) -> WorkloadResult:
    """Worker body: analyze one workload, never raise.

    All workers of one suite share ``cache_dir``: the store's atomic
    writes make concurrent puts of the same key safe, and its counters
    come back in the result for the suite-level summary.

    ``trace`` is the suite's distributed trace context as a plain dict
    (:meth:`~repro.obs.context.TraceContext.as_dict`, dict so it
    pickles across the pool): this workload's root spans adopt it, so
    the whole fan-out stitches into the submitting request's trace.
    """
    name = task_name(task)
    t0 = time.perf_counter()
    store = None
    if cache_dir is not None:
        from .store import ArtifactStore

        store = ArtifactStore(cache_dir, max_bytes=cache_max_bytes)
    from .obs import Tracer
    from .obs.context import TraceContext

    tracer = Tracer(
        context=TraceContext.from_dict(trace) if trace else None
    )
    try:
        with _deadline(timeout):
            with tracer.span("workload", cat="suite", workload=name):
                spec = _resolve(task)
                name = spec.name
                from .feedback.report import render_report
                from .pipeline import analyze

                result = analyze(
                    spec, engine=engine, fuel=fuel, clamp=clamp,
                    crosscheck=crosscheck, store=store, tracer=tracer,
                    fold_jobs=fold_jobs,
                )
                report = None
                if with_report:
                    with tracer.span("render_report", cat="feedback"):
                        report = render_report(
                            result.forest,
                            result.plans,
                            title=f"poly-prof feedback: {spec.name}",
                        )
        cc = result.crosscheck
        return WorkloadResult(
            name=name,
            ok=True,
            wall_seconds=time.perf_counter() - t0,
            engine=engine,
            t_instr1=result.timings.instr1,
            t_instr2_fold=result.timings.instr2_fold,
            t_feedback=result.timings.feedback,
            cache_hit=result.timings.cache_hit,
            fold_jobs=result.fold_jobs,
            t_shards=result.shard_seconds,
            cache_stats=store.stats.as_dict() if store else None,
            trace=tracer.to_dicts(),
            dyn_instrs=result.ddg_profile.builder.instr_count,
            statements=result.folded.stmt_count(),
            deps=len(result.folded.deps),
            plans=len(result.plans),
            report=report,
            soundness_violations=len(cc.violations) if cc else None,
            crosscheck_report=cc.render() if cc and cc.violations else None,
        )
    except WorkloadTimeout:
        return WorkloadResult(
            name=name,
            ok=False,
            timed_out=True,
            error=f"timed out after {timeout:g}s",
            wall_seconds=time.perf_counter() - t0,
            engine=engine,
        )
    except KeyboardInterrupt:
        # the user wants the *suite* to stop, not an error record for
        # this workload; run_suite turns it into partial results
        raise
    except BaseException as exc:  # noqa: BLE001 - error record, not crash
        return WorkloadResult(
            name=name,
            ok=False,
            error="".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip(),
            wall_seconds=time.perf_counter() - t0,
            engine=engine,
        )


def run_suite(
    tasks: Sequence[SuiteTask],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    engine: str = "fast",
    fuel: int = 50_000_000,
    clamp: Optional[int] = None,
    with_report: bool = False,
    crosscheck: bool = False,
    cache_dir: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
    fold_jobs: int = 1,
    trace: Optional[dict] = None,
) -> List[WorkloadResult]:
    """Analyze ``tasks``, ``jobs`` at a time; results in task order.

    ``fold_jobs > 1`` folds each workload's stage 2 in that many shard
    processes (:mod:`repro.parallel`); total process fan-out is then
    ``jobs x (1 + fold_jobs)``, so callers on small hosts should trade
    one against the other.

    ``jobs`` defaults to the CPU count.  ``timeout`` bounds each
    workload's wall time (None = unbounded).  Failures degrade to
    error records -- the suite always returns one result per task.
    ``crosscheck`` runs the soundness sanitizers per workload and
    reports the violation count.  ``cache_dir`` points every worker at
    one shared artifact store (:mod:`repro.store`), optionally capped
    at ``cache_max_bytes`` of LRU-evicted artifacts.

    ``KeyboardInterrupt`` (Ctrl-C / SIGINT) never escapes: pending
    workloads are cancelled, and every unfinished task comes back as
    an ``interrupted`` record so callers can still print the partial
    table and exit nonzero.

    ``trace`` (a :meth:`TraceContext.as_dict
    <repro.obs.context.TraceContext.as_dict>` document) threads every
    workload's span forest into one distributed trace across the
    process pool; None leaves each workload's trace unlinked.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or len(tasks) <= 1:
        results_inline: List[WorkloadResult] = []
        try:
            for t in tasks:
                results_inline.append(
                    _analyze_task(
                        t, engine, fuel, clamp, timeout, with_report,
                        crosscheck, cache_dir, cache_max_bytes, fold_jobs,
                        trace,
                    )
                )
        except KeyboardInterrupt:
            _mark_interrupted(results_inline, tasks, engine)
        return results_inline

    from concurrent.futures import ProcessPoolExecutor

    results: List[Optional[WorkloadResult]] = [None] * len(tasks)
    pool = ProcessPoolExecutor(max_workers=jobs)
    interrupted = False
    futures = []
    try:
        futures = [
            pool.submit(
                _analyze_task, t, engine, fuel, clamp, timeout,
                with_report, crosscheck, cache_dir, cache_max_bytes,
                fold_jobs, trace,
            )
            for t in tasks
        ]
        for i, fut in enumerate(futures):
            try:
                results[i] = fut.result()
            except KeyboardInterrupt:
                raise
            except BaseException as exc:  # BrokenProcessPool, cancel, ...
                results[i] = WorkloadResult(
                    name=task_name(tasks[i]),
                    ok=False,
                    error=f"worker failed: {exc!r}",
                    engine=engine,
                )
    except KeyboardInterrupt:
        # cancel everything still queued; don't wait for in-flight
        # workers (they got the same SIGINT), just collect what we have
        interrupted = True
        for i, fut in enumerate(futures):
            if results[i] is None and fut.done() and not fut.cancelled():
                try:
                    results[i] = fut.result(timeout=0)
                except BaseException:
                    results[i] = None
        for i, r in enumerate(results):
            if r is None:
                results[i] = _interrupted_record(tasks[i], engine)
    finally:
        try:
            pool.shutdown(wait=not interrupted, cancel_futures=interrupted)
        except TypeError:  # pragma: no cover - pre-3.9 signature
            pool.shutdown(wait=not interrupted)
    return results  # type: ignore[return-value]


def _interrupted_record(task: SuiteTask, engine: str) -> WorkloadResult:
    return WorkloadResult(
        name=task_name(task),
        ok=False,
        interrupted=True,
        error="interrupted (SIGINT) before completion",
        engine=engine,
    )


def _mark_interrupted(
    results: List[WorkloadResult],
    tasks: Sequence[SuiteTask],
    engine: str,
) -> None:
    """Pad ``results`` with one ``interrupted`` record per unfinished
    task (in task order)."""
    for t in tasks[len(results):]:
        results.append(_interrupted_record(t, engine))


def _shard_spread(t_shards: Optional[List[float]]) -> str:
    """``min~max`` per-shard fold seconds -- the suite table's load-
    balance column (a wide spread means one hot shard is the critical
    path)."""
    if not t_shards:
        return "-"
    return f"{min(t_shards):.2f}~{max(t_shards):.2f}s"


def render_suite_table(results: Sequence[WorkloadResult]) -> str:
    """A compact text table of suite results."""
    crosschecked = any(r.soundness_violations is not None for r in results)
    cached = any(r.cache_stats is not None for r in results)
    parallel = any(r.fold_jobs > 1 for r in results)
    # the name column grows with the longest workload name (sweep point
    # tasks render as e.g. "pathfinder[cols=12,rows=20]") but never
    # shrinks below the historical 16, keeping short-name output stable
    name_w = max([16] + [len(r.name) for r in results])
    header = (
        f"{'workload':{name_w}s} {'status':8s} {'wall':>7s} {'dyn ops':>10s} "
        f"{'stmts':>6s} {'deps':>6s} {'plans':>6s} {'hot':>8s}"
    )
    if parallel:
        header += f" {'fj':>3s} {'shards':>12s}"
    if cached:
        header += f" {'cache':>6s}"
    if crosschecked:
        header += f" {'sound':>6s}"
    lines = [header]
    for r in results:
        if r.ok:
            line = (
                f"{r.name:{name_w}s} {r.status():8s} {r.wall_seconds:6.2f}s "
                f"{r.dyn_instrs:10d} {r.statements:6d} {r.deps:6d} "
                f"{r.plans:6d} {r.hot_phase():>8s}"
            )
            if parallel:
                line += (
                    f" {r.fold_jobs:3d} {_shard_spread(r.t_shards):>12s}"
                )
            if cached:
                if r.cache_stats is None:
                    line += f" {'-':>6s}"
                else:
                    line += f" {'warm' if r.cache_hit else 'cold':>6s}"
            if crosschecked:
                if r.soundness_violations is None:
                    line += f" {'-':>6s}"
                elif r.soundness_violations == 0:
                    line += f" {'ok':>6s}"
                else:
                    line += f" {r.soundness_violations:5d}!"
            lines.append(line)
        else:
            lines.append(
                f"{r.name:{name_w}s} {r.status():8s} {r.wall_seconds:6.2f}s "
                f"-- {r.error}"
            )
    n_ok = sum(1 for r in results if r.ok)
    lines.append(f"{n_ok}/{len(results)} workloads analyzed")
    if cached:
        from .store import StoreStats

        agg = StoreStats()
        for r in results:
            if r.cache_stats:
                agg.merge(r.cache_stats)
        lines.append(
            f"cache: {agg.hits} hit(s), {agg.misses} miss(es), "
            f"{agg.puts} put(s), {agg.evictions} eviction(s)"
            + (f", {agg.errors} error(s)" if agg.errors else "")
        )
    if crosschecked:
        n_viol = sum(r.soundness_violations or 0 for r in results)
        lines.append(
            "crosscheck: no soundness violations"
            if n_viol == 0
            else f"crosscheck: {n_viol} soundness violation(s)"
        )
        for r in results:
            if r.crosscheck_report:
                lines.append(r.crosscheck_report)
    return "\n".join(lines)
