"""poly-prof reproduction: data-flow/dependence profiling for
structured transformations (Gruber et al., PPoPP 2019).

The public entry point is :func:`repro.pipeline.analyze`; see README.md
for the architecture and ``python -m repro list`` for the bundled
workloads.
"""

__version__ = "0.1.0"

from .pipeline import AnalysisResult, ProgramSpec, analyze

__all__ = ["AnalysisResult", "ProgramSpec", "analyze", "__version__"]
