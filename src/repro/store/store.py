"""Content-addressed, size-capped on-disk artifact store.

Artifacts are gzip-compressed JSON documents addressed by a
content-derived key (:mod:`repro.store.keys`): the key names *what was
analyzed and how*, never when or by whom, so any process that computes
the same fingerprint reads the same artifact.

Concurrency and corruption are handled the only way a shared cache
directory can be: writes go to a unique temp file in the store and
land via atomic ``os.replace`` (a reader never observes a torn
artifact, concurrent writers of the same key just overwrite each other
last-write-wins with identical bytes), and *every* read failure --
missing file, truncated gzip, invalid JSON, wrong format version,
decoder error -- degrades to a cache miss.  A corrupt file is unlinked
best-effort so it cannot miss forever.

Eviction is size-capped LRU over file mtimes: a hit touches the
artifact's mtime, a put evicts oldest-first until the store fits
``max_bytes``.  Races with concurrent workers (a file vanishing
mid-walk) are tolerated everywhere.

One :class:`ArtifactStore` handle may be shared by many threads (the
analysis service's worker pool does): counter updates, the LRU touch,
and the evict scan serialize on an internal lock, so stats never lose
increments and two threads never evict past the cap in parallel.  The
heavy work -- gzip/JSON encode/decode and file I/O of distinct keys --
stays outside the lock.

One store *directory* may additionally be shared by many **processes**
(replica daemons, process-pool workers, suite runners): atomic
``os.replace`` puts were always cross-process-safe, but LRU eviction
and the persisted ``stats.json`` are read-modify-write cycles, so both
run under an advisory ``flock`` on ``<root>/.lock`` -- two replicas
finishing puts at the same moment walk the LRU tail one at a time
(never double-evicting below the cap), and concurrent
:meth:`flush_stats` merges never lose counts or tear the JSON.  On
platforms without ``fcntl`` the lock degrades to the in-process lock
(single-process semantics, exactly what such a host can run).
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: bump on ANY change to the artifact payload layout or the canonical
#: fingerprint encoding; it salts every key (see keys.py), so old
#: stores simply miss instead of mis-decoding
#: v2: explicit function-boundary tokens in the program fingerprint
#: stream, canonical (key-sorted) folded-DDG serialization order, and
#: the man-/rgn- incremental artifact levels
STORE_FORMAT_VERSION = 2


@dataclass
class StoreStats:
    """Counters for one store handle (per process / per worker)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    errors: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "errors": self.errors,
        }

    def merge(self, other: Dict[str, int]) -> None:
        self.hits += other.get("hits", 0)
        self.misses += other.get("misses", 0)
        self.puts += other.get("puts", 0)
        self.evictions += other.get("evictions", 0)
        self.errors += other.get("errors", 0)


class _InterProcessLock:
    """Advisory cross-process lock on one file (``flock``-based).

    Reentrant within a process via the paired thread lock: the owning
    thread may nest acquisitions (evict-inside-flush), other threads
    and other processes queue.  The fd is opened per outermost
    acquisition so forked children never share lock state with their
    parent."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._tlock = threading.RLock()
        self._fd: Optional[int] = None
        self._depth = 0

    def __enter__(self) -> "_InterProcessLock":
        self._tlock.acquire()
        self._depth += 1
        if self._depth == 1 and fcntl is not None:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
                fcntl.flock(fd, fcntl.LOCK_EX)
                self._fd = fd
            except OSError:
                # an unlockable filesystem degrades to in-process
                # locking rather than failing the analysis
                self._fd = None
        return self

    def __exit__(self, *exc) -> None:
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover
                pass
            try:
                os.close(self._fd)
            except OSError:  # pragma: no cover
                pass
            self._fd = None
        self._tlock.release()


class ArtifactStore:
    """A directory of content-addressed analysis artifacts."""

    def __init__(
        self, root: str, max_bytes: Optional[int] = None
    ) -> None:
        self.root = root
        self.objects_dir = os.path.join(root, "objects")
        self.stats_path = os.path.join(root, "stats.json")
        self.max_bytes = max_bytes
        self.stats = StoreStats()
        #: serializes stats updates and LRU touch/evict across threads
        #: sharing this handle; never held during artifact encode/decode
        self._lock = threading.RLock()
        os.makedirs(self.objects_dir, exist_ok=True)
        #: serializes eviction and stats.json persistence across
        #: *processes* sharing this directory (replica daemons,
        #: process-pool workers)
        self._ipc_lock = _InterProcessLock(os.path.join(root, ".lock"))
        #: counters already merged into stats.json by flush_stats()
        self._flushed = StoreStats()

    # -- paths -------------------------------------------------------------------

    def path_of(self, key: str) -> str:
        return os.path.join(self.objects_dir, key + ".json.gz")

    def contains(self, key: str) -> bool:
        """Cheap existence probe: no decode, no stats, no LRU touch.
        Used to skip re-encoding artifacts that are already present
        (a stale True race just means one redundant atomic put)."""
        return os.path.exists(self.path_of(key))

    # -- raw get/put -------------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The payload under ``key``, or None (anything wrong = miss)."""
        path = self.path_of(key)
        try:
            with gzip.open(path, "rb") as fh:
                doc = json.loads(fh.read().decode("utf-8"))
            if doc.get("format") != STORE_FORMAT_VERSION:
                raise ValueError(f"format {doc.get('format')!r}")
            payload = doc["data"]
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except Exception:
            # truncated gzip, bad JSON, version skew, wrong shape --
            # treat as a miss and drop the unreadable file
            with self._lock:
                self.stats.misses += 1
                self.stats.errors += 1
                self._unlink(path)
            return None
        with self._lock:
            self.stats.hits += 1
            self._touch(path)
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically write ``payload`` under ``key``, then evict."""
        doc = {"format": STORE_FORMAT_VERSION, "key": key, "data": payload}
        raw = json.dumps(doc, separators=(",", ":")).encode("utf-8")
        path = self.path_of(key)
        fd, tmp = tempfile.mkstemp(
            prefix=".tmp-" + key[:24] + "-", dir=self.objects_dir
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                # mtime=0 keeps artifact bytes deterministic across runs
                with gzip.GzipFile(
                    fileobj=fh, mode="wb", mtime=0
                ) as gz:
                    gz.write(raw)
            os.replace(tmp, path)
        except Exception:
            self._unlink(tmp)
            raise
        with self._lock:
            self.stats.puts += 1
        if self.max_bytes is not None:
            self.evict()

    # -- decoded load/save --------------------------------------------------------

    def load(self, key: str, decoder: Callable[[dict], object]):
        """Get + decode; any decoder failure degrades to a miss."""
        payload = self.get(key)
        if payload is None:
            return None
        try:
            return decoder(payload)
        except Exception:
            # a payload that no longer decodes (stale semantics within
            # one format version) must never crash an analysis
            with self._lock:
                self.stats.hits -= 1
                self.stats.misses += 1
                self.stats.errors += 1
                self._unlink(self.path_of(key))
            return None

    # -- eviction -----------------------------------------------------------------

    def entries(self) -> List[Tuple[str, int, float]]:
        """(path, size, mtime) of every artifact currently on disk."""
        out = []
        try:
            names = os.listdir(self.objects_dir)
        except FileNotFoundError:
            return out
        for name in names:
            path = os.path.join(self.objects_dir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue  # vanished under a concurrent worker
            out.append((path, st.st_size, st.st_mtime))
        return out

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self.entries())

    def evict(self) -> int:
        """Delete least-recently-used artifacts until under the cap.

        The whole scan-and-delete runs under the store lock *and* the
        cross-process file lock: two worker threads -- or two replica
        daemons -- finishing puts at the same moment must not both
        walk the same LRU tail and double-count (or over-)evict.
        Remaining races (a file vanishing mid-walk under an uncached
        unlink) stay benign -- a vanished file just fails its unlink.
        """
        if self.max_bytes is None:
            return 0
        with self._lock, self._ipc_lock:
            entries = self.entries()
            total = sum(size for _, size, _ in entries)
            evicted = 0
            # oldest mtime first; temp files sort in with their mtimes,
            # which is fine: a stale temp is garbage worth collecting
            for path, size, _ in sorted(entries, key=lambda e: e[2]):
                if total <= self.max_bytes:
                    break
                if self._unlink(path):
                    total -= size
                    evicted += 1
            self.stats.evictions += evicted
            return evicted

    # -- persisted stats ----------------------------------------------------------

    def flush_stats(self) -> Dict[str, int]:
        """Merge this handle's *unflushed* counter deltas into the
        shared ``stats.json`` and return the merged totals.

        Safe to call from any number of handles in any number of
        processes: the read-modify-write cycle runs under the
        cross-process lock and lands via atomic replace, so counts are
        never lost and readers never observe a torn document.  Called
        by the service on drain and by process-pool workers after each
        job; cheap enough to call often (one tiny JSON file).
        """
        with self._lock:
            current = self.stats.as_dict()
            delta = {
                k: current[k] - getattr(self._flushed, k)
                for k in current
            }
            for k, v in delta.items():
                setattr(self._flushed, k, getattr(self._flushed, k) + v)
        with self._ipc_lock:
            totals = StoreStats()
            totals.merge(self._read_persisted())
            totals.merge(delta)
            doc = totals.as_dict()
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-stats-", dir=self.root
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(doc, fh, sort_keys=True)
                os.replace(tmp, self.stats_path)
            except Exception:
                self._unlink(tmp)
                raise
            return doc

    def persistent_stats(self) -> Optional[Dict[str, int]]:
        """The cumulative cross-process counters from ``stats.json``,
        or None when no handle has flushed yet."""
        doc = self._read_persisted()
        return doc or None

    def _read_persisted(self) -> Dict[str, int]:
        try:
            with open(self.stats_path, "r") as fh:
                doc = json.load(fh)
            return {k: int(v) for k, v in doc.items()}
        except (OSError, ValueError, TypeError):
            # missing or corrupt: start over from zero rather than
            # failing a put/drain path over a counters file
            return {}

    def clear(self) -> None:
        for path, _, _ in self.entries():
            self._unlink(path)

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _unlink(path: str) -> bool:
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    @staticmethod
    def _touch(path: str) -> None:
        try:
            os.utime(path, None)
        except OSError:
            pass
