"""Stage-level artifact payloads: what the store actually persists.

Two artifacts per (workload, options) pair:

* **stage 1** (``cp-*``): the :class:`~repro.pipeline.ControlProfile`
  -- dynamic CFGs, call graph, and run statistics; loop forests and
  the recursive-component-set are recomputed on load (they are pure
  functions of the graphs, see :mod:`repro.cfg.codec`).
* **stage 2** (``ddg-*``): the folded polyhedral DDG, the
  Instrumentation-II metadata a warm :class:`~repro.pipeline.AnalysisResult`
  must still expose (dynamic instruction count, run statistics, the
  dynamic schedule tree for flame graphs), and the dependence vectors
  that feed the feedback stages.

Wall-clock fields are preserved verbatim: a decoded artifact reports
the profiling time it *avoided*; the fresh cost of a warm run lives in
:class:`~repro.pipeline.StageTimings`.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

from ..cfg import build_loop_forest, build_recursive_component_set
from ..cfg.codec import (
    decode_callgraph,
    decode_cfgs,
    encode_callgraph,
    encode_cfgs,
)
from ..folding.codec import decode_folded_ddg, encode_folded_ddg
from ..folding.folder import FoldedDDG
from ..iiv.schedule_tree import DynamicScheduleTree, DynNode
from ..isa.vm import RunStats
from ..schedule.codec import decode_dep_vectors, encode_dep_vectors
from ..schedule.deps import DepVector

# -- run statistics -----------------------------------------------------------------


def encode_run_stats(stats: RunStats) -> dict:
    return {
        "dyn_instrs": stats.dyn_instrs,
        "dyn_branches": stats.dyn_branches,
        "dyn_calls": stats.dyn_calls,
        "mem_ops": stats.mem_ops,
        "fp_ops": stats.fp_ops,
        "per_opcode": dict(stats.per_opcode),
    }


def decode_run_stats(data: dict) -> RunStats:
    return RunStats(
        dyn_instrs=int(data["dyn_instrs"]),
        dyn_branches=int(data["dyn_branches"]),
        dyn_calls=int(data["dyn_calls"]),
        mem_ops=int(data["mem_ops"]),
        fp_ops=int(data["fp_ops"]),
        per_opcode=Counter(data["per_opcode"]),
    )


# -- dynamic schedule tree ----------------------------------------------------------


def _encode_dyn_node(node: DynNode) -> dict:
    return {
        "e": node.element,
        "l": node.is_loop,
        "w": node.weight,
        "sw": node.self_weight,
        "v": node.visits,
        "c": [_encode_dyn_node(c) for c in node.children.values()],
    }


def _decode_dyn_node(data: dict) -> DynNode:
    node = DynNode(
        element=data["e"],
        is_loop=bool(data["l"]),
        weight=int(data["w"]),
        self_weight=int(data["sw"]),
        visits=int(data["v"]),
    )
    for child_data in data["c"]:
        child = _decode_dyn_node(child_data)
        node.children[child.element] = child
    return node


def encode_schedule_tree(
    tree: Optional[DynamicScheduleTree],
) -> Optional[dict]:
    if tree is None:
        return None
    return _encode_dyn_node(tree.root)


def decode_schedule_tree(
    data: Optional[dict],
) -> Optional[DynamicScheduleTree]:
    if data is None:
        return None
    tree = DynamicScheduleTree()
    tree.root = _decode_dyn_node(data)
    return tree


# -- stage 1: control profile -------------------------------------------------------


def encode_control_profile(control) -> dict:
    return {
        "cfgs": encode_cfgs(control.cfgs),
        "callgraph": encode_callgraph(control.callgraph),
        "stats": encode_run_stats(control.stats),
        "wall_seconds": control.wall_seconds,
    }


def decode_control_profile(data: dict):
    from ..pipeline import ControlProfile

    cfgs = decode_cfgs(data["cfgs"])
    callgraph = decode_callgraph(data["callgraph"])
    forests = {
        f: build_loop_forest(f, cfg.nodes, cfg.edges, cfg.entry)
        for f, cfg in cfgs.items()
    }
    rcs = build_recursive_component_set(
        callgraph.nodes, callgraph.edges, callgraph.root
    )
    return ControlProfile(
        cfgs=cfgs,
        callgraph=callgraph,
        forests=forests,
        rcs=rcs,
        stats=decode_run_stats(data["stats"]),
        wall_seconds=float(data["wall_seconds"]),
    )


# -- stage 2: folded DDG + profile meta + dependence vectors ------------------------


class CachedInstrumentation:
    """Warm-path stand-in for the :class:`~repro.ddg.builder.DDGBuilder`
    slot of a :class:`~repro.pipeline.DDGProfile`: exposes exactly the
    two attributes downstream consumers read (``instr_count`` and
    ``schedule_tree``)."""

    __slots__ = ("instr_count", "schedule_tree")

    def __init__(self, instr_count: int, schedule_tree) -> None:
        self.instr_count = instr_count
        self.schedule_tree = schedule_tree


def encode_stage2(folded: FoldedDDG, ddgp, dep_vectors) -> dict:
    return {
        "folded": encode_folded_ddg(folded),
        "instr_count": ddgp.builder.instr_count,
        "stats": encode_run_stats(ddgp.stats),
        "wall_seconds": ddgp.wall_seconds,
        "schedule_tree": encode_schedule_tree(ddgp.builder.schedule_tree),
        "dep_vectors": encode_dep_vectors(dep_vectors),
    }


def decode_stage2(
    data: dict, program
) -> Tuple[FoldedDDG, object, List[DepVector]]:
    from ..pipeline import DDGProfile

    folded = decode_folded_ddg(data["folded"], program)
    ddgp = decode_stage2_meta(data)
    dep_vectors = decode_dep_vectors(data["dep_vectors"], folded)
    return folded, ddgp, dep_vectors


def decode_stage2_meta(data: dict):
    """Only the profile metadata of a stage-2 artifact: run stats,
    schedule tree, instruction count, wall seconds -- everything that
    is *uid-free*.  The incremental no-execution fast path reuses a
    baseline program's metadata (an all-unchanged diff implies a
    bit-identical execution) while the folded DDG itself is rebuilt
    from region artifacts against the submitted program's uids, so the
    monolithic folded payload here is deliberately not decoded."""
    from ..pipeline import DDGProfile

    return DDGProfile(
        builder=CachedInstrumentation(
            int(data["instr_count"]),
            decode_schedule_tree(data["schedule_tree"]),
        ),
        sink=None,
        stats=decode_run_stats(data["stats"]),
        wall_seconds=float(data["wall_seconds"]),
    )
