"""Content-addressed analysis artifact store (warm-path caching).

Fingerprint the inputs (:mod:`repro.isa.fingerprint`), derive staged
keys (:mod:`repro.store.keys`), persist/recover stage artifacts
(:mod:`repro.store.artifacts`) through a size-capped atomic store
(:mod:`repro.store.store`).
"""

from .artifacts import (
    decode_control_profile,
    decode_stage2,
    decode_stage2_meta,
    encode_control_profile,
    encode_stage2,
)
from .keys import ArtifactKeys, derive_keys, keys_for_spec, manifest_key
from .store import STORE_FORMAT_VERSION, ArtifactStore, StoreStats

__all__ = [
    "ArtifactKeys",
    "ArtifactStore",
    "STORE_FORMAT_VERSION",
    "StoreStats",
    "decode_control_profile",
    "decode_stage2",
    "decode_stage2_meta",
    "derive_keys",
    "encode_control_profile",
    "encode_stage2",
    "keys_for_spec",
    "manifest_key",
]
