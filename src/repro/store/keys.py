"""Artifact key derivation: fingerprints + pipeline options + salt.

Two cache levels mirror the pipeline's stage structure:

* the **stage-1 key** covers everything Instrumentation I depends on:
  the program IR, the initial state, the engine, and the fuel budget;
* the **stage-2 key** extends it with the Instrumentation-II/folding
  options (``track_anti_output``, ``build_schedule_tree``,
  ``max_pieces``, ``clamp``).

Changing only a stage-2 option therefore invalidates the folded DDG
but still reuses the cached :class:`~repro.pipeline.ControlProfile`.
Both keys are salted with :data:`~repro.store.store.STORE_FORMAT_VERSION`
so a format bump makes every old artifact an orderly miss.

``engine`` is part of the key even though both engines are proven to
produce identical artifacts: the recorded engine is reproduced by the
cross-checker (which recounts on the *opposite* engine), so a cached
result must never claim an engine it did not run on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..isa.fingerprint import fingerprint_program, fingerprint_state
from .store import STORE_FORMAT_VERSION


@dataclass(frozen=True)
class ArtifactKeys:
    """The content-addressed keys of one (workload, options) pair."""

    stage1: str          # ControlProfile artifact ("cp-<sha256>")
    stage2: str          # FoldedDDG + profile-meta + dep-vector artifact
    program_digest: str
    state_digest: str


def _hex(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def derive_keys(
    program_digest: str,
    state_digest: str,
    *,
    engine: str,
    fuel: int,
    max_pieces: int,
    clamp: Optional[int],
    track_anti_output: bool,
    build_schedule_tree: bool,
) -> ArtifactKeys:
    base = (
        f"v{STORE_FORMAT_VERSION}|prog={program_digest}"
        f"|state={state_digest}|engine={engine}|fuel={fuel}"
    )
    stage2 = (
        base
        + f"|max_pieces={max_pieces}|clamp={clamp}"
        + f"|anti_output={track_anti_output}"
        + f"|schedule_tree={build_schedule_tree}"
    )
    return ArtifactKeys(
        stage1="cp-" + _hex(base),
        stage2="ddg-" + _hex(stage2),
        program_digest=program_digest,
        state_digest=state_digest,
    )


def keys_for_spec(
    spec,
    *,
    engine: str,
    fuel: int,
    max_pieces: int,
    clamp: Optional[int],
    track_anti_output: bool,
    build_schedule_tree: bool,
) -> ArtifactKeys:
    """Fingerprint one :class:`~repro.pipeline.ProgramSpec` and derive
    its artifact keys.  Materializes (and discards) one fresh state --
    cheap next to even a single instrumented execution."""
    args, memory = spec.make_state()
    return derive_keys(
        fingerprint_program(spec.program),
        fingerprint_state(args, memory),
        engine=engine,
        fuel=fuel,
        max_pieces=max_pieces,
        clamp=clamp,
        track_anti_output=track_anti_output,
        build_schedule_tree=build_schedule_tree,
    )
