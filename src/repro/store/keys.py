"""Artifact key derivation: fingerprints + pipeline options + salt.

Two cache levels mirror the pipeline's stage structure:

* the **stage-1 key** covers everything Instrumentation I depends on:
  the program IR, the initial state, the engine, and the fuel budget;
* the **stage-2 key** extends it with the Instrumentation-II/folding
  options (``track_anti_output``, ``build_schedule_tree``,
  ``max_pieces``, ``clamp``).

Changing only a stage-2 option therefore invalidates the folded DDG
but still reuses the cached :class:`~repro.pipeline.ControlProfile`.
Both keys are salted with :data:`~repro.store.store.STORE_FORMAT_VERSION`
so a format bump makes every old artifact an orderly miss.

Two further levels serve incremental re-analysis (:mod:`repro.incr`):

* the **manifest key** (``man-``) covers the static program manifest --
  per-function fingerprints, call edges, access roots -- and depends on
  the program digest alone;
* the **region keys** (``rgn-``, one per function) extend the stage-2
  key material with the function name, caching that function's slice
  of the folded DDG for frontier-only re-analysis.

``engine`` is part of the key even though both engines are proven to
produce identical artifacts: the recorded engine is reproduced by the
cross-checker (which recounts on the *opposite* engine), so a cached
result must never claim an engine it did not run on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..isa.fingerprint import fingerprint_program, fingerprint_state
from .store import STORE_FORMAT_VERSION


@dataclass(frozen=True)
class ArtifactKeys:
    """The content-addressed keys of one (workload, options) pair."""

    stage1: str          # ControlProfile artifact ("cp-<sha256>")
    stage2: str          # FoldedDDG + profile-meta + dep-vector artifact
    program_digest: str
    state_digest: str
    #: program manifest artifact ("man-<sha256>"); static-only, so it
    #: depends on the program digest alone (see manifest_key)
    manifest: str = ""
    #: raw stage-2 key material the per-function region keys extend
    region_base: str = ""

    def region(self, func: str) -> str:
        """Per-function folded-region artifact key ("rgn-<sha256>").

        Extends the full stage-2 key material (program, state, engine,
        fuel, folding options) with the function name -- a region
        artifact is only reusable under the *same* dynamic conditions
        the stage-2 artifact would be.  The name is length-prefixed so
        adversarial names cannot collide with the option fields.
        """
        if not self.region_base:
            raise ValueError("ArtifactKeys built without region_base")
        return "rgn-" + _hex(
            self.region_base + f"|region[{len(func)}]={func}"
        )


def _hex(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def manifest_key(program_digest: str) -> str:
    """Program-manifest artifact key ("man-<sha256>").

    Keyed by the program digest alone: the manifest is pure static
    analysis (per-function fingerprints, call edges, access roots), so
    it is shared across states, engines, fuel budgets, and folding
    options.  Dynamic mismatches surface naturally as rgn-/ddg- misses.
    """
    return "man-" + _hex(f"v{STORE_FORMAT_VERSION}|manifest={program_digest}")


def derive_keys(
    program_digest: str,
    state_digest: str,
    *,
    engine: str,
    fuel: int,
    max_pieces: int,
    clamp: Optional[int],
    track_anti_output: bool,
    build_schedule_tree: bool,
) -> ArtifactKeys:
    base = (
        f"v{STORE_FORMAT_VERSION}|prog={program_digest}"
        f"|state={state_digest}|engine={engine}|fuel={fuel}"
    )
    stage2 = (
        base
        + f"|max_pieces={max_pieces}|clamp={clamp}"
        + f"|anti_output={track_anti_output}"
        + f"|schedule_tree={build_schedule_tree}"
    )
    return ArtifactKeys(
        stage1="cp-" + _hex(base),
        stage2="ddg-" + _hex(stage2),
        program_digest=program_digest,
        state_digest=state_digest,
        manifest=manifest_key(program_digest),
        region_base=stage2,
    )


def keys_for_spec(
    spec,
    *,
    engine: str,
    fuel: int,
    max_pieces: int,
    clamp: Optional[int],
    track_anti_output: bool,
    build_schedule_tree: bool,
) -> ArtifactKeys:
    """Fingerprint one :class:`~repro.pipeline.ProgramSpec` and derive
    its artifact keys.  Materializes (and discards) one fresh state --
    cheap next to even a single instrumented execution."""
    args, memory = spec.make_state()
    return derive_keys(
        fingerprint_program(spec.program),
        fingerprint_state(args, memory),
        engine=engine,
        fuel=fuel,
        max_pieces=max_pieces,
        clamp=clamp,
        track_anti_output=track_anti_output,
        build_schedule_tree=build_schedule_tree,
    )
