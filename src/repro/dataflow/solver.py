"""Generic iterative dataflow solver (worklist algorithm).

The classic fixpoint framework from binary-analysis toolkits (cf.
"Parallel Binary Code Analysis", Meng et al.): an analysis declares a
direction, a lattice (``top``/``boundary``/``meet``) and a block
transfer function; :func:`solve` iterates transfer over a worklist
seeded in reverse post-order (forward) or its reverse (backward) until
the facts stabilize.  Facts are ordinary Python values compared with
``==`` -- frozensets for the gen/kill analyses, dicts of lattice
values for constant propagation.

Termination is the analysis's responsibility (finite-height lattice or
widening in ``meet``/``transfer``); the solver additionally hard-caps
the number of visits per block as a safety net against accidentally
infinite lattices.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Generic, List, TypeVar, Union

from ..isa.program import Function
from .cfgview import StaticCFG

Fact = TypeVar("Fact")

#: safety cap on visits per block (far above any finite-height lattice
#: over mini-ISA functions; hitting it means a broken ``meet``)
MAX_VISITS_PER_BLOCK = 10_000


class DataflowAnalysis(Generic[Fact]):
    """Base class: declare direction, lattice, and transfer."""

    #: "forward" or "backward"
    direction: str = "forward"

    def boundary(self, cfg: StaticCFG) -> Fact:
        """Fact at the entry (forward) / at every exit (backward)."""
        raise NotImplementedError

    def top(self, cfg: StaticCFG) -> Fact:
        """Initial optimistic fact for all other blocks."""
        raise NotImplementedError

    def meet(self, a: Fact, b: Fact) -> Fact:
        """Combine facts at control-flow merges."""
        raise NotImplementedError

    def transfer(self, cfg: StaticCFG, block: str, fact: Fact) -> Fact:
        """Fact at the far side of ``block`` given the near-side fact."""
        raise NotImplementedError


@dataclass
class DataflowSolution(Generic[Fact]):
    """Per-block fixpoint facts.

    ``entry[b]``/``exit[b]`` are the facts at block start/end in
    *program order* regardless of analysis direction (for a backward
    analysis the solver transfers exit -> entry and meets over
    successors, but the mapping below stays program-ordered).
    """

    analysis: DataflowAnalysis
    cfg: StaticCFG
    entry: Dict[str, Any] = field(default_factory=dict)
    exit: Dict[str, Any] = field(default_factory=dict)
    iterations: int = 0


def solve(
    analysis: DataflowAnalysis, target: Union[Function, StaticCFG]
) -> DataflowSolution:
    """Run ``analysis`` to fixpoint over one function's static CFG."""
    cfg = target if isinstance(target, StaticCFG) else StaticCFG(target)
    forward = analysis.direction == "forward"
    if analysis.direction not in ("forward", "backward"):
        raise ValueError(f"unknown direction {analysis.direction!r}")

    sol: DataflowSolution = DataflowSolution(analysis=analysis, cfg=cfg)
    blocks: List[str] = cfg.rpo if forward else list(reversed(cfg.rpo))
    if not blocks:
        return sol

    boundary = analysis.boundary(cfg)
    if forward:
        sources = [cfg.entry]
    else:
        sources = cfg.exit_blocks()

    near: Dict[str, Any] = {}
    far: Dict[str, Any] = {}
    for b in blocks:
        near[b] = analysis.top(cfg)
    for b in sources:
        near[b] = boundary

    work = deque(blocks)
    queued = set(blocks)
    visits: Dict[str, int] = {}
    while work:
        b = work.popleft()
        queued.discard(b)
        visits[b] = visits.get(b, 0) + 1
        if visits[b] > MAX_VISITS_PER_BLOCK:
            raise RuntimeError(
                f"dataflow solver diverged on {cfg.fn.name}/{b} "
                f"(non-converging lattice?)"
            )
        sol.iterations += 1

        # meet over the incoming facts
        incoming = cfg.preds[b] if forward else [
            s for s in cfg.succs.get(b, ()) if s in cfg.reachable
        ]
        fact = near[b] if b in sources else None
        for p in incoming:
            if p not in far:
                continue
            fact = far[p] if fact is None else analysis.meet(fact, far[p])
        if fact is None:
            fact = near[b]
        near[b] = fact

        new_far = analysis.transfer(cfg, b, fact)
        if b in far and far[b] == new_far:
            continue
        far[b] = new_far
        outgoing = (
            [s for s in cfg.succs.get(b, ()) if s in cfg.reachable]
            if forward
            else cfg.preds[b]
        )
        for s in outgoing:
            if s not in queued:
                queued.add(s)
                work.append(s)

    for b in blocks:
        if forward:
            sol.entry[b] = near[b]
            sol.exit[b] = far.get(b, near[b])
        else:
            sol.exit[b] = near[b]
            sol.entry[b] = far.get(b, near[b])
    return sol
