"""Static dataflow framework over mini-ISA programs.

Where :mod:`repro.staticpoly` answers the paper's Experiment II
question ("how much can a *polyhedral* static model recover?"), this
package provides the classic dataflow machinery a binary analyzer
needs for *correctness* tooling: a generic forward/backward worklist
solver over static CFGs, concrete analyses (reaching definitions,
liveness, dominance, def-use chains, constant propagation), and two
clients built on top of them:

* :mod:`repro.dataflow.lint` -- a static linter for
  :class:`~repro.isa.program.Program`s (``repro lint``), catching
  defects before they burn VM fuel;
* :mod:`repro.dataflow.crosscheck` -- a dynamic-vs-static soundness
  sanitizer (``--crosscheck``) that validates every profile the
  pipeline produces against what is statically provable and against
  an independent recount of the dependence streams.
"""

from .analyses import (
    DefSite,
    DefUseChains,
    Liveness,
    MustDefined,
    ReachingDefinitions,
    UseSite,
    build_def_use_chains,
    dominators,
    immediate_dominators,
)
from .cfgview import StaticCFG
from .crosscheck import (
    CheckOptions,
    CountingSink,
    CrosscheckReport,
    Violation,
    run_crosscheck,
)
from .lint import Diagnostic, LintReport, lint_program
from .solver import DataflowAnalysis, DataflowSolution, solve
from .values import ConstProp, TypeInference, NAC, UNDEF, branch_decided

__all__ = [
    "CheckOptions",
    "ConstProp",
    "CountingSink",
    "CrosscheckReport",
    "DataflowAnalysis",
    "DataflowSolution",
    "DefSite",
    "DefUseChains",
    "Diagnostic",
    "LintReport",
    "Liveness",
    "MustDefined",
    "NAC",
    "ReachingDefinitions",
    "StaticCFG",
    "TypeInference",
    "UNDEF",
    "UseSite",
    "Violation",
    "branch_decided",
    "build_def_use_chains",
    "dominators",
    "immediate_dominators",
    "lint_program",
    "run_crosscheck",
    "solve",
]
