"""Value-level dataflow: constant propagation and int/float typing.

Two flat-lattice forward analyses used by the linter:

* :class:`ConstProp` -- classic conditional-constant-style propagation
  (without edge pruning): each register is ``UNDEF`` (no value seen),
  a concrete int/float constant, or ``NAC`` (not a constant).  Loop
  induction variables meet to ``NAC`` after one trip around the back
  edge, so the lattice height is 3 and the solver converges fast.
  Affine non-constant values (parameter combinations, IV expressions)
  are the domain of :mod:`repro.staticpoly`, which the crosscheck
  reuses; here constants are what the lint rules need (branches
  decided at build time, division by a constant zero).
* :class:`TypeInference` -- each register is ``INT``, ``FLOAT``, or
  ``ANYTYPE`` (loads, parameters, call results, or int/float merge).
  The int/float opcode-confusion lint rule checks uses against these.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..isa.instructions import (
    CondBr,
    FLOAT_OPS,
    INT_OPS,
    Instr,
    eval_relation,
)
from .cfgview import StaticCFG, terminator_defs
from .solver import DataflowAnalysis


class _Tag:
    """Singleton lattice tags with a readable repr."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name


UNDEF = _Tag("UNDEF")   # no definition seen yet (lattice top)
NAC = _Tag("NAC")       # not a constant (lattice bottom)

ConstVal = Union[_Tag, int, float]

INT = _Tag("INT")
FLOAT = _Tag("FLOAT")
ANYTYPE = _Tag("ANYTYPE")

TypeVal = _Tag


def _meet_const(a: ConstVal, b: ConstVal) -> ConstVal:
    if a is UNDEF:
        return b
    if b is UNDEF:
        return a
    if a is NAC or b is NAC:
        return NAC
    # int 0 == float 0.0 in Python; keep them distinct as constants
    if a == b and type(a) is type(b):
        return a
    return NAC


def _eval_const(ins: Instr, env: Dict[str, ConstVal]) -> ConstVal:
    def operand(op) -> ConstVal:
        if isinstance(op, str):
            return env.get(op, UNDEF)
        return op

    op = ins.opcode
    if op == "const":
        return ins.srcs[0]
    if op == "mov":
        return operand(ins.srcs[0])
    if op in ("load",):
        return NAC
    vals = [operand(s) for s in ins.srcs]
    if any(v is NAC for v in vals):
        return NAC
    if any(v is UNDEF for v in vals):
        # optimistic: stay UNDEF until the operands resolve
        return UNDEF
    try:
        a = vals[0]
        b = vals[1] if len(vals) > 1 else None
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op in ("div", "mod"):
            if b == 0:
                return NAC  # the lint rule reports this separately
            q = abs(a) // abs(b)
            q = q if (a >= 0) == (b >= 0) else -q
            return q if op == "div" else a - b * q
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return a << b
        if op == "shr":
            return a >> b
        if op.startswith("cmp"):
            return 1 if eval_relation(op[3:], a, b) else 0
        if op == "itof":
            return float(a)
        if op == "ftoi":
            return int(a)
    except (TypeError, ValueError, OverflowError):
        return NAC
    # float transcendentals etc.: correct but uninteresting for lint
    return NAC


class ConstProp(DataflowAnalysis):
    """Register -> constant lattice value (forward)."""

    direction = "forward"

    def boundary(self, cfg: StaticCFG):
        env = {p: NAC for p in cfg.fn.params}  # params are runtime inputs
        return _FrozenEnv(env)

    def top(self, cfg: StaticCFG):
        return _FrozenEnv({})

    def meet(self, a: "_FrozenEnv", b: "_FrozenEnv") -> "_FrozenEnv":
        out: Dict[str, ConstVal] = dict(a.env)
        for reg, v in b.env.items():
            out[reg] = _meet_const(out.get(reg, UNDEF), v)
        return _FrozenEnv(out)

    def transfer(self, cfg, block, fact: "_FrozenEnv") -> "_FrozenEnv":
        env = dict(fact.env)
        bb = cfg.block(block)
        for ins in bb.instrs:
            if ins.dest is not None:
                env[ins.dest] = _eval_const(ins, env)
        for reg in terminator_defs(bb.terminator):
            env[reg] = NAC  # call results are runtime values
        return _FrozenEnv(env)


class _FrozenEnv:
    """Hashable/comparable register environment."""

    __slots__ = ("env", "_key")

    def __init__(self, env: Dict[str, ConstVal]) -> None:
        self.env = env
        self._key = frozenset(
            (k, id(v) if isinstance(v, _Tag) else (type(v).__name__, v))
            for k, v in env.items()
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _FrozenEnv):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def get(self, reg: str) -> ConstVal:
        return self.env.get(reg, UNDEF)


def branch_decided(
    term: CondBr, env: _FrozenEnv
) -> Optional[bool]:
    """Is a conditional branch decided by propagated constants?
    Returns True (always taken), False (never taken), or None."""

    def operand(op) -> ConstVal:
        if isinstance(op, str):
            return env.get(op)
        return op

    a, b = operand(term.a), operand(term.b)
    if isinstance(a, _Tag) or isinstance(b, _Tag):
        return None
    return eval_relation(term.rel, a, b)


# -- typing -------------------------------------------------------------------------

#: integer opcodes producing an int result (``ftoi`` is already here)
_INT_RESULT = INT_OPS
#: float opcodes producing a float result (``itof`` is already here)
_FLOAT_RESULT = FLOAT_OPS


def _meet_type(a: TypeVal, b: TypeVal) -> TypeVal:
    if a is UNDEF:
        return b
    if b is UNDEF:
        return a
    if a is b:
        return a
    return ANYTYPE


def _result_type(ins: Instr, env: Dict[str, TypeVal]) -> TypeVal:
    op = ins.opcode
    if op == "const":
        return FLOAT if isinstance(ins.srcs[0], float) else INT
    if op == "mov":
        src = ins.srcs[0]
        if isinstance(src, str):
            return env.get(src, ANYTYPE)
        return FLOAT if isinstance(src, float) else INT
    if op == "load":
        return ANYTYPE  # memory is untyped
    if op in _FLOAT_RESULT:
        return FLOAT
    if op in _INT_RESULT:
        return INT
    return ANYTYPE


class TypeInference(DataflowAnalysis):
    """Register -> {INT, FLOAT, ANYTYPE} (forward)."""

    direction = "forward"

    def boundary(self, cfg: StaticCFG):
        return _FrozenEnv({p: ANYTYPE for p in cfg.fn.params})

    def top(self, cfg: StaticCFG):
        return _FrozenEnv({})

    def meet(self, a: _FrozenEnv, b: _FrozenEnv) -> _FrozenEnv:
        out: Dict[str, TypeVal] = dict(a.env)
        for reg, v in b.env.items():
            out[reg] = _meet_type(out.get(reg, UNDEF), v)
        return _FrozenEnv(out)

    def transfer(self, cfg, block, fact: _FrozenEnv) -> _FrozenEnv:
        env = dict(fact.env)
        bb = cfg.block(block)
        for ins in bb.instrs:
            if ins.dest is not None:
                env[ins.dest] = _result_type(ins, env)
        for reg in terminator_defs(bb.terminator):
            env[reg] = ANYTYPE
        return _FrozenEnv(env)


def instruction_type_env(
    cfg: StaticCFG, solution_entry: Dict[str, _FrozenEnv]
) -> Dict[int, Dict[str, TypeVal]]:
    """Per-instruction register-type environments (keyed by uid), by
    replaying each block's transfer from the solved entry fact."""
    out: Dict[int, Dict[str, TypeVal]] = {}
    for b in cfg.rpo:
        env = dict(solution_entry[b].env)
        for ins in cfg.block(b).instrs:
            out[ins.uid] = dict(env)
            if ins.dest is not None:
                env[ins.dest] = _result_type(ins, env)
    return out
